//! Deterministic PRNG and configuration for the proptest shim.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// SplitMix64 step: the generator driving all shim strategies.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a stable base seed from a test name (FNV-1a).
#[must_use]
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The deterministic random generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG for one (test, case) pair — distinct pairs get decorrelated
    /// streams.
    #[must_use]
    pub fn for_case(base: u64, case: u64) -> Self {
        let mut state = base ^ case.wrapping_mul(0xA24B_AED4_963E_E407);
        // Burn a few steps so nearby (base, case) pairs diverge fully.
        splitmix64(&mut state);
        splitmix64(&mut state);
        Self { state }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-high reduction (Lemire); bias is negligible for test
        // generation purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::for_case(seed_from_name("t"), 0);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut rng = TestRng::for_case(1, 2);
        for _ in 0..10_000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn distinct_cases_distinct_streams() {
        let mut a = TestRng::for_case(5, 0);
        let mut b = TestRng::for_case(5, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
