//! Offline stand-in for `proptest`: deterministic randomized property
//! testing implementing the subset of the proptest 1.x API this workspace
//! uses.
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `fn name(arg in strategy, ...) { body }` items;
//! * strategies: primitive ranges (`0u16..256`, `-1e6f64..1e6`, …),
//!   [`any`], tuples of strategies, [`collection::vec`],
//!   [`collection::hash_set`];
//! * assertions: [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Differences from real proptest: inputs are generated from a fixed seed
//! derived from the test name (fully reproducible across runs and
//! machines), and failing cases are reported but **not shrunk**.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Strategy};
pub use test_runner::ProptestConfig;

/// The prelude: everything a `proptest!`-based test file needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { ... }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let base = $crate::test_runner::seed_from_name(stringify!($name));
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(base, u64::from(case));
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let run = || {
                        $(let $arg = $arg;)+
                        $body
                    };
                    run();
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default())
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        );
    };
}

/// Asserts a condition inside a property test (panics with the case
/// context on failure, like real proptest after shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 5u64..100, y in -3i64..7, z in -1.5f64..2.5) {
            prop_assert!((5..100).contains(&x));
            prop_assert!((-3..7).contains(&y));
            prop_assert!((-1.5..2.5).contains(&z));
        }

        #[test]
        fn vecs_respect_size(v in prop::collection::vec(any::<u64>(), 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10, "len {}", v.len());
        }

        #[test]
        fn fixed_len_vec(v in prop::collection::vec(0u32..9, 16)) {
            prop_assert_eq!(v.len(), 16);
        }

        #[test]
        fn hash_sets_respect_size(s in prop::collection::hash_set(0u32..500, 1..100)) {
            prop_assert!(!s.is_empty() && s.len() < 100);
        }

        #[test]
        fn tuples_compose(pair in (0usize..12, 0usize..12), trip in (0u64..5, 0u64..50, -100i64..100)) {
            prop_assert!(pair.0 < 12 && pair.1 < 12);
            prop_assert!(trip.2 >= -100 && trip.2 < 100);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(crate::any::<u64>(), 0..50);
        let base = crate::test_runner::seed_from_name("determinism");
        let mut r1 = crate::test_runner::TestRng::for_case(base, 3);
        let mut r2 = crate::test_runner::TestRng::for_case(base, 3);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }

    #[test]
    fn values_vary_across_cases() {
        use crate::strategy::Strategy;
        let strat = crate::any::<u64>();
        let base = crate::test_runner::seed_from_name("variation");
        let a = strat.generate(&mut crate::test_runner::TestRng::for_case(base, 0));
        let b = strat.generate(&mut crate::test_runner::TestRng::for_case(base, 1));
        assert_ne!(a, b);
    }
}
