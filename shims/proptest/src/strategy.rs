//! Value-generation strategies: primitive ranges, `any`, and tuples.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A source of random values for property tests (generation only — the
/// shim does not shrink).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u64::from(self.end - self.start);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32);

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Types with a default whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly symmetric values; full bit-pattern floats (NaN,
        // infinities) are rarely what sketch tests want from `any`.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating unconstrained values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case(42, 0)
    }

    #[test]
    fn signed_range_spans_zero() {
        let strat = -100i64..100;
        let mut r = rng();
        let mut saw_neg = false;
        let mut saw_pos = false;
        for _ in 0..500 {
            let v = strat.generate(&mut r);
            assert!((-100..100).contains(&v));
            saw_neg |= v < 0;
            saw_pos |= v > 0;
        }
        assert!(saw_neg && saw_pos);
    }

    #[test]
    fn f64_range_in_bounds() {
        let strat = -1e6f64..1e6;
        let mut r = rng();
        for _ in 0..1000 {
            let v = strat.generate(&mut r);
            assert!((-1e6..1e6).contains(&v));
        }
    }

    #[test]
    fn any_f64_is_finite() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(f64::arbitrary(&mut r).is_finite());
        }
    }
}
