//! Collection strategies: `vec` and `hash_set`.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for collection strategies: either exact or a
/// half-open range (mirrors proptest's `SizeRange` conversions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            return self.lo;
        }
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and a size spec.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing vectors of values from `element`, with length drawn
/// from `size` (a `usize` for exact length, or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `HashSet<T>`.
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = HashSet::with_capacity(target);
        // Bounded retries: small element domains may not be able to fill
        // the target size; give up gracefully like proptest's rejection cap.
        let mut attempts = 0usize;
        let max_attempts = 20 * (target + 1);
        while set.len() < target && attempts < max_attempts {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// A strategy producing hash sets of values from `element`, with size drawn
/// from `size` (collisions permitting).
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn vec_len_in_range() {
        let strat = vec(any::<u64>(), 3..7);
        let mut rng = TestRng::for_case(1, 0);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn exact_len() {
        let strat = vec(0u32..5, 24);
        let mut rng = TestRng::for_case(2, 0);
        assert_eq!(strat.generate(&mut rng).len(), 24);
    }

    #[test]
    fn hash_set_sized_when_domain_allows() {
        let strat = hash_set(any::<u64>(), 10..11);
        let mut rng = TestRng::for_case(3, 0);
        assert_eq!(strat.generate(&mut rng).len(), 10);
    }

    #[test]
    fn hash_set_saturates_small_domains() {
        // Domain of 3 values but target of 50: must terminate.
        let strat = hash_set(0u32..3, 50..51);
        let mut rng = TestRng::for_case(4, 0);
        let s = strat.generate(&mut rng);
        assert!(s.len() <= 3);
    }
}
