//! Scoped threads: the `crossbeam::scope` / `Scope::spawn` surface,
//! implemented on `std::thread::scope`.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Result of a scope run: `Err` carries the payload of the first panicking
/// spawned thread (or of the scope closure itself).
pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

/// A handle for spawning scoped threads; passed to the scope closure and to
/// every spawned thread (so children can spawn siblings, as in crossbeam).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// A handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result (`Err` on
    /// panic).
    pub fn join(self) -> Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread inside the scope. The closure receives a `&Scope` so
    /// it can spawn further threads; handles may be ignored — the scope
    /// joins everything on exit.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let child = Scope { inner: self.inner };
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&child)),
        }
    }
}

/// Creates a scope in which threads borrowing from the enclosing stack
/// frame can be spawned; joins them all before returning. Returns `Err`
/// with the panic payload if any spawned thread (or the closure) panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        })
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicU64::new(0);
        super::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    for _ in 0..1000 {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        })
        .expect("join");
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let counter = AtomicU64::new(0);
        super::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .expect("join");
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn join_handle_returns_value() {
        let out = super::scope(|scope| {
            let h = scope.spawn(|_| 41 + 1);
            h.join().expect("child ok")
        })
        .expect("join");
        assert_eq!(out, 42);
    }
}
