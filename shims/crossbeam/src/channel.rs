//! MPSC channels with the `crossbeam::channel` surface, over
//! `std::sync::mpsc`. Bounded channels block the sender when full, which is
//! the backpressure contract the ingest pipelines rely on.

use std::fmt;
use std::sync::mpsc;
use std::time::Duration;

/// Error returned when sending on a channel whose receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`] when the value cannot be
/// handed off immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and currently at capacity; the value is
    /// returned so the caller can shed or retry.
    Full(T),
    /// The receiver has been dropped; the value is returned.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// The value that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            Self::Full(v) | Self::Disconnected(v) => v,
        }
    }

    /// Whether the failure was a full (not disconnected) channel.
    #[must_use]
    pub fn is_full(&self) -> bool {
        matches!(self, Self::Full(_))
    }
}

/// Error returned when receiving on an empty, disconnected channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`] when no value is ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders still exist.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`] when no value arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with the channel still empty (senders may
    /// still exist; a later receive can succeed).
    Timeout,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

enum Tx<T> {
    Bounded(mpsc::SyncSender<T>),
    Unbounded(mpsc::Sender<T>),
}

impl<T> Clone for Tx<T> {
    fn clone(&self) -> Self {
        match self {
            Self::Bounded(s) => Self::Bounded(s.clone()),
            Self::Unbounded(s) => Self::Unbounded(s.clone()),
        }
    }
}

/// The sending half of a channel. Cloneable (multi-producer).
pub struct Sender<T> {
    tx: Tx<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self {
            tx: self.tx.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while a bounded channel is full.
    ///
    /// # Errors
    /// Returns the value back when the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.tx {
            Tx::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            Tx::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
        }
    }

    /// Sends `value` without blocking: on a full bounded channel the
    /// value comes straight back as [`TrySendError::Full`] (the
    /// load-shedding primitive). Unbounded channels never report `Full`.
    ///
    /// # Errors
    /// [`TrySendError::Full`] when a bounded channel is at capacity,
    /// [`TrySendError::Disconnected`] when the receiver is gone.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        match &self.tx {
            Tx::Bounded(s) => s.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            }),
            Tx::Unbounded(s) => s.send(value).map_err(|e| TrySendError::Disconnected(e.0)),
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half of a channel (single consumer).
pub struct Receiver<T> {
    rx: mpsc::Receiver<T>,
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value arrives.
    ///
    /// # Errors
    /// Returns an error when the channel is empty and all senders dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.rx.recv().map_err(|_| RecvError)
    }

    /// Receives without blocking.
    ///
    /// # Errors
    /// [`TryRecvError::Empty`] when nothing is queued yet,
    /// [`TryRecvError::Disconnected`] when the channel is drained and all
    /// senders are gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.rx.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Blocks for at most `timeout` waiting for a value.
    ///
    /// Matches crossbeam semantics: values already queued are returned
    /// even if every sender has been dropped; `Disconnected` is reported
    /// only once the channel is both empty and sender-less, and
    /// `Timeout` means the wait elapsed while senders were still alive.
    ///
    /// # Errors
    /// [`RecvTimeoutError::Timeout`] when the deadline passes with no
    /// value, [`RecvTimeoutError::Disconnected`] when the channel is
    /// drained and all senders are gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    /// A blocking iterator over received values, ending when all senders
    /// are dropped.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.rx.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.rx.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.rx.iter()
    }
}

/// Creates a bounded channel with capacity `cap`; senders block when full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (
        Sender {
            tx: Tx::Bounded(tx),
        },
        Receiver { rx },
    )
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (
        Sender {
            tx: Tx::Unbounded(tx),
        },
        Receiver { rx },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_roundtrip_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn cross_thread_backpressure() {
        let (tx, rx) = bounded::<u64>(2);
        let sum = crate::thread::scope(|scope| {
            scope.spawn(move |_| {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            rx.iter().sum::<u64>()
        })
        .expect("join");
        assert_eq!(sum, 99 * 100 / 2);
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = bounded(2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_send_distinguishes_full_from_disconnected() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.try_send(1), Ok(()));
        let err = tx.try_send(2).unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), 2);
        drop(rx);
        assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
    }

    #[test]
    fn try_send_on_unbounded_never_reports_full() {
        let (tx, rx) = unbounded();
        for i in 0..1_000 {
            assert_eq!(tx.try_send(i), Ok(()));
        }
        drop(rx);
        assert!(matches!(tx.try_send(0), Err(TrySendError::Disconnected(0))));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }

    #[test]
    fn recv_timeout_drains_queued_values_before_disconnecting() {
        // Crossbeam semantics: a queued value beats a dropped sender.
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_wakes_on_cross_thread_send() {
        let (tx, rx) = bounded::<u64>(1);
        crate::thread::scope(|scope| {
            scope.spawn(move |_| {
                std::thread::sleep(Duration::from_millis(20));
                tx.send(77).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(77));
        })
        .expect("join");
    }

    #[test]
    fn multiple_producers() {
        let (tx, rx) = unbounded::<u64>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.into_iter().sum::<u64>(), 3);
    }
}
