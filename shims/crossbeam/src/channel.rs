//! MPSC channels with the `crossbeam::channel` surface, over
//! `std::sync::mpsc`. Bounded channels block the sender when full, which is
//! the backpressure contract the ingest pipelines rely on.

use std::fmt;
use std::sync::mpsc;

/// Error returned when sending on a channel whose receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned when receiving on an empty, disconnected channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`] when no value is ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders still exist.
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

enum Tx<T> {
    Bounded(mpsc::SyncSender<T>),
    Unbounded(mpsc::Sender<T>),
}

impl<T> Clone for Tx<T> {
    fn clone(&self) -> Self {
        match self {
            Self::Bounded(s) => Self::Bounded(s.clone()),
            Self::Unbounded(s) => Self::Unbounded(s.clone()),
        }
    }
}

/// The sending half of a channel. Cloneable (multi-producer).
pub struct Sender<T> {
    tx: Tx<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self {
            tx: self.tx.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while a bounded channel is full.
    ///
    /// # Errors
    /// Returns the value back when the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.tx {
            Tx::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            Tx::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

/// The receiving half of a channel (single consumer).
pub struct Receiver<T> {
    rx: mpsc::Receiver<T>,
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value arrives.
    ///
    /// # Errors
    /// Returns an error when the channel is empty and all senders dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.rx.recv().map_err(|_| RecvError)
    }

    /// Receives without blocking.
    ///
    /// # Errors
    /// [`TryRecvError::Empty`] when nothing is queued yet,
    /// [`TryRecvError::Disconnected`] when the channel is drained and all
    /// senders are gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.rx.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// A blocking iterator over received values, ending when all senders
    /// are dropped.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.rx.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.rx.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.rx.iter()
    }
}

/// Creates a bounded channel with capacity `cap`; senders block when full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (
        Sender {
            tx: Tx::Bounded(tx),
        },
        Receiver { rx },
    )
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (
        Sender {
            tx: Tx::Unbounded(tx),
        },
        Receiver { rx },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_roundtrip_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn cross_thread_backpressure() {
        let (tx, rx) = bounded::<u64>(2);
        let sum = crate::thread::scope(|scope| {
            scope.spawn(move |_| {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            rx.iter().sum::<u64>()
        })
        .expect("join");
        assert_eq!(sum, 99 * 100 / 2);
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = bounded(2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn multiple_producers() {
        let (tx, rx) = unbounded::<u64>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.into_iter().sum::<u64>(), 3);
    }
}
