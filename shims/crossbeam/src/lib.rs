//! Offline stand-in for `crossbeam`: scoped threads over
//! `std::thread::scope` and MPSC channels over `std::sync::mpsc`.
//!
//! The API mirrors the crossbeam 0.8 call sites used in this workspace:
//!
//! * `crossbeam::scope(|scope| { scope.spawn(|_| ...); })` returning
//!   `Result<R, Box<dyn Any + Send>>` (Err when any spawned thread
//!   panicked).
//! * `crossbeam::channel::{bounded, unbounded}` with cloneable senders and
//!   iterable receivers.

pub mod channel;
pub mod thread;

pub use thread::scope;
