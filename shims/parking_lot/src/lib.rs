//! Offline stand-in for `parking_lot`: non-poisoning `Mutex` and `RwLock`
//! built on `std::sync`. Lock poisoning is deliberately swallowed
//! (`parking_lot` has no poisoning), so a panicked writer does not wedge
//! every later reader.

use std::fmt;
use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poison is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// A reader-writer lock whose guards never surface poison errors.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Poison is ignored.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard. Poison is ignored.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
