//! Offline placeholder for `serde`.
//!
//! The workspace's `serde` cargo features are **off by default** and cannot
//! be enabled against this shim (it provides no derive macros). It exists
//! only so the optional `serde = { workspace = true, optional = true }`
//! dependency entries resolve without network access. Enable the real
//! serde in `[workspace.dependencies]` to use the `serde` features.
