//! Offline placeholder for `serde_json`.
//!
//! Only referenced by serde round-trip test files that are entirely
//! `#![cfg(feature = "serde")]`-gated; with the feature off (the default,
//! and the only mode supported offline) nothing in this crate is used.
