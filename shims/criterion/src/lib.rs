//! Offline stand-in for `criterion`: a small functional benchmark harness
//! with the criterion 0.8 API surface this workspace's benches use
//! (`benchmark_group`, `Throughput`, `BenchmarkId`, `b.iter`,
//! `criterion_group!` / `criterion_main!`).
//!
//! Each benchmark is warmed up briefly, then timed over enough iterations
//! to cover a short measurement window; the mean per-iteration time (and
//! element throughput, when declared) is printed to stdout. No statistics,
//! plots, or baselines — this exists so `cargo bench` runs offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    measured: Duration,
    iterations: u64,
    warm_target: Duration,
    measure_target: Duration,
}

impl Bencher {
    /// Times repeated runs of `routine`, keeping its output alive via
    /// `black_box` so the optimizer cannot elide the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm target elapses (at least once).
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if warm_start.elapsed() >= self.warm_target {
                break;
            }
        }
        // Measurement: batches of doubling size until the window is filled.
        let mut iterations = 0u64;
        let mut elapsed = Duration::ZERO;
        let mut batch = 1u64;
        while elapsed < self.measure_target {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            elapsed += start.elapsed();
            iterations += batch;
            batch = batch.saturating_mul(2);
        }
        self.measured = elapsed;
        self.iterations = iterations;
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            measured: Duration::ZERO,
            iterations: 0,
            warm_target: self.criterion.warm_target,
            measure_target: self.criterion.measure_target,
        };
        f(&mut bencher);
        let mean = if bencher.iterations == 0 {
            Duration::ZERO
        } else {
            bencher.measured
                / u32::try_from(bencher.iterations.min(u64::from(u32::MAX))).unwrap_or(1)
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  {:>10.1} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!(
                    "  {:>10.1} MiB/s",
                    n as f64 / mean.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<32} {:>12.3?} /iter ({} iters){rate}",
            self.name, id.id, mean, bencher.iterations
        );
        self
    }

    /// Ends the group (printing nothing extra; present for API parity).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    warm_target: Duration,
    measure_target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_target: Duration::from_millis(80),
            measure_target: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            criterion: self,
            name: "bench".to_string(),
            throughput: None,
        };
        group.bench_function(id, f);
        self
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Criterion benchmark group entry point.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_measures() {
        let mut c = Criterion {
            warm_target: Duration::from_millis(1),
            measure_target: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("test");
        group.throughput(Throughput::Elements(10));
        let mut runs = 0u64;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| {
                runs += 1;
                runs
            });
        });
        group.finish();
        assert!(runs > 0);
    }
}
