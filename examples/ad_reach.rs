//! Ad-reach measurement with slice-and-dice (§3 of the survey: "how many
//! individuals were their adverts reaching?").
//!
//! Builds one HyperLogLog per (campaign × demographic) cell from a
//! synthetic impression log, then answers reach queries — per campaign,
//! per demographic slice, and cross-campaign overlap — by merging
//! sketches, exactly the Aggregate-Knowledge-style architecture.
//!
//! Run with: `cargo run --release --example ad_reach`

use std::collections::HashMap;
use std::collections::HashSet;

use sketches::cardinality::hll::intersection_estimate;
use sketches::prelude::*;
use sketches_workloads::ads::{AdWorkload, AGE_GROUPS, REGIONS};

fn main() -> SketchResult<()> {
    let users = 500_000u64;
    let campaigns = 4u32;
    let mut workload = AdWorkload::new(users, campaigns, 2026);
    let impressions = workload.stream(2_000_000);
    println!(
        "{} impressions over {} users, {} campaigns\n",
        impressions.len(),
        users,
        campaigns
    );

    // One sketch per (campaign, age group) cell; p=13 → ±1.15%.
    let mut cells: HashMap<(u32, u8), HyperLogLog> = HashMap::new();
    let mut exact: HashMap<(u32, u8), HashSet<u64>> = HashMap::new();
    for imp in &impressions {
        let key = (imp.campaign_id, imp.age_group);
        cells
            .entry(key)
            .or_insert_with(|| HyperLogLog::new(13, 7).expect("valid precision"))
            .update(&imp.user_id);
        exact.entry(key).or_default().insert(imp.user_id);
    }

    println!("== Campaign reach by age group (estimate vs exact) ==");
    println!(
        "{:>10} {:>8} {:>10} {:>10} {:>7}",
        "campaign", "age", "estimate", "exact", "err%"
    );
    for c in 0..campaigns {
        for (a, age) in AGE_GROUPS.iter().enumerate() {
            let key = (c, a as u8);
            let est = cells.get(&key).map_or(0.0, CardinalityEstimator::estimate);
            let truth = exact.get(&key).map_or(0, HashSet::len);
            let err = if truth > 0 {
                (est - truth as f64).abs() / truth as f64 * 100.0
            } else {
                0.0
            };
            println!("{c:>10} {age:>8} {est:>10.0} {truth:>10} {err:>6.2}%");
        }
    }

    // Slice-and-dice: total campaign reach = merge of its cells (the merge
    // is exactly the union sketch — no double counting).
    println!("\n== Total campaign reach (merged across age groups) ==");
    let mut campaign_sketches: Vec<HyperLogLog> = Vec::new();
    for c in 0..campaigns {
        let mut merged = HyperLogLog::new(13, 7)?;
        for a in 0..AGE_GROUPS.len() as u8 {
            if let Some(cell) = cells.get(&(c, a)) {
                merged.merge(cell)?;
            }
        }
        let truth: usize = (0..AGE_GROUPS.len() as u8)
            .flat_map(|a| exact.get(&(c, a)).into_iter().flatten())
            .collect::<HashSet<_>>()
            .len();
        println!(
            "  campaign {c}: estimate {:>9.0}   exact {:>9}   ({} bytes of sketch)",
            merged.estimate(),
            truth,
            merged.space_bytes()
        );
        campaign_sketches.push(merged);
    }

    // Cross-campaign overlap by inclusion-exclusion.
    println!("\n== Overlap: users reached by BOTH campaign 0 and 1 ==");
    let overlap = intersection_estimate(&campaign_sketches[0], &campaign_sketches[1])?;
    let exact_overlap = {
        let set0: HashSet<u64> = (0..AGE_GROUPS.len() as u8)
            .flat_map(|a| exact.get(&(0, a)).into_iter().flatten().copied())
            .collect();
        (0..AGE_GROUPS.len() as u8)
            .flat_map(|a| exact.get(&(1, a)).into_iter().flatten())
            .filter(|u| set0.contains(u))
            .collect::<HashSet<_>>()
            .len()
    };
    println!("  estimate {overlap:.0}   exact {exact_overlap}");

    // Regions work the same way — show one merged slice for flavour.
    println!(
        "\n== Reach of campaign 0 in {} (recomputed from the raw log) ==",
        REGIONS[0]
    );
    let mut na = HyperLogLog::new(13, 7)?;
    let mut na_exact = HashSet::new();
    for imp in &impressions {
        if imp.campaign_id == 0 && imp.region == 0 {
            na.update(&imp.user_id);
            na_exact.insert(imp.user_id);
        }
    }
    println!("  estimate {:.0}   exact {}", na.estimate(), na_exact.len());

    Ok(())
}
