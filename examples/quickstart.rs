//! Quickstart: the three bread-and-butter sketch queries — distinct
//! counts, heavy hitters, and quantiles — on one synthetic event stream,
//! with exact answers alongside for comparison.
//!
//! Run with: `cargo run --release --example quickstart`

use std::collections::{HashMap, HashSet};

use sketches::prelude::*;

fn main() -> SketchResult<()> {
    // A synthetic "page view" stream: 200k events, Zipf-ish page
    // popularity, 30k distinct users, log-normal-ish latencies.
    let mut hll = HyperLogLog::new(12, 42)?;
    let mut topk: SpaceSaving<u64> = SpaceSaving::new(64)?;
    let mut latency = KllSketch::new(200, 42)?;

    let mut exact_users: HashSet<u64> = HashSet::new();
    let mut exact_pages: HashMap<u64, u64> = HashMap::new();
    let mut exact_latencies: Vec<f64> = Vec::new();

    let mut state = 0x5EED_u64;
    let mut next = || {
        // A tiny inline SplitMix64 so the example is self-contained.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    for _ in 0..200_000 {
        let user = next() % 30_000;
        // Skewed page popularity: cube a uniform so low page ids dominate.
        let page = {
            let u = (next() % 1_000) as f64 / 1_000.0;
            (u * u * u * 99.0) as u64
        };
        let latency_ms =
            5.0 + (next() % 1000) as f64 / 10.0 + if next() % 100 == 0 { 500.0 } else { 0.0 }; // rare slow tail

        hll.update(&user);
        topk.update(&page);
        latency.update(&latency_ms);

        exact_users.insert(user);
        *exact_pages.entry(page).or_insert(0) += 1;
        exact_latencies.push(latency_ms);
    }

    exact_latencies.sort_by(f64::total_cmp);
    let exact_p99 = exact_latencies[(exact_latencies.len() * 99) / 100];

    println!(
        "== Distinct users (HyperLogLog, {} bytes) ==",
        hll.space_bytes()
    );
    println!("  exact   : {}", exact_users.len());
    println!("  estimate: {:.0}", hll.estimate());

    println!("\n== Top pages (SpaceSaving, 64 counters) ==");
    let mut exact_top: Vec<(u64, u64)> = exact_pages.iter().map(|(&p, &c)| (p, c)).collect();
    exact_top.sort_by_key(|e| std::cmp::Reverse(e.1));
    for (i, (page, est)) in topk.top_k(5).into_iter().enumerate() {
        println!(
            "  #{}  page {:>3}  est {:>7}   (exact top-{}: page {:>3} = {})",
            i + 1,
            page,
            est,
            i + 1,
            exact_top[i].0,
            exact_top[i].1
        );
    }

    println!(
        "\n== Latency quantiles (KLL, {} values retained) ==",
        latency.retained()
    );
    for (q, label) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
        let idx = ((q * exact_latencies.len() as f64) as usize).min(exact_latencies.len() - 1);
        println!(
            "  {label}: estimate {:>7.1} ms   exact {:>7.1} ms",
            latency.quantile(q)?,
            exact_latencies[idx]
        );
    }
    println!("  (exact p99 kept for the curious: {exact_p99:.1} ms)");

    println!(
        "\nSketch memory: {} bytes total vs {} exact-state bytes",
        hll.space_bytes() + topk.space_bytes() + latency.space_bytes(),
        exact_users.len() * 8 + exact_pages.len() * 16 + exact_latencies.len() * 8
    );
    Ok(())
}
