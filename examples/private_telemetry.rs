//! Privacy-preserving telemetry (§3 of the survey's "private data
//! analysis" era): collect each user's default browser under local
//! differential privacy, two ways — Google's RAPPOR and Apple's private
//! Count-Mean-Sketch — and compare the decoded frequencies to the truth
//! no server ever saw.
//!
//! Run with: `cargo run --release --example private_telemetry`

use sketches::hash::rng::Xoshiro256PlusPlus;
use sketches::privacy::{PrivateCmsClient, PrivateCmsServer, RapporAggregator, RapporClient};
use sketches_workloads::zipf::ZipfGenerator;

const BROWSERS: [&str; 8] = [
    "chrome", "safari", "edge", "firefox", "opera", "brave", "vivaldi", "lynx",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let population = 200_000;
    // Zipf-distributed browser shares.
    let mut pick = ZipfGenerator::new(BROWSERS.len() as u64, 1.2, 11)?;
    let users: Vec<&str> = (0..population)
        .map(|_| BROWSERS[(pick.sample() - 1) as usize])
        .collect();
    let mut truth = [0usize; 8];
    for &u in &users {
        truth[BROWSERS.iter().position(|&b| b == u).expect("known")] += 1;
    }
    println!("{population} users; the server never sees a single raw answer.\n");

    // --- RAPPOR (Bloom filter + permanent randomized response) ---
    let f = 0.25; // flip parameter
    let rappor_client = RapporClient::new(256, 2, f, 99)?;
    let mut rappor_server = RapporAggregator::new(256, 2, f, 99)?;
    let mut rng = Xoshiro256PlusPlus::new(123);
    for &u in &users {
        rappor_server.collect(&rappor_client.report(u, &mut rng))?;
    }
    println!(
        "== RAPPOR (ε ≈ {:.1} per one-time report) ==",
        rappor_client.epsilon()
    );
    println!(
        "{:>10} {:>10} {:>10} {:>7}",
        "browser", "estimate", "truth", "err%"
    );
    for (i, &b) in BROWSERS.iter().enumerate() {
        let est = rappor_server.estimate(b);
        let t = truth[i] as f64;
        println!(
            "{b:>10} {est:>10.0} {t:>10.0} {:>6.1}%",
            if t > 0.0 {
                (est - t).abs() / t * 100.0
            } else {
                0.0
            }
        );
    }

    // --- Apple-style private Count-Mean-Sketch ---
    let epsilon = 4.0;
    let cms_client = PrivateCmsClient::new(16, 1024, epsilon, 77)?;
    let mut cms_server = PrivateCmsServer::new(16, 1024, epsilon, 77)?;
    for &u in &users {
        cms_server.collect(&cms_client.report(u, &mut rng))?;
    }
    println!("\n== Private Count-Mean-Sketch (ε = {epsilon}) ==");
    println!(
        "{:>10} {:>10} {:>10} {:>7}",
        "browser", "estimate", "truth", "err%"
    );
    for (i, &b) in BROWSERS.iter().enumerate() {
        let est = cms_server.estimate(b);
        let t = truth[i] as f64;
        println!(
            "{b:>10} {est:>10.0} {t:>10.0} {:>6.1}%",
            if t > 0.0 {
                (est - t).abs() / t * 100.0
            } else {
                0.0
            }
        );
    }

    println!(
        "\nA browser nobody uses decodes to ≈0: RAPPOR {:.0}, CMS {:.0}",
        rappor_server.estimate("netscape"),
        cms_server.estimate("netscape")
    );
    Ok(())
}
