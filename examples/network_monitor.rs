//! Network monitoring à la Gigascope/CMON (§3 of the survey's "massive
//! data streams" era): per-source GROUP BY aggregates over a synthetic
//! IP-flow stream, maintained as thousands of parallel sketches by the
//! `streamdb` engine, with the exact engine alongside for a memory
//! comparison.
//!
//! Run with: `cargo run --release --example network_monitor`

use sketches::streamdb::{Aggregate, AggregateResult, ExactEngine, QuerySpec, SketchEngine, Value};
use sketches_workloads::flows::FlowWorkload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // SELECT src_ip, COUNT(*), COUNT(DISTINCT dst_ip),
    //        QUANTILES(bytes), TOPK(dst_port, 3)
    // FROM flows GROUP BY src_ip
    let spec = QuerySpec::new(
        vec![0],
        vec![
            Aggregate::Count,
            Aggregate::CountDistinct { field: 1 },
            Aggregate::Quantiles { field: 3 },
            Aggregate::TopK { field: 2, k: 3 },
        ],
    )?;

    let mut sketch_engine = SketchEngine::new(spec.clone())?;
    let mut exact_engine = ExactEngine::new(spec);

    let mut workload = FlowWorkload::new(50_000, 7);
    let flows = workload.stream(1_000_000);
    println!("processing {} flow records…", flows.len());

    for f in &flows {
        let row = vec![
            Value::U64(u64::from(f.src_ip)),
            Value::U64(u64::from(f.dst_ip)),
            Value::U64(u64::from(f.dst_port)),
            Value::F64(f.bytes as f64),
        ];
        sketch_engine.process(&row)?;
        exact_engine.process(&row)?;
    }

    println!(
        "\n{} groups tracked; sketch state {:.1} MiB vs exact state {:.1} MiB",
        sketch_engine.num_groups(),
        sketch_engine.state_bytes() as f64 / (1024.0 * 1024.0),
        exact_engine.state_bytes() as f64 / (1024.0 * 1024.0),
    );

    // Report the top talker (the Zipf head is src index 1 → 10.0.0.1).
    let talker = vec![Value::U64(u64::from(0x0A00_0000u32 | 1))];
    let approx = sketch_engine.report(&talker)?.expect("top talker present");
    let exact = exact_engine.report(&talker).expect("top talker present");

    println!("\n== Heaviest source 10.0.0.1 ==");
    for (what, a, e) in [
        ("flows", &approx[0], &exact[0]),
        ("distinct destinations", &approx[1], &exact[1]),
    ] {
        match (a, e) {
            (AggregateResult::Count(x), AggregateResult::Count(y)) => {
                println!("  {what:<22} sketch {x:>9}   exact {y:>9}");
            }
            (AggregateResult::CountDistinct(x), AggregateResult::CountDistinct(y)) => {
                println!("  {what:<22} sketch {x:>9.0}   exact {y:>9.0}");
            }
            _ => {}
        }
    }
    if let (
        AggregateResult::Quantiles { p50, p99, .. },
        AggregateResult::Quantiles {
            p50: ep50,
            p99: ep99,
            ..
        },
    ) = (&approx[2], &exact[2])
    {
        println!("  bytes p50              sketch {p50:>9.0}   exact {ep50:>9.0}");
        println!("  bytes p99              sketch {p99:>9.0}   exact {ep99:>9.0}");
    }
    if let (AggregateResult::TopK(a), AggregateResult::TopK(e)) = (&approx[3], &exact[3]) {
        println!(
            "  top destination ports  sketch {:?}",
            a.iter()
                .map(|(v, c)| (format!("{v:?}"), *c))
                .collect::<Vec<_>>()
        );
        println!(
            "                         exact  {:?}",
            e.iter()
                .map(|(v, c)| (format!("{v:?}"), *c))
                .collect::<Vec<_>>()
        );
    }

    // The survey's point: the same engine state can also be merged from
    // shards (distributed monitors) — demonstrate briefly.
    let mut shard_a = SketchEngine::new(sketch_engine_spec()?)?;
    let mut shard_b = SketchEngine::new(sketch_engine_spec()?)?;
    for (i, f) in flows.iter().take(100_000).enumerate() {
        let row = vec![
            Value::U64(u64::from(f.src_ip)),
            Value::U64(u64::from(f.dst_ip)),
            Value::U64(u64::from(f.dst_port)),
            Value::F64(f.bytes as f64),
        ];
        if i % 2 == 0 {
            shard_a.process(&row)?;
        } else {
            shard_b.process(&row)?;
        }
    }
    shard_a.merge(&shard_b)?;
    println!(
        "\nmerged 2 monitor shards: {} rows, {} groups — per-group sketches merged losslessly",
        shard_a.rows_processed(),
        shard_a.num_groups()
    );
    Ok(())
}

fn sketch_engine_spec() -> Result<QuerySpec, Box<dyn std::error::Error>> {
    Ok(QuerySpec::new(
        vec![0],
        vec![
            Aggregate::Count,
            Aggregate::CountDistinct { field: 1 },
            Aggregate::Quantiles { field: 3 },
            Aggregate::TopK { field: 2, k: 3 },
        ],
    )?)
}
