//! Communication-efficient federated learning with sketched gradients
//! (§3 of the survey's "optimizing machine learning" direction; FetchSGD).
//!
//! Trains the same logistic-regression model two ways — dense FedSGD and
//! FetchSGD (Count-Sketch compressed gradients with server-side momentum
//! and error feedback) — and reports accuracy against uplink bytes.
//!
//! Run with: `cargo run --release --example federated_training`

use sketches::ml::{FedSgdTrainer, FetchSgdConfig, FetchSgdTrainer, LogisticModel, SyntheticTask};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d = 16_384;
    let clients = 8;
    let task = SyntheticTask::generate_with_sparsity(1_200, d, 96, 0.02, 3)?;
    let shards = task.shard(clients);
    println!(
        "task: {} examples, d = {d}, {} active features, {clients} clients\n",
        task.len(),
        96
    );

    let rounds = 40;

    let mut dense_model = LogisticModel::new(d);
    let dense = FedSgdTrainer { lr: 1.0 }.train(&mut dense_model, &shards, rounds)?;

    let mut sketch_model = LogisticModel::new(d);
    let cfg = FetchSgdConfig {
        cols: 768,
        top_k: 192,
        ..FetchSgdConfig::default()
    };
    let sketched = FetchSgdTrainer { config: cfg }.train(&mut sketch_model, &shards, rounds)?;

    println!(
        "{:>12} {:>10} {:>10} {:>16} {:>14}",
        "method", "accuracy", "log-loss", "uplink bytes", "bytes/round"
    );
    for (name, r) in [("FedSGD", dense), ("FetchSGD", sketched)] {
        println!(
            "{name:>12} {:>9.1}% {:>10.4} {:>16} {:>14}",
            r.final_accuracy * 100.0,
            r.final_loss,
            r.bytes_uplinked,
            r.bytes_uplinked / r.rounds as u64
        );
    }

    println!(
        "\nFetchSGD uplinks {:.1}x less per round at comparable accuracy.",
        (d * 8) as f64 / (cfg.rows * cfg.cols * 8) as f64
    );
    Ok(())
}
