//! Helper library for the workspace integration tests.
//!
//! The actual integration tests live in `tests/tests/*.rs`; this crate only
//! exists to give them a package to hang off and a couple of shared
//! assertion helpers.

/// Asserts that `actual` is within `tol` relative error of `expected`.
///
/// # Panics
/// Panics with a diagnostic message when the relative error exceeds `tol`.
pub fn assert_rel_err(expected: f64, actual: f64, tol: f64, context: &str) {
    let denom = expected.abs().max(1e-12);
    let rel = (actual - expected).abs() / denom;
    assert!(
        rel <= tol,
        "{context}: expected {expected}, got {actual} (relative error {rel:.4} > {tol})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_err_passes_within_tolerance() {
        assert_rel_err(100.0, 104.0, 0.05, "ok");
    }

    #[test]
    #[should_panic(expected = "relative error")]
    fn rel_err_fails_outside_tolerance() {
        assert_rel_err(100.0, 120.0, 0.05, "bad");
    }
}
