//! Failure injection: every family must refuse incompatible merges with a
//! typed error (never panic, never silently corrupt), reject invalid
//! parameters, and answer empty-state queries sanely. One consolidated
//! sweep so a regression in any crate's error discipline fails loudly.

use sketches::core::{CardinalityEstimator, MergeSketch, QuantileSketch, SketchError, Update};
use sketches::prelude::*;

/// Asserts the result is an `Incompatible` error (not Ok, not a panic).
fn expect_incompatible<T>(r: Result<T, SketchError>, what: &str) {
    match r {
        Err(SketchError::Incompatible { .. }) => {}
        Err(other) => panic!("{what}: wrong error kind: {other}"),
        Ok(_) => panic!("{what}: incompatible merge was accepted"),
    }
}

#[test]
fn incompatible_merges_are_typed_errors_everywhere() {
    // Different shapes.
    let mut hll = HyperLogLog::new(10, 0).unwrap();
    expect_incompatible(
        hll.merge(&HyperLogLog::new(11, 0).unwrap()),
        "hll precision",
    );
    // Different seeds (same shape).
    expect_incompatible(hll.merge(&HyperLogLog::new(10, 1).unwrap()), "hll seed");

    let mut cm = CountMinSketch::new(64, 4, 0).unwrap();
    expect_incompatible(
        cm.merge(&CountMinSketch::new(64, 5, 0).unwrap()),
        "cm depth",
    );
    expect_incompatible(cm.merge(&CountMinSketch::new(64, 4, 9).unwrap()), "cm seed");

    let mut kll = KllSketch::new(100, 0).unwrap();
    expect_incompatible(kll.merge(&KllSketch::new(200, 0).unwrap()), "kll k");

    let mut bloom = BloomFilter::new(128, 3, 0).unwrap();
    expect_incompatible(
        bloom.merge(&BloomFilter::new(128, 4, 0).unwrap()),
        "bloom k",
    );

    let mut td = TDigest::new(100.0).unwrap();
    expect_incompatible(td.merge(&TDigest::new(200.0).unwrap()), "tdigest delta");

    let mut kmv = KmvSketch::new(16, 0).unwrap();
    expect_incompatible(kmv.merge(&KmvSketch::new(16, 1).unwrap()), "kmv seed");

    let mut qd = QDigest::new(8, 16).unwrap();
    expect_incompatible(qd.merge(&QDigest::new(9, 16).unwrap()), "qdigest domain");

    let mut mg: MisraGries<u32> = MisraGries::new(8).unwrap();
    expect_incompatible(mg.merge(&MisraGries::new(9).unwrap()), "mg k");
}

#[test]
fn failed_merges_leave_the_receiver_usable() {
    // A rejected merge must not corrupt the receiving sketch.
    let mut hll = HyperLogLog::new(10, 0).unwrap();
    for i in 0..10_000u64 {
        hll.update(&i);
    }
    let before = hll.estimate();
    let _ = hll.merge(&HyperLogLog::new(11, 0).unwrap());
    assert_eq!(hll.estimate(), before, "failed merge changed the sketch");

    let mut kll = KllSketch::new(100, 0).unwrap();
    for i in 0..5_000 {
        kll.update(&f64::from(i));
    }
    let before = kll.quantile(0.5).unwrap();
    let _ = kll.merge(&KllSketch::new(200, 0).unwrap());
    assert_eq!(kll.quantile(0.5).unwrap(), before);
}

#[test]
fn invalid_parameters_are_rejected_not_clamped() {
    assert!(HyperLogLog::new(0, 0).is_err());
    assert!(HyperLogLog::new(99, 0).is_err());
    assert!(CountMinSketch::new(0, 4, 0).is_err());
    assert!(CountMinSketch::from_error_bounds(-0.1, 0.5, 0).is_err());
    assert!(CountMinSketch::from_error_bounds(0.1, f64::NAN, 0).is_err());
    assert!(KllSketch::new(0, 0).is_err());
    assert!(TDigest::new(-5.0).is_err());
    assert!(GreenwaldKhanna::new(0.7).is_err());
    assert!(BloomFilter::with_capacity(100, 2.0, 0).is_err());
    assert!(CuckooFilter::with_capacity(0, 0).is_err());
    assert!(QDigest::new(40, 8).is_err());
    assert!(SpaceSaving::<u32>::new(0).is_err());
}

#[test]
fn empty_sketches_answer_sanely() {
    assert_eq!(HyperLogLog::new(8, 0).unwrap().estimate(), 0.0);
    assert_eq!(KmvSketch::new(16, 0).unwrap().estimate(), 0.0);
    assert!(matches!(
        KllSketch::new(64, 0).unwrap().quantile(0.5),
        Err(SketchError::EmptySketch)
    ));
    assert!(matches!(
        TDigest::new(100.0).unwrap().quantile(0.5),
        Err(SketchError::EmptySketch)
    ));
    let ss: SpaceSaving<u32> = SpaceSaving::new(4).unwrap();
    assert_eq!(ss.top_k(3), vec![]);
    assert!(ss.heavy_hitters(0.1).is_empty());
    let mg: MisraGries<u32> = MisraGries::new(4).unwrap();
    assert_eq!(mg.estimate(&7), 0);
    use sketches::core::MembershipTester;
    assert!(!BloomFilter::new(128, 3, 0).unwrap().contains(&1u8));
}

#[test]
fn quantile_queries_validate_q() {
    let mut kll = KllSketch::new(64, 0).unwrap();
    kll.update(&1.0);
    for bad in [-0.1, 1.1, f64::NAN] {
        assert!(kll.quantile(bad).is_err(), "q = {bad} should be rejected");
    }
    let mut td = TDigest::new(100.0).unwrap();
    td.update(&1.0);
    assert!(td.quantile(2.0).is_err());
}

#[test]
fn error_messages_name_the_problem() {
    // Errors carry enough context to debug a config mistake from a log line.
    let err = HyperLogLog::new(25, 0).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("precision"), "unhelpful message: {msg}");

    let mut a = CountMinSketch::new(64, 4, 0).unwrap();
    let err = a
        .merge(&CountMinSketch::new(128, 4, 0).unwrap())
        .unwrap_err();
    assert!(err.to_string().contains("dimensions"), "{err}");
}
