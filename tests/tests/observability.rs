//! Telemetry contract tests: the metrics a running engine exports are
//! *exact* — counter totals from a 4-shard engine are byte-identical to a
//! sequential engine fed the same stream (rollbacks included), recovery
//! surfaces its torn-tail repairs as counters, snapshot merging never
//! panics, and routing skew is visible in the per-shard gauges.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use sketches::streamdb::metrics::names;
use sketches::streamdb::{
    Aggregate, CheckpointPolicy, DurableEngine, FaultPolicy, QuerySpec, Row, ShardedEngine,
    SketchEngine, StreamEngine, Value,
};
use sketches_workloads::zipf::ZipfGenerator;

fn spec() -> QuerySpec {
    QuerySpec::new(
        vec![0],
        vec![
            Aggregate::Count,
            Aggregate::Sum { field: 2 },
            Aggregate::CountDistinct { field: 1 },
            Aggregate::Quantiles { field: 2 },
        ],
    )
    .expect("valid spec")
}

fn rows(seed: u64, n: u64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed);
            vec![
                Value::U64(x % 23),
                Value::U64(x % 307),
                Value::F64((x % 1_000) as f64),
            ]
        })
        .collect()
}

/// Drives one engine through the full counter vocabulary: clean commits,
/// quarantined rows, an arity rollback, and a mid-batch type rollback.
fn drive<E: StreamEngine>(engine: &mut E) {
    for b in 0..3u64 {
        engine.process_batch(&rows(b, 500)).expect("clean batch");
    }
    // Quarantine: 10 poison rows (short and non-numeric alternating)
    // diverted, the rest ingested.
    engine.set_fault_policy(FaultPolicy::Quarantine { max_samples: 4 });
    let mut dirty = rows(77, 300);
    for k in 0..10usize {
        dirty.insert(
            (k * 31) % dirty.len(),
            if k % 2 == 0 {
                vec![Value::U64(1)]
            } else {
                vec![Value::U64(1), Value::U64(2), Value::Str("poison".into())]
            },
        );
    }
    engine.process_batch(&dirty).expect("quarantine ingests");
    // FailBatch on a short row: rolled back before (sequential: after
    // partially ingesting; sharded: at router pre-validation).
    engine.set_fault_policy(FaultPolicy::FailBatch);
    let mut short = rows(78, 200);
    short.insert(140, vec![Value::U64(9)]);
    engine.process_batch(&short).expect_err("short row fails");
    // FailBatch on a type error: arity passes the router, so the rollback
    // happens mid-ingest on both engines.
    let mut typed = rows(79, 200);
    typed.insert(
        60,
        vec![Value::U64(3), Value::U64(4), Value::Str("x".into())],
    );
    engine.process_batch(&typed).expect_err("type error fails");
    engine.process_batch(&rows(80, 500)).expect("final batch");
}

#[test]
fn sharded_counter_totals_are_byte_identical_to_sequential() {
    let mut seq = SketchEngine::new(spec()).expect("engine");
    let mut sharded = ShardedEngine::new(spec(), 4).expect("engine");
    drive(&mut seq);
    drive(&mut sharded);

    let seq_snap = seq.metrics();
    let sh_snap = sharded.metrics();
    // The whole counter map — name for name, total for total. Rollbacks
    // must have rewound the row counters on both engines for this to hold.
    assert_eq!(seq_snap.counters, sh_snap.counters);
    assert_eq!(seq_snap.counters[names::ROWS_INGESTED], 4 * 500 + 300);
    assert_eq!(seq_snap.counters[names::ROWS_QUARANTINED], 10);
    assert_eq!(seq_snap.counters[names::BATCHES_COMMITTED], 5);
    assert_eq!(seq_snap.counters[names::BATCHES_ROLLED_BACK], 2);
    assert_eq!(seq_snap.counters[names::PANICS_CONTAINED], 0);
    // Shard gauges sum to the sequential point-in-time values.
    assert_eq!(
        seq_snap.gauges[names::GROUPS],
        sh_snap.gauges[names::GROUPS]
    );
    assert_eq!(
        seq_snap.gauges[names::STATE_BYTES],
        sh_snap.gauges[names::STATE_BYTES]
    );
    assert_eq!(sh_snap.gauges[names::SHARDS], 4);
}

#[test]
fn disabling_metrics_changes_no_observable_state() {
    let mut on = SketchEngine::new(spec()).expect("engine");
    let mut off = SketchEngine::new(spec()).expect("engine");
    off.set_metrics_enabled(false);
    drive(&mut on);
    drive(&mut off);
    // Telemetry is an observer: engine state is identical with it off...
    assert_eq!(on.to_snapshot_bytes(), off.to_snapshot_bytes());
    // ...and the disabled engine reports only zeroed counters.
    assert!(off.metrics().counters.values().all(|&v| v == 0));
    assert_eq!(off.metrics().counters.len(), on.metrics().counters.len());
}

fn scratch_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("sketches-obs-{}-{tag}-{n}", std::process::id()))
}

#[test]
fn torn_tail_recovery_is_counted_and_reported() {
    let dir = scratch_dir("torn");
    let _ = std::fs::remove_dir_all(&dir);
    let mut durable = DurableEngine::create(
        &dir,
        SketchEngine::new(spec()).expect("engine"),
        CheckpointPolicy::default(),
    )
    .expect("create");
    durable.process_batch(&rows(1, 120)).expect("batch 0");
    durable.process_batch(&rows(2, 120)).expect("batch 1");
    drop(durable);

    // Tear the final WAL record, as a crash mid-append would.
    let wal = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "wal"))
        .expect("wal segment");
    let bytes = std::fs::read(&wal).expect("read wal");
    std::fs::write(&wal, &bytes[..bytes.len() - 11]).expect("tear");

    let recovered = DurableEngine::<SketchEngine>::recover(&dir).expect("recover");
    let snap = recovered.metrics();
    assert_eq!(snap.counters[names::RECOVERIES], 1);
    assert_eq!(snap.counters[names::RECOVERY_TORN_TAIL_TRUNCATIONS], 1);
    assert!(snap.counters[names::RECOVERY_TORN_TAIL_BYTES] > 0);
    assert_eq!(snap.counters[names::RECOVERY_BATCHES_REPLAYED], 1);
    assert_eq!(snap.counters[names::RECOVERY_ROWS_REPLAYED], 120);
    // The torn-tail warning rides along as an event.
    assert!(
        snap.events.iter().any(|e| e.message.contains("torn")),
        "no torn-tail event: {:?}",
        snap.events
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zipf_skew_is_visible_in_shard_routing_gauges() {
    let shards = 4usize;
    let mut zipf = ZipfGenerator::new(1_000, 1.3, 7).expect("zipf");
    let stream: Vec<Row> = (0..20_000u64)
        .map(|i| {
            vec![
                Value::U64(zipf.sample()),
                Value::U64(i % 211),
                Value::F64((i % 500) as f64),
            ]
        })
        .collect();
    let mut engine = ShardedEngine::new(spec(), shards).expect("engine");
    engine.process_batch(&stream).expect("ingest");

    let snap = engine.metrics();
    let routed: Vec<u64> = (0..shards)
        .map(|i| snap.gauges[&names::shard_rows_routed(i)])
        .collect();
    // The routing gauges are an exact decomposition of the ingest counter.
    assert_eq!(routed.iter().sum::<u64>(), 20_000);
    assert_eq!(snap.counters[names::ROWS_INGESTED], 20_000);
    let hottest = *routed.iter().max().expect("gauges");
    let coldest = *routed.iter().min().expect("gauges");
    // Hash routing still reaches every shard under Zipf keys...
    assert!(coldest > 0, "a shard went cold: {routed:?}");
    // ...but the shard that drew the head key is visibly hotter — the
    // load imbalance the gauges exist to surface. Zipf(1.3) puts ~28% of
    // the stream on the single hottest key.
    assert!(
        hottest as f64 / coldest as f64 > 1.2,
        "expected visible skew, got {routed:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Snapshot merging across random topologies and stream sizes never
    /// panics, keeps counters additive, and leaves every rendering path
    /// (table / Prometheus / JSON — all of which query histogram
    /// quantiles) total.
    #[test]
    fn prop_snapshot_merge_is_total_and_additive(
        seed in 0u64..1_000_000,
        shards_a in 1usize..5,
        shards_b in 1usize..5,
        na in 1u64..600,
        nb in 1u64..600,
    ) {
        let mut a = ShardedEngine::new(spec(), shards_a).expect("engine");
        for chunk in rows(seed, na).chunks(97) {
            a.process_batch(chunk).expect("ingest a");
        }
        let mut b = ShardedEngine::new(spec(), shards_b).expect("engine");
        for chunk in rows(seed ^ 0xABCD, nb).chunks(61) {
            b.process_batch(chunk).expect("ingest b");
        }
        let mut merged = a.metrics();
        merged.merge(&b.metrics()).expect("same histogram shape");
        prop_assert_eq!(merged.counters[names::ROWS_INGESTED], na + nb);
        let h = &merged.histograms[names::BATCH_LATENCY];
        prop_assert_eq!(
            h.count(),
            a.metrics().histograms[names::BATCH_LATENCY].count()
                + b.metrics().histograms[names::BATCH_LATENCY].count()
        );
        let table = merged.to_table();
        prop_assert!(table.contains(names::ROWS_INGESTED));
        prop_assert!(!merged.to_prometheus().is_empty());
        prop_assert!(merged.to_json().starts_with('{'));
    }
}
