//! Integration drills for the `sketches-serve` front door over real TCP:
//! the full ingest → query → metrics walkthrough, a stalled client hitting
//! the request deadline, overload shedding with a tiny worker pool, the
//! poisoned-engine read-only degradation, and a graceful drain whose final
//! checkpoint restores byte-exact. Every exchange uses a plain blocking
//! socket client, so these tests exercise exactly what `curl` would see.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sketches::streamdb::{
    silence_injected_panics, Aggregate, CheckpointPolicy, ConcurrentEngine, DurableEngine,
    QuerySpec,
};
use sketches_serve::{Backend, Limits, RetryPolicy, Server, ServerConfig};

fn spec() -> QuerySpec {
    QuerySpec::new(
        vec![0],
        vec![
            Aggregate::Count,
            Aggregate::Sum { field: 2 },
            Aggregate::CountDistinct { field: 1 },
        ],
    )
    .expect("valid spec")
}

fn scratch_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "sketches-serve-it-{}-{tag}-{n}",
        std::process::id()
    ))
}

fn volatile_server(config: ServerConfig) -> Server {
    let engine = ConcurrentEngine::new(spec(), 2).expect("engine");
    Server::start(config, Backend::Volatile(engine)).expect("server")
}

/// One blocking HTTP exchange. Tolerates a connection reset *after* a
/// complete response head arrived (a shed connection may be closed hard
/// once the response is written).
fn exchange(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: it\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(e) => {
                assert!(
                    raw.windows(4).any(|w| w == b"\r\n\r\n"),
                    "connection error before response head ({e})"
                );
                break;
            }
        }
    }
    let raw = String::from_utf8_lossy(&raw).to_string();
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {raw:?}"));
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, head.to_string(), body.to_string())
}

fn ingest_rows(addr: SocketAddr, n: u64, group_mod: u64) -> (u16, String) {
    let rows: Vec<String> = (0..n)
        .map(|i| format!("[{},{},{}.0]", i % group_mod, i % 17, i % 5))
        .collect();
    let body = format!("{{\"rows\":[{}]}}", rows.join(","));
    let (status, _, resp) = exchange(addr, "POST", "/v1/ingest", &body);
    (status, resp)
}

/// The curl-level walkthrough from the README: ingest, query a group,
/// list groups, scrape metrics, probe health — every response typed.
#[test]
fn walkthrough_ingest_query_groups_metrics_health() {
    let server = volatile_server(ServerConfig::default());
    let addr = server.addr();

    let (status, resp) = ingest_rows(addr, 100, 4);
    assert_eq!(status, 200, "{resp}");
    assert!(resp.contains("\"ingested\":100"), "{resp}");

    let (status, _, body) = exchange(addr, "GET", "/v1/report?key=%5B1%5D", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("{\"agg\":\"count\",\"value\":25}"), "{body}");

    let (status, _, body) = exchange(addr, "GET", "/v1/groups", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"total\":4"), "{body}");

    let (status, _, body) = exchange(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        body.contains("# TYPE serve_requests_total counter"),
        "{body}"
    );
    assert!(
        body.contains("serve_requests_total{route=\"ingest\",status=\"200\"} 1"),
        "{body}"
    );

    let (status, _, _) = exchange(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let (status, _, _) = exchange(addr, "GET", "/readyz", "");
    assert_eq!(status, 200);

    let (status, _, body) = exchange(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    assert!(body.contains("not_found"), "{body}");

    let (status, _, body) = exchange(addr, "POST", "/v1/ingest", "{\"rows\":");
    assert_eq!(status, 400);
    assert!(body.contains("bad_body"), "{body}");

    let _ = server.shutdown();
}

/// Like [`exchange`] but keeps the body as raw bytes (for the binary
/// `/v1/view` envelope).
fn exchange_bytes(addr: SocketAddr, method: &str, path: &str) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let head = format!("{method} {path} HTTP/1.1\r\nHost: it\r\nContent-Length: 0\r\n\r\n");
    stream.write_all(head.as_bytes()).expect("write head");
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
        }
    }
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head");
    let head = String::from_utf8_lossy(&raw[..split]).to_string();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {head:?}"));
    (status, head, raw[split + 4..].to_vec())
}

/// The read-optimized surface: batched reports (both spellings), the
/// slim binary `/v1/view` envelope, typed `bad_keys` rejections, and the
/// `snapshot_kind` field on `/readyz`.
#[test]
fn batched_report_view_endpoint_and_snapshot_kind() {
    use sketches::streamdb::EngineView;
    let server = volatile_server(ServerConfig::default());
    let addr = server.addr();

    let (status, resp) = ingest_rows(addr, 100, 4);
    assert_eq!(status, 200, "{resp}");

    // keys= list: two known groups plus one unknown, answered in order.
    let (status, _, body) = exchange(addr, "GET", "/v1/report?keys=%5B1%5D,%5B2%5D,%5B9%5D", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"version\":1"), "{body}");
    assert!(body.contains("\"found\":true"), "{body}");
    assert!(body.contains("\"found\":false"), "{body}");
    assert_eq!(body.matches("\"key\":").count(), 3, "{body}");
    assert!(body.contains("{\"agg\":\"count\",\"value\":25}"), "{body}");

    // Repeated key= parameters are the same batch.
    let (status, _, body) = exchange(addr, "GET", "/v1/report?key=%5B1%5D&key=%5B2%5D", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"version\":1"), "{body}");
    assert_eq!(body.matches("\"found\":true").count(), 2, "{body}");

    // The single-key form keeps its original response shape.
    let (status, _, body) = exchange(addr, "GET", "/v1/report?key=%5B1%5D", "");
    assert_eq!(status, 200, "{body}");
    assert!(!body.contains("\"version\""), "{body}");
    assert!(!body.contains("\"found\""), "{body}");

    // Typed 400s: empty and oversized key lists.
    let (status, _, body) = exchange(addr, "GET", "/v1/report?keys=", "");
    assert_eq!(status, 400);
    assert!(body.contains("bad_keys"), "{body}");
    let many = vec!["%5B1%5D"; 65].join(",");
    let (status, _, body) = exchange(addr, "GET", &format!("/v1/report?keys={many}"), "");
    assert_eq!(status, 400);
    assert!(body.contains("bad_keys"), "{body}");
    assert!(body.contains("65"), "{body}");

    // /v1/view ships the checksummed slim envelope — parseable, current,
    // and smaller than the fat snapshot a replica would otherwise pull.
    let (status, head, bytes) = exchange_bytes(addr, "GET", "/v1/view");
    assert_eq!(status, 200, "{head}");
    assert!(head.contains("application/octet-stream"), "{head}");
    let view = EngineView::from_view_bytes(&bytes).expect("view envelope parses");
    assert_eq!(view.rows_processed(), 100);
    let fat = server.reader().to_snapshot_bytes();
    assert!(
        bytes.len() < fat.len(),
        "view ({}) must undercut the fat snapshot ({})",
        bytes.len(),
        fat.len()
    );

    // /readyz names the checkpoint kind without parsing envelope bytes.
    let (status, _, body) = exchange(addr, "GET", "/readyz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"snapshot_kind\":\"sharded\""), "{body}");

    // Wrong method on the new path is a typed 405, not a 404.
    let (status, _, body) = exchange(addr, "POST", "/v1/view", "");
    assert_eq!(status, 405);
    assert!(body.contains("method_not_allowed"), "{body}");

    let _ = server.shutdown();
}

/// A client that connects and then stalls mid-request gets a typed 504
/// once the budget lapses — and the worker is reclaimed: the very next
/// request is served normally.
#[test]
fn stalled_client_gets_typed_504_and_worker_is_reclaimed() {
    let server = volatile_server(ServerConfig {
        workers: 1,
        read_timeout: Duration::from_millis(100),
        request_budget: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let addr = server.addr();

    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    // Head never finishes: no trailing blank line, and no further bytes.
    stalled
        .write_all(b"POST /v1/ingest HTTP/1.1\r\n")
        .expect("partial head");
    let mut raw = String::new();
    let _ = stalled.read_to_string(&mut raw);
    assert!(raw.starts_with("HTTP/1.1 504"), "{raw:?}");
    assert!(raw.contains("deadline_exceeded"), "{raw:?}");

    let (status, resp) = ingest_rows(addr, 10, 2);
    assert_eq!(status, 200, "worker not reclaimed: {resp}");

    let report = server.shutdown();
    assert!(report.requests_completed >= 2);
}

/// With one worker and a depth-1 queue, a burst behind a stalled
/// connection is load-shed with a typed 429 + `Retry-After` rather than
/// queued without bound.
#[test]
fn overload_sheds_typed_429_with_retry_after() {
    let server = volatile_server(ServerConfig {
        workers: 1,
        queue_depth: 1,
        read_timeout: Duration::from_millis(400),
        request_budget: Duration::from_millis(800),
        retry_after_secs: 3,
        ..ServerConfig::default()
    });
    let addr = server.addr();

    // Occupy the single worker and its queue slot with stalled
    // connections that send nothing.
    let pins: Vec<TcpStream> = (0..2)
        .map(|_| {
            let s = TcpStream::connect(addr).expect("pin");
            std::thread::sleep(Duration::from_millis(30));
            s
        })
        .collect();

    let mut sheds = 0u32;
    for _ in 0..6 {
        let (status, head, body) = exchange(addr, "GET", "/healthz", "");
        assert!(
            status == 200 || status == 429,
            "unexpected status {status}: {body}"
        );
        if status == 429 {
            sheds += 1;
            assert!(head.contains("Retry-After: 3"), "{head}");
            assert!(body.contains("overloaded"), "{body}");
        }
    }
    assert!(sheds > 0, "burst behind a full queue must shed");
    drop(pins);

    let report = server.shutdown();
    assert!(report.shed_total >= u64::from(sheds));
}

/// A poisoned coordinator flips the server read-only: ingest sheds with a
/// typed 503, queries keep serving the last published epoch, liveness
/// stays green, readiness goes red.
#[test]
fn poisoned_engine_degrades_to_read_only() {
    silence_injected_panics();
    let server = volatile_server(ServerConfig::default());
    let addr = server.addr();

    let (status, resp) = ingest_rows(addr, 60, 3);
    assert_eq!(status, 200, "{resp}");

    server.inject_coordinator_panic();
    // Degradation is detected on the ingest path; poke until it flips.
    let mut flipped = false;
    for _ in 0..100 {
        let (status, resp) = ingest_rows(addr, 3, 3);
        if status == 503 {
            assert!(resp.contains("read_only"), "{resp}");
            flipped = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        flipped,
        "poisoned engine never flipped the server read-only"
    );
    assert!(server.is_degraded());

    let (status, _, body) = exchange(addr, "GET", "/v1/report?key=%5B1%5D", "");
    assert_eq!(status, 200, "reads must survive degradation: {body}");
    assert!(body.contains("{\"agg\":\"count\",\"value\":20}"), "{body}");

    let (status, _, _) = exchange(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "liveness stays green while degraded");
    let (status, _, body) = exchange(addr, "GET", "/readyz", "");
    assert_eq!(status, 503, "readiness goes red while degraded");
    assert!(body.contains("degraded"), "{body}");

    let _ = server.shutdown();
}

/// Oversized request bodies are refused with a typed 413 before any
/// engine work happens.
#[test]
fn oversized_body_is_typed_413() {
    let server = volatile_server(ServerConfig {
        limits: Limits {
            max_body_bytes: 256,
            ..Limits::default()
        },
        ..ServerConfig::default()
    });
    let big = format!("{{\"rows\":[{}]}}", "[1,2,3.0],".repeat(100));
    let (status, _, body) = exchange(server.addr(), "POST", "/v1/ingest", &big);
    assert_eq!(status, 413);
    assert!(body.contains("too_large"), "{body}");
    let _ = server.shutdown();
}

/// Graceful drain: shutdown flushes a final checkpoint, and a fresh
/// recovery from the same directory restores the engine byte-exact with
/// every acknowledged row.
#[test]
fn drain_flushes_checkpoint_and_restart_is_byte_exact() {
    let dir = scratch_dir("drain");
    // A WAL-roll policy big enough that only the drain checkpoint runs.
    let policy = CheckpointPolicy::new(1_000_000, u64::MAX).expect("policy");
    let engine = ConcurrentEngine::new(spec(), 2).expect("engine");
    let durable = DurableEngine::create(dir.clone(), engine, policy).expect("durable engine");
    let server = Server::start(
        ServerConfig {
            retry: RetryPolicy {
                seed: 7,
                ..RetryPolicy::default()
            },
            ..ServerConfig::default()
        },
        Backend::durable(durable, dir.clone()),
    )
    .expect("server");
    let addr = server.addr();

    let mut acked = 0u64;
    for _ in 0..5 {
        let (status, resp) = ingest_rows(addr, 200, 8);
        assert_eq!(status, 200, "{resp}");
        acked += 200;
    }
    let bytes_before = server.reader().to_snapshot_bytes();

    let report = server.shutdown();
    assert!(report.checkpointed, "drain must flush a final checkpoint");
    assert_eq!(report.checkpoint_error, None);
    assert!(report.requests_completed >= 5);

    let recovered = DurableEngine::<ConcurrentEngine>::recover(&dir).expect("recover");
    assert_eq!(recovered.engine().rows_processed(), acked);
    assert_eq!(
        recovered.engine().to_snapshot_bytes(),
        bytes_before,
        "restart must restore the drained state byte-exact"
    );
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}
