//! The `StreamEngine` equivalence suite: written ONCE against the trait,
//! executed for both implementations — plus cross-implementation checks
//! that the sequential and sharded engines answer identically through the
//! unified surface.

use sketches::streamdb::{
    Aggregate, FaultPolicy, QuerySpec, Row, ShardedEngine, SketchEngine, StreamEngine, Value,
};

fn spec() -> QuerySpec {
    QuerySpec::new(
        vec![0],
        vec![
            Aggregate::Count,
            Aggregate::Sum { field: 2 },
            Aggregate::CountDistinct { field: 1 },
            Aggregate::Quantiles { field: 2 },
            Aggregate::TopK { field: 1, k: 4 },
        ],
    )
    .expect("valid spec")
}

fn rows(seed: u64, n: u64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed);
            vec![
                Value::U64(x % 11),
                Value::U64(x % 257),
                Value::F64((x % 1_000) as f64),
            ]
        })
        .collect()
}

/// The generic suite: every behavioural guarantee the trait documents,
/// checked through the trait alone.
fn suite<E: StreamEngine>(mut engine: E) {
    // Transactional ingest + accounting.
    let batch = rows(7, 2_000);
    let summary = engine.process_batch(&batch).expect("clean batch");
    assert_eq!(summary.rows_ingested, 2_000);
    assert_eq!(summary.rows_quarantined, 0);
    assert_eq!(engine.rows_processed(), 2_000);
    assert_eq!(engine.num_groups(), 11);
    assert!(engine.state_bytes() > 0);

    // groups(): ascending key order, matching num_groups.
    let groups = engine.groups();
    assert_eq!(groups.len(), engine.num_groups());
    for pair in groups.windows(2) {
        assert!(pair[0] < pair[1], "listing out of order");
    }

    // report(): Some for a tracked key, None for an unseen one.
    for key in &groups {
        assert!(engine.report(key).expect("report").is_some());
    }
    assert!(engine
        .report(&[Value::U64(9_999)])
        .expect("report")
        .is_none());

    // A failing batch rolls back byte-exactly (FailBatch + poison row).
    engine.set_fault_policy(FaultPolicy::FailBatch);
    let before = engine.to_snapshot_bytes();
    let mut poisoned = rows(8, 50);
    poisoned.push(vec![Value::U64(1)]); // wrong arity
    engine.process_batch(&poisoned).expect_err("poison row");
    assert_eq!(engine.to_snapshot_bytes(), before, "rollback not exact");

    // Quarantine diverts with an exact count and an owned view.
    engine.set_fault_policy(FaultPolicy::Quarantine { max_samples: 2 });
    assert_eq!(
        engine.fault_policy(),
        FaultPolicy::Quarantine { max_samples: 2 }
    );
    engine.process_batch(&poisoned).expect("quarantine absorbs");
    let dead = engine.dead_letters();
    assert_eq!(dead.count(), 1);
    assert_eq!(dead.samples().len(), 1);

    // Snapshot round trip: byte-exact now and after further ingest.
    let bytes = engine.to_snapshot_bytes();
    let mut restored = E::from_snapshot_bytes(&bytes).expect("restore");
    assert_eq!(restored.to_snapshot_bytes(), bytes);
    let more = rows(9, 500);
    engine.process_batch(&more).expect("more");
    restored.process_batch(&more).expect("more");
    assert_eq!(engine.to_snapshot_bytes(), restored.to_snapshot_bytes());

    // Corruption of the snapshot is a typed error, never a panic.
    let mut bad = bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x20;
    assert!(E::from_snapshot_bytes(&bad).is_err());

    // flush_window(): ascending keys, then a full reset.
    let window = engine.flush_window().expect("window");
    for pair in window.windows(2) {
        assert!(pair[0].0 < pair[1].0, "window out of order");
    }
    assert_eq!(engine.num_groups(), 0);
    assert_eq!(engine.rows_processed(), 0);
    assert!(engine.dead_letters().is_empty());

    // merge(): row counts add; merging is how distributed GROUP BY joins.
    let mut left = E::from_snapshot_bytes(&bytes).expect("restore");
    let right = {
        let mut r = E::from_snapshot_bytes(&bytes).expect("restore");
        r.process_batch(&rows(10, 300)).expect("ingest");
        r
    };
    let sum = left.rows_processed() + right.rows_processed();
    left.merge(&right).expect("merge");
    assert_eq!(left.rows_processed(), sum);
}

#[test]
fn trait_suite_sequential() {
    suite(SketchEngine::new(spec()).expect("engine"));
}

#[test]
fn trait_suite_sharded() {
    suite(ShardedEngine::new(spec(), 4).expect("engine"));
}

/// Cross-implementation equivalence through the trait: same stream, same
/// listings, same per-group reports.
#[test]
fn sequential_and_sharded_agree_via_trait() {
    fn ingest<E: StreamEngine>(mut engine: E) -> E {
        for seed in 0..5u64 {
            engine.process_batch(&rows(seed, 1_000)).expect("ingest");
        }
        engine
    }
    let seq = ingest(SketchEngine::new(spec()).expect("engine"));
    let sharded = ingest(ShardedEngine::new(spec(), 3).expect("engine"));

    assert_eq!(seq.rows_processed(), sharded.rows_processed());
    assert_eq!(StreamEngine::groups(&seq), StreamEngine::groups(&sharded));
    for key in StreamEngine::groups(&seq) {
        assert_eq!(
            seq.report(&key).expect("report"),
            sharded.report(&key).expect("report"),
            "group {key:?} diverged between implementations"
        );
    }
}
