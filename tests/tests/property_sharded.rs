//! Property-based tests for the sharded GROUP BY engine: any stream, any
//! shard count, any batch split must report exactly like one sequential
//! engine; and engine-level merge must be associative and commutative.

use proptest::collection::vec;
use proptest::prelude::*;
use sketches::streamdb::{Aggregate, QuerySpec, Row, ShardedEngine, SketchEngine, Value};

/// Full aggregate spec: GROUP BY field 0 over (key, user, value) rows.
fn full_spec() -> QuerySpec {
    QuerySpec::new(
        vec![0],
        vec![
            Aggregate::Count,
            Aggregate::Sum { field: 2 },
            Aggregate::CountDistinct { field: 1 },
            Aggregate::Quantiles { field: 2 },
            Aggregate::TopK { field: 1, k: 3 },
        ],
    )
    .expect("valid spec")
}

/// Merge-exact spec: aggregates whose merge is bit-for-bit order-free
/// (counts, integer-valued sums, register-max distinct counts). KLL and
/// SpaceSaving merges are deterministic but not order-independent, so
/// they are exercised by the equivalence property, not the algebraic one.
fn exact_spec() -> QuerySpec {
    QuerySpec::new(
        vec![0],
        vec![
            Aggregate::Count,
            Aggregate::Sum { field: 2 },
            Aggregate::CountDistinct { field: 1 },
        ],
    )
    .expect("valid spec")
}

fn to_rows(raw: &[(u64, u16, u16)]) -> Vec<Row> {
    raw.iter()
        .map(|&(g, u, v)| {
            vec![
                Value::U64(g),
                Value::U64(u64::from(u)),
                Value::F64(f64::from(v)),
            ]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any stream, shard count, and batch split: per-group reports and
    /// global counters equal the sequential engine's exactly.
    #[test]
    fn sharded_reports_identical_to_sequential(
        raw in vec((0u64..12, any::<u16>(), 0u16..1000), 0..400),
        shards in 1usize..9,
        chunk in 1usize..97,
    ) {
        let rows = to_rows(&raw);
        let mut seq = SketchEngine::new(full_spec()).unwrap();
        seq.process_batch(&rows).unwrap();

        let mut sharded = ShardedEngine::new(full_spec(), shards).unwrap();
        for batch in rows.chunks(chunk) {
            sharded.process_batch(batch).unwrap();
        }
        prop_assert_eq!(sharded.rows_processed(), seq.rows_processed());
        prop_assert_eq!(sharded.num_groups(), seq.num_groups());
        for key in seq.groups() {
            prop_assert_eq!(
                sharded.report(key).unwrap(),
                seq.report(key).unwrap(),
                "group {:?} diverged at {} shards", key, shards
            );
        }
    }

    /// Engine merge is commutative: a ⊕ b reports like b ⊕ a.
    #[test]
    fn engine_merge_commutative(
        raw_a in vec((0u64..8, any::<u16>(), 0u16..1000), 0..300),
        raw_b in vec((0u64..8, any::<u16>(), 0u16..1000), 0..300),
    ) {
        let (a_rows, b_rows) = (to_rows(&raw_a), to_rows(&raw_b));
        let build = |rows: &[Row]| {
            let mut e = SketchEngine::new(exact_spec()).unwrap();
            e.process_batch(rows).unwrap();
            e
        };
        let mut ab = build(&a_rows);
        ab.merge(&build(&b_rows)).unwrap();
        let mut ba = build(&b_rows);
        ba.merge(&build(&a_rows)).unwrap();
        prop_assert_eq!(ab.rows_processed(), ba.rows_processed());
        prop_assert_eq!(ab.num_groups(), ba.num_groups());
        for key in ab.groups() {
            prop_assert_eq!(ab.report(key).unwrap(), ba.report(key).unwrap());
        }
    }

    /// Engine merge is associative: (a ⊕ b) ⊕ c reports like a ⊕ (b ⊕ c).
    #[test]
    fn engine_merge_associative(
        raw_a in vec((0u64..8, any::<u16>(), 0u16..1000), 0..200),
        raw_b in vec((0u64..8, any::<u16>(), 0u16..1000), 0..200),
        raw_c in vec((0u64..8, any::<u16>(), 0u16..1000), 0..200),
    ) {
        let rows = [to_rows(&raw_a), to_rows(&raw_b), to_rows(&raw_c)];
        let build = |rows: &[Row]| {
            let mut e = SketchEngine::new(exact_spec()).unwrap();
            e.process_batch(rows).unwrap();
            e
        };
        // (a ⊕ b) ⊕ c
        let mut left = build(&rows[0]);
        left.merge(&build(&rows[1])).unwrap();
        left.merge(&build(&rows[2])).unwrap();
        // a ⊕ (b ⊕ c)
        let mut bc = build(&rows[1]);
        bc.merge(&build(&rows[2])).unwrap();
        let mut right = build(&rows[0]);
        right.merge(&bc).unwrap();
        prop_assert_eq!(left.rows_processed(), right.rows_processed());
        prop_assert_eq!(left.num_groups(), right.num_groups());
        for key in left.groups() {
            prop_assert_eq!(left.report(key).unwrap(), right.report(key).unwrap());
        }
    }

    /// Sharded merge equals merging the collapsed engines: distributing
    /// over sharded nodes then merging loses nothing.
    #[test]
    fn sharded_merge_matches_collapsed_merge(
        raw_a in vec((0u64..10, any::<u16>(), 0u16..1000), 0..300),
        raw_b in vec((0u64..10, any::<u16>(), 0u16..1000), 0..300),
        shards in 1usize..9,
    ) {
        let (a_rows, b_rows) = (to_rows(&raw_a), to_rows(&raw_b));
        let mut a = ShardedEngine::new(exact_spec(), shards).unwrap();
        let mut b = ShardedEngine::new(exact_spec(), shards).unwrap();
        a.process_batch(&a_rows).unwrap();
        b.process_batch(&b_rows).unwrap();

        let mut flat_a = a.collapse().unwrap();
        let flat_b = b.collapse().unwrap();
        a.merge(&b).unwrap();
        flat_a.merge(&flat_b).unwrap();
        prop_assert_eq!(a.rows_processed(), flat_a.rows_processed());
        prop_assert_eq!(a.num_groups(), flat_a.num_groups());
        for key in flat_a.groups() {
            prop_assert_eq!(a.report(key).unwrap(), flat_a.report(key).unwrap());
        }
    }
}
