//! Integration: a distributed analytics pipeline — shard a stream across
//! "workers", sketch locally, merge centrally, and check every answer
//! against the exact baselines. This is the mergeable-summaries contract
//! exercised across four sketch families at once.

use sketches::prelude::*;
use sketches_integration_tests::assert_rel_err;
use sketches_workloads::exact::{ExactDistinct, ExactFrequency};
use sketches_workloads::zipf::ZipfGenerator;

const WORKERS: usize = 16;

#[test]
fn sharded_sketches_match_central_answers() {
    // One Zipf event stream: (user_id, value) pairs.
    let n = 320_000;
    let mut gen = ZipfGenerator::new(200_000, 1.05, 99).unwrap();
    let stream: Vec<u64> = gen.stream(n);

    // Exact references.
    let mut exact_distinct = ExactDistinct::new();
    let mut exact_freq = ExactFrequency::new();
    let mut exact_values: Vec<f64> = Vec::with_capacity(n);
    for (i, x) in stream.iter().enumerate() {
        exact_distinct.update(x);
        exact_freq.update(x);
        exact_values.push((i % 10_000) as f64);
    }
    exact_values.sort_by(f64::total_cmp);

    // Workers: each sketches its shard.
    let mut hlls = Vec::new();
    let mut cms = Vec::new();
    let mut klls = Vec::new();
    let mut blooms = Vec::new();
    for w in 0..WORKERS {
        let mut hll = HyperLogLog::new(12, 5).unwrap();
        let mut cm = CountMinSketch::new(2048, 5, 5).unwrap();
        let mut kll = KllSketch::new(200, w as u64).unwrap();
        let mut bloom = BloomFilter::new(1 << 21, 7, 5).unwrap();
        for (i, x) in stream.iter().enumerate() {
            if i % WORKERS == w {
                hll.update(x);
                cm.update(x);
                kll.update(&((i % 10_000) as f64));
                bloom.update(x);
            }
        }
        hlls.push(hll);
        cms.push(cm);
        klls.push(kll);
        blooms.push(bloom);
    }

    // Central merge.
    let hll = MergeSketch::merge_all(hlls).unwrap().unwrap();
    let cm = MergeSketch::merge_all(cms).unwrap().unwrap();
    let kll = MergeSketch::merge_all(klls).unwrap().unwrap();
    let bloom = MergeSketch::merge_all(blooms).unwrap().unwrap();

    // Distinct count within HLL tolerance.
    assert_rel_err(
        exact_distinct.count() as f64,
        hll.estimate(),
        0.07,
        "merged HLL distinct count",
    );

    // Count-Min: never underestimates, within eps*n of truth for heavy items.
    let bound = cm.error_bound().ceil() as u64;
    let mut top: Vec<(u64, u64)> = exact_freq.iter().map(|(&k, c)| (k, c)).collect();
    top.sort_by_key(|e| std::cmp::Reverse(e.1));
    for &(item, truth) in top.iter().take(50) {
        let est = FrequencyEstimator::estimate(&cm, &item);
        assert!(est >= truth, "CM underestimated {item}");
        assert!(est - truth <= bound, "CM over bound for {item}");
    }

    // KLL quantiles within 2% rank error.
    for q in [0.1, 0.5, 0.9, 0.99] {
        let est = kll.quantile(q).unwrap();
        let est_rank =
            exact_values.partition_point(|&x| x <= est) as f64 / exact_values.len() as f64;
        assert!((est_rank - q).abs() < 0.02, "KLL q={q}: rank {est_rank}");
    }

    // Bloom: every seen item present, unseen FPR sane.
    for x in stream.iter().take(5_000) {
        assert!(bloom.contains(x));
    }
    let fps = (1_000_000u64..1_050_000)
        .filter(|p| bloom.contains(p))
        .count();
    assert!(
        (fps as f64 / 50_000.0) < 0.05,
        "merged Bloom FPR too high: {fps}"
    );
}

#[test]
fn merge_order_does_not_matter() {
    let streams: Vec<Vec<u64>> = (0..8)
        .map(|w| (0..20_000u64).map(|i| i * 8 + w).collect())
        .collect();
    let build = |order: &[usize]| -> HyperLogLog {
        let mut acc = HyperLogLog::new(11, 3).unwrap();
        for &w in order {
            let mut h = HyperLogLog::new(11, 3).unwrap();
            for x in &streams[w] {
                h.update(x);
            }
            acc.merge(&h).unwrap();
        }
        acc
    };
    let forward = build(&[0, 1, 2, 3, 4, 5, 6, 7]);
    let backward = build(&[7, 6, 5, 4, 3, 2, 1, 0]);
    let shuffled = build(&[3, 0, 6, 1, 7, 2, 5, 4]);
    assert_eq!(forward, backward);
    assert_eq!(forward, shuffled);
}

#[test]
fn sharded_engine_matches_sequential_at_every_shard_count() {
    use sketches::streamdb::{Aggregate, QuerySpec, Row, ShardedEngine, SketchEngine, Value};

    // A Zipf-keyed GROUP BY stream: a few giant groups plus a long tail.
    let spec = QuerySpec::new(
        vec![0],
        vec![
            Aggregate::Count,
            Aggregate::Sum { field: 2 },
            Aggregate::CountDistinct { field: 1 },
            Aggregate::Quantiles { field: 2 },
            Aggregate::TopK { field: 1, k: 5 },
        ],
    )
    .unwrap();
    let mut zipf = ZipfGenerator::new(500, 1.2, 11).unwrap();
    let rows: Vec<Row> = (0..60_000u64)
        .map(|i| {
            vec![
                Value::U64(zipf.sample()),
                Value::U64(i % 101),
                Value::F64((i % 1_000) as f64),
            ]
        })
        .collect();

    let mut seq = SketchEngine::new(spec.clone()).unwrap();
    seq.process_batch(&rows).unwrap();

    for shards in [1usize, 2, 4, 8] {
        let mut sharded = ShardedEngine::new(spec.clone(), shards).unwrap();
        // Feed in uneven batches to exercise the routing across calls.
        for chunk in rows.chunks(1_777) {
            sharded.process_batch(chunk).unwrap();
        }
        assert_eq!(sharded.rows_processed(), seq.rows_processed());
        assert_eq!(sharded.num_groups(), seq.num_groups());
        // Every group's report must be identical — not statistically
        // close: routing is per-group, so each group's sketches see the
        // same updates in the same order as the sequential engine.
        for key in seq.groups() {
            assert_eq!(
                sharded.report(key).unwrap(),
                seq.report(key).unwrap(),
                "group {key:?} diverged at {shards} shards"
            );
        }
    }
}
