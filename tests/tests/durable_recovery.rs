//! Crash-recovery drills for the durable store: a seeded kill at every
//! durability step must leave on-disk state that recovers byte-identically
//! to an uninterrupted engine fed the surviving batches — for both
//! engines, at every kill point, at every batch position. The WAL tail
//! rule is also pinned: a torn final record is truncated with a warning;
//! interior damage is a typed `Corrupted` error.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use sketches::core::SketchError;
use sketches::streamdb::{
    Aggregate, CheckpointPolicy, DurableEngine, KillPoint, QuerySpec, Row, ShardedEngine,
    SketchEngine, StreamEngine, Value, SIMULATED_CRASH_MARKER,
};
use sketches_workloads::faults::{CrashOp, CrashPlan};

const NUM_BATCHES: u64 = 8;
const BATCH_ROWS: u64 = 120;

fn scratch_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "sketches-durable-drill-{}-{tag}-{n}",
        std::process::id()
    ))
}

fn spec() -> QuerySpec {
    QuerySpec::new(
        vec![0],
        vec![
            Aggregate::Count,
            Aggregate::Sum { field: 2 },
            Aggregate::CountDistinct { field: 1 },
            Aggregate::Quantiles { field: 2 },
            Aggregate::TopK { field: 1, k: 3 },
        ],
    )
    .expect("valid spec")
}

fn batch(seed: u64, idx: u64) -> Vec<Row> {
    (0..BATCH_ROWS)
        .map(|i| {
            let x = i
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed.wrapping_mul(131).wrapping_add(idx));
            vec![
                Value::U64(x % 9),
                Value::U64(x % 211),
                Value::F64((x % 500) as f64),
            ]
        })
        .collect()
}

fn kill_point(op: CrashOp) -> KillPoint {
    match op {
        CrashOp::BeforeWalAppend => KillPoint::BeforeWalAppend,
        CrashOp::MidWalAppend => KillPoint::MidWalAppend,
        CrashOp::AfterWalAppend => KillPoint::AfterWalAppend,
        CrashOp::MidCheckpointTemp => KillPoint::MidCheckpointTemp,
        CrashOp::BeforeCheckpointRename => KillPoint::BeforeCheckpointRename,
        CrashOp::AfterCheckpointRename => KillPoint::AfterCheckpointRename,
    }
}

/// One full drill: ingest until the planted crash, recover, compare against
/// an uninterrupted reference fed the surviving prefix — then resume both
/// and compare again. Written once against `StreamEngine`, run for both
/// engines by the callers below.
fn drill<E: StreamEngine>(tag: &str, make: &dyn Fn() -> E, seed: u64, at_batch: u64, op: CrashOp) {
    let dir = scratch_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    // A tight row bound so natural checkpoints interleave with planted ones.
    let policy = CheckpointPolicy::new(3 * BATCH_ROWS, u64::MAX).expect("policy");

    let mut durable = DurableEngine::create(&dir, make(), policy).expect("create");
    durable.arm_kill(at_batch, kill_point(op));
    let mut crashed_at = None;
    for i in 0..NUM_BATCHES {
        match durable.process_batch(&batch(seed, i)) {
            Ok(_) => {}
            Err(e) => {
                assert!(
                    e.to_string().contains(SIMULATED_CRASH_MARKER),
                    "unexpected failure: {e}"
                );
                crashed_at = Some(i);
                break;
            }
        }
    }
    assert_eq!(crashed_at, Some(at_batch), "crash fired at the wrong batch");
    assert!(durable.is_poisoned());
    drop(durable);

    // The reference: an uninterrupted engine fed only the batches that
    // must have survived the crash.
    let prefix_end = at_batch + u64::from(op.batch_survives());
    let mut reference = make();
    for i in 0..prefix_end {
        reference.process_batch(&batch(seed, i)).expect("reference");
    }

    let mut recovered = DurableEngine::<E>::recover_with_policy(&dir, policy).expect("recover");
    assert_eq!(
        recovered.engine().to_snapshot_bytes(),
        reference.to_snapshot_bytes(),
        "recovered state diverged (seed {seed}, batch {at_batch}, {op:?})"
    );

    // Resume: upstream re-sends the lost batch (if any) plus the rest.
    for i in prefix_end..NUM_BATCHES {
        recovered.process_batch(&batch(seed, i)).expect("resume");
        reference.process_batch(&batch(seed, i)).expect("resume");
    }
    assert_eq!(
        recovered.engine().to_snapshot_bytes(),
        reference.to_snapshot_bytes(),
        "post-resume state diverged (seed {seed}, batch {at_batch}, {op:?})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every kill point × several batch positions, sequential engine. The
/// exhaustive grid guarantees no (point, position) pair goes untested even
/// if the seeded property sweep under-samples one.
#[test]
fn crash_grid_sequential() {
    for op in CrashOp::ALL {
        for at_batch in [0, 2, NUM_BATCHES - 1] {
            drill(
                "grid-seq",
                &|| SketchEngine::new(spec()).expect("engine"),
                0xD00D,
                at_batch,
                op,
            );
        }
    }
}

/// The same grid for the sharded engine — the drill is the same function.
#[test]
fn crash_grid_sharded() {
    for op in CrashOp::ALL {
        for at_batch in [0, 2, NUM_BATCHES - 1] {
            drill(
                "grid-shard",
                &|| ShardedEngine::new(spec(), 3).expect("engine"),
                0xD00D,
                at_batch,
                op,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Seeded crash plans: random (batch, kill-point) pairs against the
    /// sequential engine recover byte-exactly.
    #[test]
    fn prop_seeded_crashes_recover_exactly(seed in 0u64..1_000_000) {
        let plan = CrashPlan::generate(seed, NUM_BATCHES);
        drill(
            "prop-seq",
            &|| SketchEngine::new(spec()).expect("engine"),
            seed,
            plan.at_batch,
            plan.op,
        );
    }

    /// The same property through the sharded engine.
    #[test]
    fn prop_seeded_crashes_recover_exactly_sharded(seed in 0u64..1_000_000) {
        let plan = CrashPlan::generate(seed, NUM_BATCHES);
        drill(
            "prop-shard",
            &|| ShardedEngine::new(spec(), 2).expect("engine"),
            seed,
            plan.at_batch,
            plan.op,
        );
    }
}

/// Find the single WAL segment of a durable directory.
fn wal_path(dir: &std::path::Path) -> PathBuf {
    std::fs::read_dir(dir)
        .expect("read dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "wal"))
        .expect("wal segment present")
}

/// Builds a store with two logged batches and returns (dir, snapshot of
/// batch-1-only state, snapshot of full state).
fn two_batch_store(tag: &str) -> (PathBuf, Vec<u8>, Vec<u8>) {
    let dir = scratch_dir(tag);
    let mut durable = DurableEngine::create(
        &dir,
        SketchEngine::new(spec()).expect("engine"),
        CheckpointPolicy::default(),
    )
    .expect("create");
    durable.process_batch(&batch(1, 0)).expect("batch 0");
    let first_only = {
        let mut e = SketchEngine::new(spec()).expect("engine");
        e.process_batch(&batch(1, 0)).expect("batch 0");
        e.to_snapshot_bytes()
    };
    durable.process_batch(&batch(1, 1)).expect("batch 1");
    let full = durable.engine().to_snapshot_bytes();
    (dir, first_only, full)
}

#[test]
fn torn_tail_is_truncated_with_warning() {
    let (dir, first_only, _full) = two_batch_store("torn");
    // Chop bytes off the final record: a torn append.
    let wal = wal_path(&dir);
    let bytes = std::fs::read(&wal).expect("read wal");
    std::fs::write(&wal, &bytes[..bytes.len() - 11]).expect("tear");

    let recovered = DurableEngine::<SketchEngine>::recover(&dir).expect("recover");
    assert_eq!(recovered.engine().to_snapshot_bytes(), first_only);
    let report = recovered.recovery().expect("report");
    assert_eq!(report.batches_replayed, 1);
    assert!(report.torn_tail_bytes > 0);
    assert!(
        report.warnings.iter().any(|w| w.contains("torn")),
        "no torn-tail warning: {:?}",
        report.warnings
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interior_corruption_is_rejected_not_truncated() {
    let (dir, _first_only, _full) = two_batch_store("interior");
    let wal = wal_path(&dir);
    let mut bytes = std::fs::read(&wal).expect("read wal");
    // Damage the FIRST record's body (offset 22 = 14-byte header + 8-byte
    // length prefix) while the second record is intact after it.
    bytes[25] ^= 0x08;
    std::fs::write(&wal, &bytes).expect("corrupt");

    let err = DurableEngine::<SketchEngine>::recover(&dir).expect_err("must reject");
    assert!(matches!(err, SketchError::Corrupted { .. }), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_single_byte_of_wal_body_damage_is_detected_or_torn() {
    // Sweep: flip one byte at EVERY offset of the record region. Damage in
    // the final record may be repaired by truncation (recovering the
    // first-batch state); damage in the first record must be rejected.
    // Either way, recovery must never panic and never return full state
    // from a damaged log... unless the flip landed in bytes that do not
    // affect decoding (none exist: length, body, and checksum all bind).
    let (dir, first_only, full) = two_batch_store("sweep");
    let empty = SketchEngine::new(spec())
        .expect("engine")
        .to_snapshot_bytes();
    let wal = wal_path(&dir);
    let pristine = std::fs::read(&wal).expect("read wal");
    let header = 14usize;
    for at in header..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[at] ^= 0x01;
        std::fs::write(&wal, &bytes).expect("write");
        match DurableEngine::<SketchEngine>::recover(&dir) {
            Ok(recovered) => {
                let got = recovered.engine().to_snapshot_bytes();
                assert_ne!(got, full, "byte {at}: damaged log replayed as whole");
                // Truncation stops at a record boundary: the state is a
                // strict batch prefix (one batch, or none when the damaged
                // length prefix swallowed the rest of the file).
                assert!(
                    got == first_only || got == empty,
                    "byte {at}: recovered state is not a batch prefix"
                );
                assert!(recovered.recovery().expect("report").torn_tail_bytes > 0);
            }
            Err(SketchError::Corrupted { .. }) => {}
            Err(e) => panic!("byte {at}: unexpected error class: {e}"),
        }
        // recover() may have truncated the segment; restore it for the
        // next offset.
        std::fs::write(&wal, &pristine).expect("restore");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stray_tmp_checkpoint_is_discarded() {
    let (dir, _first_only, full) = two_batch_store("tmp");
    // A temp file that never committed must be ignored and deleted, even
    // if its content is garbage.
    let stray = dir.join("checkpoint-00000000000000000009.skcp.tmp");
    std::fs::write(&stray, b"half-written garbage").expect("stray");
    let recovered = DurableEngine::<SketchEngine>::recover(&dir).expect("recover");
    assert_eq!(recovered.engine().to_snapshot_bytes(), full);
    assert!(!stray.exists(), "stray tmp survived recovery");
    assert!(recovered
        .recovery()
        .expect("report")
        .warnings
        .iter()
        .any(|w| w.contains("temp")));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_lag_stays_bounded() {
    let dir = scratch_dir("lag");
    let policy = CheckpointPolicy::new(250, u64::MAX).expect("policy");
    let mut durable =
        DurableEngine::create(&dir, SketchEngine::new(spec()).expect("engine"), policy)
            .expect("create");
    for i in 0..20 {
        durable.process_batch(&batch(3, i)).expect("ingest");
        // The WAL never holds more than the bound plus the batch that
        // tripped it (the checkpoint runs right after that batch).
        assert!(
            durable.wal_rows() < 250 + BATCH_ROWS,
            "lag bound violated: {} rows in WAL",
            durable.wal_rows()
        );
    }
    // 20 batches x 120 rows with a 250-row bound trip a checkpoint every
    // third batch: six epochs by batch 17.
    assert!(durable.epoch() >= 6, "checkpoints not keeping up");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn create_refuses_existing_store_and_recover_needs_one() {
    let dir = scratch_dir("guard");
    let durable = DurableEngine::create(
        &dir,
        SketchEngine::new(spec()).expect("engine"),
        CheckpointPolicy::default(),
    )
    .expect("create");
    drop(durable);
    let err = DurableEngine::create(
        &dir,
        SketchEngine::new(spec()).expect("engine"),
        CheckpointPolicy::default(),
    )
    .expect_err("must refuse");
    assert!(matches!(err, SketchError::InvalidParameter { .. }), "{err}");

    let empty = scratch_dir("guard-empty");
    std::fs::create_dir_all(&empty).expect("mkdir");
    let err = DurableEngine::<SketchEngine>::recover(&empty).expect_err("nothing to recover");
    assert!(matches!(err, SketchError::Corrupted { .. }), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&empty);
}
