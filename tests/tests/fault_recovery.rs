//! Torn-batch recovery sweep: across 100 seeded fault plans, injected
//! errors and worker panics must (1) stay contained, (2) roll the whole
//! batch back byte-exactly, (3) report a structured `BatchError` naming
//! row/shard/cause, and (4) leave the engine able to retry to a state
//! byte-identical to a never-faulted baseline.

use sketches::streamdb::{
    silence_injected_panics, Aggregate, BatchCause, FaultInjector, FaultKind, FaultPolicy,
    QuerySpec, Row, ShardedEngine, SketchEngine, Value,
};
use sketches_workloads::faults::{FaultPlan, IngestFault};

fn spec() -> QuerySpec {
    QuerySpec::new(
        vec![0],
        vec![
            Aggregate::Count,
            Aggregate::Sum { field: 2 },
            Aggregate::CountDistinct { field: 1 },
            Aggregate::Quantiles { field: 2 },
            Aggregate::TopK { field: 1, k: 3 },
        ],
    )
    .expect("valid spec")
}

fn rows(seed: u64, n: u64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed);
            vec![
                Value::U64(x % 13),
                Value::U64(x % 251),
                Value::F64((x % 500) as f64),
            ]
        })
        .collect()
}

fn to_kind(f: IngestFault) -> FaultKind {
    match f {
        IngestFault::Error => FaultKind::Error,
        IngestFault::Panic => FaultKind::Panic,
    }
}

#[test]
fn hundred_seed_sequential_recovery_sweep() {
    silence_injected_panics();
    let n = 500u64;
    for seed in 0..100u64 {
        let data = rows(seed, n);
        let plan = FaultPlan::generate(seed, n, 1, 0);
        let fault = plan.faults[0];

        let mut engine = SketchEngine::new(spec()).expect("engine");
        let before = engine.to_snapshot_bytes();
        engine.arm_faults(FaultInjector::new().at(fault.attempt, to_kind(fault.fault)));

        let err = engine
            .process_batch(&data)
            .expect_err("fault must fail the batch");
        assert_eq!(err.row, Some(fault.attempt as usize), "seed {seed}");
        assert_eq!(err.shard, None, "seed {seed}");
        match (fault.fault, &err.cause) {
            (IngestFault::Error, BatchCause::Row(_)) => {}
            (IngestFault::Panic, BatchCause::WorkerPanic(msg)) => {
                assert!(
                    msg.contains("streamdb-injected-fault"),
                    "seed {seed}: {msg}"
                );
            }
            (f, c) => panic!("seed {seed}: fault {f:?} reported as {c:?}"),
        }
        assert_eq!(
            engine.to_snapshot_bytes(),
            before,
            "seed {seed}: failed batch left partial state"
        );
        assert_eq!(engine.rows_processed(), 0, "seed {seed}");

        // Retry passes the (consumed) fault and converges with a baseline.
        engine.process_batch(&data).expect("retry");
        engine.disarm_faults();
        let mut baseline = SketchEngine::new(spec()).expect("engine");
        baseline.process_batch(&data).expect("ingest");
        assert_eq!(
            engine.to_snapshot_bytes(),
            baseline.to_snapshot_bytes(),
            "seed {seed}: retry diverged from never-faulted baseline"
        );
    }
}

#[test]
fn hundred_seed_sharded_recovery_sweep() {
    silence_injected_panics();
    let n = 500u64;
    for seed in 0..100u64 {
        let data = rows(seed, n);
        let plan = FaultPlan::generate(seed ^ 0x5EED, n / 8, 1, 0);
        let fault = plan.faults[0];
        let shard = (seed % 4) as usize;

        let mut engine = ShardedEngine::new(spec(), 4).expect("engine");
        let before = engine.to_snapshot_bytes();
        engine
            .arm_faults(
                shard,
                FaultInjector::new().at(fault.attempt, to_kind(fault.fault)),
            )
            .expect("valid shard");

        let err = engine
            .process_batch(&data)
            .expect_err("fault must fail the batch");
        assert_eq!(err.shard, Some(shard), "seed {seed}");
        assert!(err.row.is_some(), "seed {seed}: fault row not attributed");
        assert_eq!(
            engine.to_snapshot_bytes(),
            before,
            "seed {seed}: some shard kept partial state"
        );
        assert_eq!(engine.rows_processed(), 0, "seed {seed}");

        engine.process_batch(&data).expect("retry");
        engine.disarm_faults();
        let mut baseline = ShardedEngine::new(spec(), 4).expect("engine");
        baseline.process_batch(&data).expect("ingest");
        assert_eq!(
            engine.to_snapshot_bytes(),
            baseline.to_snapshot_bytes(),
            "seed {seed}: retry diverged from never-faulted baseline"
        );
    }
}

#[test]
fn quarantine_count_is_exact_and_samples_bounded() {
    let n = 400u64;
    for seed in 0..20u64 {
        let mut data = rows(seed, n);
        // Sprinkle 25 poison rows (short and non-numeric alternating).
        for k in 0..25usize {
            let at = (k * 17 + seed as usize) % data.len();
            data.insert(
                at,
                if k % 2 == 0 {
                    vec![Value::U64(1)]
                } else {
                    vec![Value::U64(1), Value::U64(2), Value::Str("poison".into())]
                },
            );
        }
        let mut engine = ShardedEngine::new(spec(), 3).expect("engine");
        engine.set_fault_policy(FaultPolicy::Quarantine { max_samples: 5 });
        let summary = engine.process_batch(&data).expect("quarantine ingests");
        assert_eq!(summary.rows_quarantined, 25, "seed {seed}");
        assert_eq!(summary.rows_ingested as u64, n, "seed {seed}");

        let dead = engine.dead_letters();
        assert_eq!(dead.count(), 25, "seed {seed}: count must stay exact");
        assert!(
            dead.samples().len() <= 3 * 5 + 5,
            "seed {seed}: samples unbounded: {}",
            dead.samples().len()
        );
        // Every retained sample is a genuinely malformed row.
        for s in dead.samples() {
            assert!(
                s.row.len() < 3 || s.row[2].as_f64().is_none(),
                "seed {seed}: clean row quarantined: {:?}",
                s.row
            );
        }
    }
}

#[test]
fn sharded_merge_failure_names_the_shard_and_leaves_state_usable() {
    let mut a = ShardedEngine::new(spec(), 2).expect("engine");
    a.process_batch(&rows(1, 200)).expect("ingest");
    let before = a.to_snapshot_bytes();

    // Same shard count, different sketch seeds: shard 0's merge fails.
    let mut cfg = sketches::streamdb::EngineConfig::default();
    cfg.seed ^= 0xDEAD;
    let b = ShardedEngine::with_config(spec(), cfg, 2, 1024).expect("engine");
    let err = a.merge(&b).expect_err("incompatible merge");
    assert!(err.to_string().contains("shard 0"), "{err}");
    assert_eq!(
        a.to_snapshot_bytes(),
        before,
        "failed merge corrupted the receiver"
    );

    // Still fully usable afterwards.
    a.process_batch(&rows(2, 100))
        .expect("ingest after failed merge");
    assert_eq!(a.rows_processed(), 300);
}
