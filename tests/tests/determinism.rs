//! Determinism regression tests for every report path audited in the
//! static-analysis sweep.
//!
//! The bug class: a report path iterating a `RandomState`-hashed map leaks
//! ambient hash order into its output, so two replicas fed the same stream
//! diverge. Every `HashMap`/`HashSet` in Rust's std gets a *different*
//! random seed per instance, so building a sketch twice in one process and
//! feeding both builds an identical, tie-heavy stream is exactly the
//! "two differently-seeded RandomState builds" scenario; each test repeats
//! the comparison across many rebuilds so a hash-order-dependent tie break
//! cannot pass by luck.

use sketches::core::{ByteWriter, MergeSketch, QueryView, Update};
use sketches::frequency::{HeavyHittersTracker, MisraGries, SfSketch};
use sketches::graph::AgmGraphSketch;
use sketches::lsh::EuclideanLshIndex;
use sketches::streamdb::{Aggregate, AggregateResult, ExactEngine, QuerySpec, SketchEngine, Value};

const REBUILDS: usize = 20;

/// A stream where many items share exact counts, so any tie broken by hash
/// order (instead of a total order) shows up as run-to-run divergence.
fn tie_heavy_stream() -> Vec<u64> {
    let mut v = Vec::new();
    for item in 0..64u64 {
        for _ in 0..(10 + (item % 4)) {
            v.push(item);
        }
    }
    v
}

#[test]
fn misra_gries_reports_are_rebuild_invariant() {
    let stream = tie_heavy_stream();
    let build_report = || {
        let mut mg = MisraGries::new(8).expect("k >= 2");
        for x in &stream {
            mg.update(x);
        }
        let entries: Vec<(u64, u64)> = mg.entries().map(|(t, c)| (*t, c)).collect();
        let hitters = mg.heavy_hitters(0.01);
        (entries, hitters)
    };
    let reference = build_report();
    for rebuild in 0..REBUILDS {
        assert_eq!(build_report(), reference, "diverged on rebuild {rebuild}");
    }
}

#[test]
fn sf_sketch_build_and_view_are_rebuild_invariant() {
    // L1 discipline: the SF-sketch takes an explicit seed and owns no
    // RandomState-hashed container, so two builds in one process (each a
    // fresh ambient-hash environment) must agree to the byte — sketch,
    // slim view, and the view's serialized form alike.
    let stream = tie_heavy_stream();
    let build = || {
        let mut sf = SfSketch::new(512, 64, 4, 17).expect("valid params");
        for x in &stream {
            sf.update(x);
        }
        let view = sf.query_view();
        let mut w = ByteWriter::new();
        view.write_state(&mut w);
        (sf, view, w.into_bytes())
    };
    let reference = build();
    for rebuild in 0..REBUILDS {
        assert_eq!(build(), reference, "diverged on rebuild {rebuild}");
    }
}

#[test]
fn misra_gries_merge_is_rebuild_invariant() {
    let stream = tie_heavy_stream();
    let half = stream.len() / 2;
    let build_merged = || {
        let mut left = MisraGries::new(8).expect("k >= 2");
        let mut right = MisraGries::new(8).expect("k >= 2");
        for x in &stream[..half] {
            left.update(x);
        }
        for x in &stream[half..] {
            right.update(x);
        }
        left.merge(&right).expect("same k");
        left.entries().map(|(t, c)| (*t, c)).collect::<Vec<_>>()
    };
    let reference = build_merged();
    for rebuild in 0..REBUILDS {
        assert_eq!(build_merged(), reference, "diverged on rebuild {rebuild}");
    }
}

#[test]
fn heavy_hitters_tracker_report_is_rebuild_invariant() {
    // Small capacity + many equal-estimate items forces the eviction and
    // report tie-breaks to run constantly.
    let stream = tie_heavy_stream();
    let build_report = || {
        let mut hh = HeavyHittersTracker::new(0.005, 12, 1024, 4, 42).expect("valid params");
        for x in &stream {
            hh.update(x);
        }
        hh.heavy_hitters()
    };
    let reference = build_report();
    for rebuild in 0..REBUILDS {
        assert_eq!(build_report(), reference, "diverged on rebuild {rebuild}");
    }
}

#[test]
fn heavy_hitters_tracker_merge_is_rebuild_invariant() {
    let stream = tie_heavy_stream();
    let half = stream.len() / 2;
    let build_merged = || {
        let mut a = HeavyHittersTracker::new(0.005, 12, 1024, 4, 42).expect("valid params");
        let mut b = HeavyHittersTracker::new(0.005, 12, 1024, 4, 42).expect("valid params");
        for x in &stream[..half] {
            a.update(x);
        }
        for x in &stream[half..] {
            b.update(x);
        }
        a.merge(&b).expect("compatible");
        a.heavy_hitters()
    };
    let reference = build_merged();
    for rebuild in 0..REBUILDS {
        assert_eq!(build_merged(), reference, "diverged on rebuild {rebuild}");
    }
}

fn engine_spec() -> QuerySpec {
    QuerySpec::new(
        vec![0],
        vec![Aggregate::Count, Aggregate::TopK { field: 1, k: 3 }],
    )
    .expect("valid spec")
}

fn engine_rows() -> Vec<Vec<Value>> {
    // 32 groups; within each group, ten distinct values with one occurrence
    // each, so every TopK truncation is a pure tie.
    let mut rows = Vec::new();
    for g in 0..32u64 {
        for v in 0..10u64 {
            rows.push(vec![Value::from(g), Value::from(v)]);
        }
    }
    rows
}

#[test]
fn sketch_engine_flush_window_is_rebuild_invariant() {
    let rows = engine_rows();
    let build_window = || {
        let mut eng = SketchEngine::new(engine_spec()).expect("valid engine");
        for row in &rows {
            eng.process(row).expect("valid row");
        }
        eng.flush_window().expect("flush")
    };
    let reference = build_window();
    // Keys come back fully sorted, so the layout itself is canonical.
    let keys: Vec<&Vec<Value>> = reference.iter().map(|(k, _)| k).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "flush_window keys must be in ascending order");
    for rebuild in 0..REBUILDS {
        assert_eq!(build_window(), reference, "diverged on rebuild {rebuild}");
    }
}

#[test]
fn sketch_engine_group_listing_is_sorted_and_stable() {
    let rows = engine_rows();
    let build_groups = || {
        let mut eng = SketchEngine::new(engine_spec()).expect("valid engine");
        for row in &rows {
            eng.process(row).expect("valid row");
        }
        eng.groups().cloned().collect::<Vec<_>>()
    };
    let reference = build_groups();
    let mut sorted = reference.clone();
    sorted.sort();
    assert_eq!(reference, sorted, "groups() must list keys in order");
    for rebuild in 0..REBUILDS {
        assert_eq!(build_groups(), reference, "diverged on rebuild {rebuild}");
    }
}

#[test]
fn exact_engine_topk_ties_are_rebuild_invariant() {
    let rows = engine_rows();
    let build_report = || {
        let mut eng = ExactEngine::new(engine_spec());
        for row in &rows {
            eng.process(row).expect("valid row");
        }
        eng.report(&[Value::from(7u64)]).expect("group exists")
    };
    let reference = build_report();
    // All ten values tie at count 1; the canonical tie-break keeps the three
    // smallest values.
    match &reference[1] {
        AggregateResult::TopK(top) => {
            let vals: Vec<&Value> = top.iter().map(|(v, _)| v).collect();
            assert_eq!(
                vals,
                vec![&Value::from(0u64), &Value::from(1u64), &Value::from(2u64)],
                "tied TopK must break toward the smallest values"
            );
        }
        other => panic!("unexpected aggregate {other:?}"),
    }
    for rebuild in 0..REBUILDS {
        assert_eq!(build_report(), reference, "diverged on rebuild {rebuild}");
    }
}

#[test]
fn lsh_nearest_breaks_distance_ties_by_id() {
    // Two points exactly 1.0 away from the query in opposite directions;
    // a huge bucket width puts everything in one bucket, so both are always
    // candidates and the distance tie must break toward the smaller id.
    for rebuild in 0..REBUILDS {
        let mut idx = EuclideanLshIndex::new(1, 2, 1, 1.0e6, 9).expect("valid params");
        idx.insert(&[1.0]).expect("dim ok");
        idx.insert(&[-1.0]).expect("dim ok");
        let (id, dist) = idx.nearest(&[0.0]).expect("dim ok").expect("candidates");
        assert_eq!(
            id, 0,
            "tie must break to the smaller id (rebuild {rebuild})"
        );
        assert!((dist - 1.0).abs() < 1e-12);
    }
}

#[test]
fn lsh_candidate_sets_iterate_in_id_order() {
    let mut idx = EuclideanLshIndex::new(2, 4, 2, 1.0e6, 3).expect("valid params");
    for i in 0..50u64 {
        let x = (i % 7) as f64;
        idx.insert(&[x, x + 1.0]).expect("dim ok");
    }
    let cands = idx.candidates(&[3.0, 4.0]).expect("dim ok");
    let listed: Vec<u64> = cands.iter().copied().collect();
    let mut sorted = listed.clone();
    sorted.sort_unstable();
    assert_eq!(
        listed, sorted,
        "candidates must iterate in ascending id order"
    );
}

#[test]
fn agm_spanning_forest_is_rebuild_invariant() {
    let build_forest = || {
        let mut g = AgmGraphSketch::new(32, 8, 16, 77).expect("valid params");
        // A deterministic graph with plenty of parallel structure: two
        // overlapping cycles plus chords.
        for i in 0..32 {
            g.insert_edge(i, (i + 1) % 32).expect("in range");
        }
        for i in 0..16 {
            g.insert_edge(i, i + 16).expect("in range");
        }
        g.spanning_forest().0
    };
    let reference = build_forest();
    for rebuild in 0..REBUILDS {
        assert_eq!(build_forest(), reference, "diverged on rebuild {rebuild}");
    }
}
