//! Stress and composition tests for the concurrent serving engine: seeded
//! multi-thread drills where readers spin on `report()` while batches
//! stream in. Readers must always be answered, published state must only
//! move forward in committed-batch steps, publish lag must stay bounded by
//! the in-flight work, and at quiescence the served state must equal the
//! sequential engine group for group and the sharded engine byte for byte.
//! The durable wrapper must compose with the concurrent engine unchanged.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use sketches::streamdb::{
    Aggregate, CheckpointPolicy, ConcurrentEngine, DurableEngine, FaultPolicy, QuerySpec, Row,
    ShardedEngine, SketchEngine, Value,
};
use sketches_workloads::serving::ServingWorkload;

const SHARDS: usize = 4;
const NUM_BATCHES: usize = 20;
const BATCH_ROWS: usize = 1_000;

fn spec() -> QuerySpec {
    QuerySpec::new(
        vec![0],
        vec![
            Aggregate::Count,
            Aggregate::Sum { field: 2 },
            Aggregate::CountDistinct { field: 1 },
            Aggregate::Quantiles { field: 2 },
            Aggregate::TopK { field: 1, k: 3 },
        ],
    )
    .expect("valid spec")
}

/// Deterministic serving batches: Zipf-hot group keys, growing distinct
/// users, numeric measures — the same stream for every engine under test.
fn serving_batches(seed: u64) -> Vec<Vec<Row>> {
    let mut wl = ServingWorkload::new(500, 1.2, seed).expect("workload");
    wl.batches(NUM_BATCHES, BATCH_ROWS)
        .iter()
        .map(|b| {
            b.iter()
                .map(|e| {
                    vec![
                        Value::U64(e.group),
                        Value::U64(e.user % 10_000),
                        Value::F64(e.value),
                    ]
                })
                .collect()
        })
        .collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "sketches-concurrent-it-{}-{tag}-{n}",
        std::process::id()
    ))
}

/// The core stress drill: several reader threads hammer `report()`,
/// `num_groups()`, and `rows_processed()` while the writer streams every
/// batch through `wait()`. Probes must always answer, published row counts
/// must be monotone, and resolved tickets must already be visible.
#[test]
fn readers_are_always_answered_during_ingest() {
    let batches = serving_batches(11);
    let engine = ConcurrentEngine::new(spec(), SHARDS).expect("engine");
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        let readers: Vec<_> = (0..3u64)
            .map(|r| {
                let engine = &engine;
                let stop = &stop;
                s.spawn(move || {
                    let mut probes = 0u64;
                    let mut last_rows = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // Hot and cold groups alike: every probe answers.
                        for g in [1u64, 2, 3, 250 + r, 90_000] {
                            let _ = engine.report(&[Value::U64(g)]).expect("report");
                            probes += 1;
                        }
                        let rows = engine.rows_processed();
                        assert!(
                            rows >= last_rows,
                            "published rows went backwards: {rows} < {last_rows}"
                        );
                        last_rows = rows;
                        let _ = engine.num_groups();
                    }
                    probes
                })
            })
            .collect();

        let mut expected = 0u64;
        for batch in &batches {
            let summary = engine.submit_batch(batch.clone()).wait().expect("batch");
            expected += summary.rows_ingested as u64;
            // Publish happens before the ticket resolves, so a resolved
            // wait() means readers already observe the batch.
            assert!(engine.rows_processed() >= expected);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            let probes = r.join().expect("reader thread");
            assert!(probes > 0, "a reader thread never completed a probe");
        }
    });

    // Quiescence: group-for-group equality with the sequential engine,
    // byte-for-byte snapshot equality with the sharded engine.
    let mut seq = SketchEngine::new(spec()).expect("engine");
    let mut sharded = ShardedEngine::new(spec(), SHARDS).expect("engine");
    for batch in &batches {
        seq.process_batch(batch).expect("seq");
        sharded.process_batch(batch).expect("sharded");
    }
    assert_eq!(engine.num_groups(), seq.num_groups());
    for key in engine.groups() {
        assert_eq!(
            engine.report(&key).expect("conc report"),
            seq.report(&key).expect("seq report"),
            "group {key:?} diverged"
        );
    }
    assert_eq!(engine.to_snapshot_bytes(), sharded.to_snapshot_bytes());
}

/// Pipelined submission: enqueue every ticket before resolving any. The
/// coordinator applies batches in submission order, the lag gauge reflects
/// the queued rows, and the final state still matches the sequential run.
#[test]
fn pipelined_submission_applies_in_order() {
    let batches = serving_batches(23);
    let engine = ConcurrentEngine::new(spec(), SHARDS).expect("engine");

    let tickets: Vec<_> = batches
        .iter()
        .map(|b| engine.submit_batch(b.clone()))
        .collect();
    let mut resolved = 0u64;
    for t in tickets {
        let summary = t.wait().expect("ticket");
        resolved += summary.rows_ingested as u64;
        assert!(engine.rows_processed() >= resolved);
    }
    assert_eq!(resolved, (NUM_BATCHES * BATCH_ROWS) as u64);

    let mut seq = SketchEngine::new(spec()).expect("engine");
    for batch in &batches {
        seq.process_batch(batch).expect("seq");
    }
    for key in seq.groups() {
        assert_eq!(
            engine.report(key).expect("conc report"),
            seq.report(key).expect("seq report")
        );
    }
}

/// A failing batch rolls back without publishing: concurrent readers never
/// observe any of its rows, before, during, or after the rollback.
#[test]
fn rollback_is_invisible_to_concurrent_readers() {
    let batches = serving_batches(37);
    let engine = ConcurrentEngine::new(spec(), SHARDS).expect("engine");
    for batch in &batches[..4] {
        engine.submit_batch(batch.clone()).wait().expect("prefix");
    }
    let committed = engine.rows_processed();
    let baseline = engine.to_snapshot_bytes();

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let engine = &engine;
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let _ = engine.report(&[Value::U64(1)]).expect("report");
                        assert_eq!(
                            engine.rows_processed(),
                            committed,
                            "a reader observed rows from a rolled-back batch"
                        );
                    }
                })
            })
            .collect();

        // Poison mid-batch: a string where the summed field must be
        // numeric fails one shard, and every shard rolls back.
        for trial in 0..5 {
            let mut poison = batches[4].clone();
            poison.insert(
                100 * (trial + 1),
                vec![
                    Value::U64(1),
                    Value::U64(2),
                    Value::Str("not-a-number".to_string()),
                ],
            );
            let err = engine.submit_batch(poison).wait().expect_err("must fail");
            assert_eq!(err.row, Some(100 * (trial + 1)));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader thread");
        }
    });
    assert_eq!(engine.to_snapshot_bytes(), baseline);
    assert!(!engine.is_poisoned());

    // The engine keeps serving writes after the rollbacks.
    engine
        .submit_batch(batches[4].clone())
        .wait()
        .expect("resume");
    assert_eq!(engine.rows_processed(), committed + BATCH_ROWS as u64);
}

/// Quarantine under live readers: poison rows divert to dead letters, the
/// batch still lands, and the quiescent state matches a sequential engine
/// running the same policy over the same stream.
#[test]
fn quarantine_under_load_matches_sequential_policy() {
    let batches = serving_batches(53);
    let policy = FaultPolicy::Quarantine { max_samples: 4 };
    let mut engine = ConcurrentEngine::new(spec(), SHARDS).expect("engine");
    engine.set_fault_policy(policy);
    let mut seq = SketchEngine::new(spec()).expect("engine");
    seq.set_fault_policy(policy);

    let poison_at = 17usize;
    let mut quarantined = 0u64;
    for (i, batch) in batches.iter().enumerate() {
        let mut batch = batch.clone();
        if i % 3 == 0 {
            batch.insert(
                poison_at,
                vec![Value::U64(9), Value::U64(9), Value::Str("bad".to_string())],
            );
        }
        let summary = engine.submit_batch(batch.clone()).wait().expect("batch");
        let seq_summary = seq.process_batch(&batch).expect("seq");
        assert_eq!(summary, seq_summary);
        quarantined += summary.rows_quarantined as u64;
    }
    assert!(quarantined > 0, "no rows were quarantined");
    assert_eq!(engine.dead_letters().count(), seq.dead_letters().count());
    for key in seq.groups() {
        assert_eq!(
            engine.report(key).expect("conc report"),
            seq.report(key).expect("seq report")
        );
    }
}

/// `flush_window` drains the concurrent engine exactly like the
/// sequential one: same per-group rows out, empty state after, and the
/// engine keeps ingesting into the fresh window.
#[test]
fn flush_window_matches_sequential_and_resets() {
    let batches = serving_batches(71);
    let mut engine = ConcurrentEngine::new(spec(), SHARDS).expect("engine");
    let mut seq = SketchEngine::new(spec()).expect("engine");
    for batch in &batches[..6] {
        engine.submit_batch(batch.clone()).wait().expect("batch");
        seq.process_batch(batch).expect("seq");
    }
    let conc_out = engine.flush_window().expect("flush");
    let seq_out = seq.flush_window().expect("flush");
    assert_eq!(conc_out, seq_out);
    assert_eq!(engine.num_groups(), 0);
    assert_eq!(engine.rows_processed(), 0);

    // The next window starts clean on both sides.
    engine
        .submit_batch(batches[6].clone())
        .wait()
        .expect("next");
    seq.process_batch(&batches[6]).expect("next");
    for key in seq.groups() {
        assert_eq!(
            engine.report(key).expect("conc report"),
            seq.report(key).expect("seq report")
        );
    }
}

/// `DurableEngine<ConcurrentEngine>` composes through the `StreamEngine`
/// trait: checkpoints serialize the published state, recovery rebuilds a
/// live worker pool, and the recovered engine both serves and ingests.
#[test]
fn durable_wrapper_checkpoints_and_recovers_concurrent_engine() {
    let dir = scratch_dir("durable");
    let _ = std::fs::remove_dir_all(&dir);
    let batches = serving_batches(97);
    let policy = CheckpointPolicy::new(2 * BATCH_ROWS as u64, u64::MAX).expect("policy");

    let mut durable = DurableEngine::create(
        &dir,
        ConcurrentEngine::new(spec(), SHARDS).expect("engine"),
        policy,
    )
    .expect("create");
    for batch in &batches[..8] {
        durable.process_batch(batch).expect("batch");
    }
    durable.checkpoint_now().expect("checkpoint");
    let persisted = durable.engine().to_snapshot_bytes();
    drop(durable);

    let mut recovered =
        DurableEngine::<ConcurrentEngine>::recover_with_policy(&dir, policy).expect("recover");
    assert_eq!(recovered.engine().to_snapshot_bytes(), persisted);

    // The recovered engine has a live worker pool: it serves and ingests.
    let mut reference = SketchEngine::new(spec()).expect("engine");
    for batch in &batches[..8] {
        reference.process_batch(batch).expect("reference");
    }
    for batch in &batches[8..] {
        recovered.process_batch(batch).expect("resume");
        reference.process_batch(batch).expect("reference");
    }
    for key in reference.groups() {
        assert_eq!(
            recovered.engine().report(key).expect("recovered report"),
            reference.report(key).expect("reference report"),
            "group {key:?} diverged after recovery"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Snapshot restore crosses topologies in both directions: a concurrent
/// engine restores a sharded engine's bytes (and vice versa) and the
/// restored engine serves the same reports.
#[test]
fn snapshot_restore_crosses_topologies() {
    let batches = serving_batches(113);
    let conc = ConcurrentEngine::new(spec(), SHARDS).expect("engine");
    let mut sharded = ShardedEngine::new(spec(), SHARDS).expect("engine");
    for batch in &batches[..5] {
        conc.submit_batch(batch.clone()).wait().expect("batch");
        sharded.process_batch(batch).expect("sharded");
    }

    let from_sharded = ConcurrentEngine::from_snapshot_bytes(&sharded.to_snapshot_bytes())
        .expect("restore concurrent from sharded bytes");
    let from_conc = ShardedEngine::from_snapshot_bytes(&conc.to_snapshot_bytes())
        .expect("restore sharded from concurrent bytes");
    for key in sharded.groups() {
        let want = sharded.report(key).expect("sharded report");
        assert_eq!(from_sharded.report(key).expect("restored report"), want);
        assert_eq!(from_conc.report(key).expect("restored report"), want);
    }
    assert_eq!(from_sharded.rows_processed(), conc.rows_processed());
}

/// Shutdown stress: many threads submit batches through shared ownership
/// and release their handles *before* waiting, so the engine's FIFO
/// drop-shutdown races with unresolved tickets. Every ticket must still
/// resolve within a bounded wait — batches submitted before the shutdown
/// land with their full summary, and nothing hangs or leaks a thread.
#[test]
fn shutdown_with_in_flight_submissions_resolves_every_ticket() {
    use std::sync::Arc;
    use std::time::Duration;

    const THREADS: u64 = 8;
    const BATCHES_PER_THREAD: usize = 6;

    let batches = serving_batches(211);
    // Depth 1 keeps a real backlog queued at the coordinator so tickets
    // are genuinely unresolved when the last handle drops.
    let engine = Arc::new(
        ConcurrentEngine::with_config(
            spec(),
            sketches::streamdb::EngineConfig::default(),
            SHARDS,
            1,
        )
        .expect("engine"),
    );

    let mut submitted_rows = 0u64;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let engine = Arc::clone(&engine);
        let mine: Vec<Vec<Row>> = (0..BATCHES_PER_THREAD)
            .map(|i| batches[(t as usize * BATCHES_PER_THREAD + i) % batches.len()].clone())
            .collect();
        submitted_rows += mine.iter().map(|b| b.len() as u64).sum::<u64>();
        handles.push(std::thread::spawn(move || {
            let tickets: Vec<_> = mine
                .into_iter()
                .map(|rows| engine.submit_batch(rows))
                .collect();
            // Release this thread's share of the engine *before* waiting:
            // whichever thread drops the last handle runs the engine's
            // drop-shutdown while these tickets are still outstanding.
            drop(engine);
            let mut resolved = 0u64;
            for ticket in tickets {
                match ticket.wait_timeout(Duration::from_secs(10)) {
                    Ok(Ok(summary)) => resolved += summary.rows_ingested as u64,
                    Ok(Err(err)) => panic!("pre-shutdown batch failed: {err:?}"),
                    Err(_) => panic!("ticket unresolved after shutdown: would hang"),
                }
            }
            resolved
        }));
    }
    drop(engine);

    let resolved_rows: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("submitter panicked"))
        .sum();
    assert_eq!(
        resolved_rows, submitted_rows,
        "every batch submitted before shutdown must land in full"
    );
}
