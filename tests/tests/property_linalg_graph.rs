//! Property tests for the linear-sketch laws (linearity of transforms,
//! merge-equals-concat for AMS), graph-sketch agreement with exact
//! connectivity, and engine-vs-exact-engine agreement on random rows.

use proptest::collection::vec;
use proptest::prelude::*;
use sketches::core::MergeSketch;
use sketches::graph::{AgmGraphSketch, UnionFind};
use sketches::linalg::{AmsSketch, CountSketchTransform, DenseJl, JlKind};
use sketches::streamdb::{Aggregate, AggregateResult, ExactEngine, QuerySpec, SketchEngine, Value};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dense JL is a linear map: P(a + b) = P(a) + P(b), exactly (same
    /// matrix, plain f64 arithmetic).
    #[test]
    fn dense_jl_is_linear(a in vec(-100.0f64..100.0, 16), b in vec(-100.0f64..100.0, 16)) {
        let jl = DenseJl::new(16, 8, JlKind::Rademacher, 3).unwrap();
        let pa = jl.project(&a).unwrap();
        let pb = jl.project(&b).unwrap();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let psum = jl.project(&sum).unwrap();
        for i in 0..8 {
            prop_assert!((psum[i] - (pa[i] + pb[i])).abs() < 1e-9);
        }
    }

    /// The CountSketch transform is linear too (it is a sparse matrix).
    #[test]
    fn countsketch_transform_is_linear(a in vec(-100.0f64..100.0, 24), b in vec(-100.0f64..100.0, 24)) {
        let cs = CountSketchTransform::new(24, 8, 5).unwrap();
        let pa = cs.project(&a).unwrap();
        let pb = cs.project(&b).unwrap();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let psum = cs.project(&sum).unwrap();
        for i in 0..8 {
            prop_assert!((psum[i] - (pa[i] + pb[i])).abs() < 1e-9);
        }
    }

    /// AMS merge equals the concatenated-stream sketch, counter for counter.
    #[test]
    fn ams_merge_is_concat(a in vec(any::<u32>(), 0..300), b in vec(any::<u32>(), 0..300)) {
        let mut sa = AmsSketch::new(32, 3, 7).unwrap();
        let mut sb = AmsSketch::new(32, 3, 7).unwrap();
        let mut sab = AmsSketch::new(32, 3, 7).unwrap();
        for x in &a { sa.update_weighted(x, 1); sab.update_weighted(x, 1); }
        for x in &b { sb.update_weighted(x, 1); sab.update_weighted(x, 1); }
        sa.merge(&sb).unwrap();
        prop_assert!((sa.f2_estimate() - sab.f2_estimate()).abs() < 1e-9);
    }

    /// AGM component structure agrees with exact union-find on random
    /// insert-only graphs.
    #[test]
    fn agm_matches_union_find(edges in vec((0usize..12, 0usize..12), 0..25)) {
        let n = 12;
        let rounds = 8;
        let mut g = AgmGraphSketch::new(n, rounds, 8, 99).unwrap();
        let mut uf = UnionFind::new(n);
        for &(a, b) in &edges {
            if a != b {
                g.insert_edge(a, b).unwrap();
                uf.union(a, b);
            }
        }
        let (_, mut sketch_uf) = g.spanning_forest();
        prop_assert_eq!(sketch_uf.num_components(), uf.num_components());
        for a in 0..n {
            for b in (a + 1)..n {
                prop_assert_eq!(sketch_uf.connected(a, b), uf.connected(a, b),
                    "pair ({}, {})", a, b);
            }
        }
    }

    /// The sketch engine's COUNT/SUM agree exactly with the exact engine on
    /// arbitrary row streams (only the approximate aggregates may differ).
    #[test]
    fn engines_agree_on_exact_aggregates(rows in vec((0u64..5, 0u64..50, -100i64..100), 1..300)) {
        let spec = QuerySpec::new(
            vec![0],
            vec![Aggregate::Count, Aggregate::Sum { field: 2 }],
        ).unwrap();
        let mut sketchy = SketchEngine::new(spec.clone()).unwrap();
        let mut exact = ExactEngine::new(spec);
        for &(g, u, v) in &rows {
            let row = vec![Value::U64(g), Value::U64(u), Value::I64(v)];
            sketchy.process(&row).unwrap();
            exact.process(&row).unwrap();
        }
        prop_assert_eq!(sketchy.num_groups(), exact.num_groups());
        for g in 0u64..5 {
            let key = vec![Value::U64(g)];
            let a = sketchy.report(&key).unwrap();
            let b = exact.report(&key);
            match (a, b) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    prop_assert_eq!(&a[0], &b[0], "COUNT differs for group {}", g);
                    if let (AggregateResult::Sum(x), AggregateResult::Sum(y)) = (&a[1], &b[1]) {
                        prop_assert!((x - y).abs() < 1e-9, "SUM differs for group {}", g);
                    }
                }
                _ => prop_assert!(false, "group presence differs for {}", g),
            }
        }
    }
}
