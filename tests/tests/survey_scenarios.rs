//! Integration: the survey's application scenarios end-to-end — the ad
//! reach story (§3 advertising), the network GROUP BY story (§3 ISP era),
//! and the private-collection story (§3 privacy) — each on its synthetic
//! workload with exact ground truth.

use std::collections::HashSet;

use sketches::hash::rng::Xoshiro256PlusPlus;
use sketches::prelude::*;
use sketches::privacy::{PrivateCmsClient, PrivateCmsServer};
use sketches::streamdb::{Aggregate, AggregateResult, QuerySpec, SketchEngine, Value};
use sketches_integration_tests::assert_rel_err;
use sketches_workloads::ads::AdWorkload;
use sketches_workloads::flows::FlowWorkload;

#[test]
fn ad_reach_slice_and_dice() {
    let mut w = AdWorkload::new(100_000, 3, 5);
    let imps = w.stream(400_000);

    // Per-campaign sketches + exact sets.
    let mut sketches: Vec<HyperLogLog> = (0..3).map(|_| HyperLogLog::new(12, 9).unwrap()).collect();
    let mut exact: Vec<HashSet<u64>> = vec![HashSet::new(); 3];
    for imp in &imps {
        sketches[imp.campaign_id as usize].update(&imp.user_id);
        exact[imp.campaign_id as usize].insert(imp.user_id);
    }
    for c in 0..3 {
        assert_rel_err(
            exact[c].len() as f64,
            sketches[c].estimate(),
            0.08,
            &format!("campaign {c} reach"),
        );
    }
    // Total reach via merge (no double counting across campaigns).
    let mut total = sketches[0].clone();
    total.merge(&sketches[1]).unwrap();
    total.merge(&sketches[2]).unwrap();
    let exact_total: HashSet<u64> = exact.iter().flatten().copied().collect();
    assert_rel_err(
        exact_total.len() as f64,
        total.estimate(),
        0.08,
        "deduplicated total reach",
    );
    // Merged estimate must not be the naive sum (that's the whole point).
    let naive_sum: f64 = sketches.iter().map(CardinalityEstimator::estimate).sum();
    assert!(total.estimate() < 0.8 * naive_sum, "union should dedupe");
}

#[test]
fn network_group_by_with_window_rotation() {
    let spec = QuerySpec::new(
        vec![0],
        vec![Aggregate::Count, Aggregate::CountDistinct { field: 1 }],
    )
    .unwrap();
    let mut engine = SketchEngine::new(spec).unwrap();
    let mut workload = FlowWorkload::new(5_000, 3);

    // Two tumbling windows.
    for _window in 0..2 {
        for f in workload.stream(100_000) {
            engine
                .process(&vec![
                    Value::U64(u64::from(f.src_ip)),
                    Value::U64(u64::from(f.dst_ip)),
                ])
                .unwrap();
        }
        let results = engine.flush_window().unwrap();
        assert!(results.len() > 500, "expected many groups per window");
        let total: u64 = results
            .iter()
            .map(|(_, aggs)| match aggs[0] {
                AggregateResult::Count(c) => c,
                _ => 0,
            })
            .sum();
        assert_eq!(total, 100_000, "window counts must partition the stream");
        // Distinct counts are positive and at most the group count.
        for (_, aggs) in &results {
            if let (AggregateResult::Count(c), AggregateResult::CountDistinct(d)) =
                (&aggs[0], &aggs[1])
            {
                assert!(*d > 0.0);
                assert!(*d <= *c as f64 * 1.1 + 2.0);
            }
        }
        assert_eq!(engine.num_groups(), 0, "window flush must reset");
    }
}

#[test]
fn private_collection_end_to_end() {
    // 50k users report one of 32 values under epsilon = 3 local DP.
    let eps = 3.0;
    let client = PrivateCmsClient::new(16, 512, eps, 21).unwrap();
    let mut server = PrivateCmsServer::new(16, 512, eps, 21).unwrap();
    let mut rng = Xoshiro256PlusPlus::new(77);
    let mut truth = vec![0u64; 32];
    for i in 0..50_000u64 {
        let value = (i % 32).min(i % 7 * 5); // lumpy distribution
        truth[value as usize] += 1;
        server.collect(&client.report(&value, &mut rng)).unwrap();
    }
    // The top value should be recovered within 15%.
    let top = (0..32).max_by_key(|&v| truth[v]).unwrap();
    let est = server.estimate(&(top as u64));
    assert_rel_err(truth[top] as f64, est, 0.15, "top value under LDP");
    assert_eq!(server.reports(), 50_000);
}

#[test]
fn facade_reexports_are_consistent() {
    // The same type must be reachable through the facade and the prelude.
    fn takes_hll(_: &sketches::cardinality::HyperLogLog) {}
    let h: HyperLogLog = HyperLogLog::new(8, 0).unwrap();
    takes_hll(&h);
}
