//! Property tests for checkpoint snapshots: round-trips are exact (bytes
//! and future behaviour), and *every* single-bit flip or truncation of a
//! snapshot is detected as a typed `Corrupted` error — never a panic,
//! never a silently-wrong engine.

use proptest::collection::vec;
use proptest::prelude::*;
use sketches::core::SketchError;
use sketches::streamdb::{
    Aggregate, EngineConfig, QuerySpec, Row, ShardedEngine, SketchEngine, Snapshot, Value,
};

fn full_spec() -> QuerySpec {
    QuerySpec::new(
        vec![0],
        vec![
            Aggregate::Count,
            Aggregate::Sum { field: 2 },
            Aggregate::CountDistinct { field: 1 },
            Aggregate::Quantiles { field: 2 },
            Aggregate::TopK { field: 1, k: 3 },
            Aggregate::Frequency { field: 1 },
        ],
    )
    .expect("valid spec")
}

/// Small sketches keep the exhaustive corruption sweep fast.
fn tiny_config() -> EngineConfig {
    EngineConfig {
        hll_precision: 4,
        kll_k: 8,
        space_saving_counters: 4,
        sf_fat_width: 16,
        sf_slim_width: 4,
        ..EngineConfig::default()
    }
}

fn to_rows(raw: &[(u64, u16, u16)]) -> Vec<Row> {
    raw.iter()
        .map(|&(g, u, v)| {
            vec![
                Value::U64(g),
                Value::U64(u64::from(u)),
                Value::F64(f64::from(v)),
            ]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Snapshot → restore → snapshot is the identity on bytes, and the
    /// restored engine's future ingest stays byte-identical to the
    /// original's (RNG positions included).
    #[test]
    fn engine_snapshot_round_trip_is_exact(
        raw in vec((0u64..9, any::<u16>(), 0u16..1000), 0..300),
        more in vec((0u64..9, any::<u16>(), 0u16..1000), 0..100),
    ) {
        let rows = to_rows(&raw);
        let mut original = SketchEngine::new(full_spec()).expect("engine");
        original.process_batch(&rows).expect("ingest");

        let bytes = original.to_snapshot_bytes();
        let mut restored = SketchEngine::from_snapshot_bytes(&bytes).expect("restore");
        prop_assert_eq!(restored.to_snapshot_bytes(), bytes.clone());

        let future = to_rows(&more);
        original.process_batch(&future).expect("ingest");
        restored.process_batch(&future).expect("ingest");
        prop_assert_eq!(restored.to_snapshot_bytes(), original.to_snapshot_bytes());
    }

    /// The same identity for the sharded engine, topology included.
    #[test]
    fn sharded_snapshot_round_trip_is_exact(
        raw in vec((0u64..9, any::<u16>(), 0u16..1000), 0..300),
        shards in 1usize..5,
    ) {
        let rows = to_rows(&raw);
        let mut original = ShardedEngine::new(full_spec(), shards).expect("engine");
        original.process_batch(&rows).expect("ingest");

        let bytes = original.to_snapshot_bytes();
        let restored = ShardedEngine::from_snapshot_bytes(&bytes).expect("restore");
        prop_assert_eq!(restored.num_shards(), shards);
        prop_assert_eq!(restored.to_snapshot_bytes(), bytes);
    }

    /// Random multi-byte stompings of random snapshot regions are always
    /// detected (the exhaustive single-bit sweep lives below; this one
    /// covers compound damage).
    #[test]
    fn random_stompings_are_detected(
        raw in vec((0u64..9, any::<u16>(), 0u16..1000), 1..120),
        at in any::<u64>(),
        stomp in vec(any::<u8>(), 1..16),
    ) {
        let mut engine = SketchEngine::with_config(full_spec(), tiny_config()).expect("engine");
        engine.process_batch(&to_rows(&raw)).expect("ingest");
        let bytes = engine.to_snapshot_bytes();

        let pos = (at % bytes.len() as u64) as usize;
        let mut bad = bytes.clone();
        for (i, b) in stomp.iter().enumerate() {
            if pos + i < bad.len() {
                // `| 1` keeps every XOR mask nonzero, so the first stomped
                // byte always really changes.
                bad[pos + i] ^= b | 1;
            }
        }
        prop_assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(SketchError::Corrupted { .. })
        ));
    }
}

/// Exhaustive single-bit-flip sweep: flipping any one bit anywhere in the
/// snapshot must yield a typed `Corrupted` error.
#[test]
fn every_single_bit_flip_is_detected() {
    let mut engine = SketchEngine::with_config(full_spec(), tiny_config()).expect("engine");
    let rows: Vec<Row> = (0..150u64)
        .map(|i| {
            vec![
                Value::U64(i % 5),
                Value::U64(i % 37),
                Value::F64((i % 100) as f64),
            ]
        })
        .collect();
    engine.process_batch(&rows).expect("ingest");
    let bytes = engine.to_snapshot_bytes();

    for i in 0..bytes.len() {
        for bit in 0..8u8 {
            let mut bad = bytes.clone();
            bad[i] ^= 1 << bit;
            match Snapshot::from_bytes(&bad) {
                Err(SketchError::Corrupted { .. }) => {}
                other => panic!("flip of byte {i} bit {bit} not detected: {other:?}"),
            }
        }
    }
}

/// Exhaustive truncation sweep: every proper prefix of a snapshot must be
/// rejected with a typed `Corrupted` error.
#[test]
fn every_truncation_is_detected() {
    let mut engine = ShardedEngine::with_config(full_spec(), tiny_config(), 3, 64).expect("engine");
    let rows: Vec<Row> = (0..150u64)
        .map(|i| {
            vec![
                Value::U64(i % 5),
                Value::U64(i % 37),
                Value::F64((i % 100) as f64),
            ]
        })
        .collect();
    engine.process_batch(&rows).expect("ingest");
    let bytes = engine.to_snapshot_bytes();

    for cut in 0..bytes.len() {
        match Snapshot::from_bytes(&bytes[..cut]) {
            Err(SketchError::Corrupted { .. }) => {}
            other => panic!("truncation to {cut} bytes not detected: {other:?}"),
        }
    }
}
