//! Request-tracing contract drills: a `ManualClock` pins an exact
//! multi-stage span tree from submit queue to fsync (byte-stable across
//! repeated rebuilds), and over real TCP the server emits a `traceparent`
//! response header, serves head-sampled and slow traces from the
//! versioned debug endpoints with typed 400s, exposes `/metrics` as JSON
//! and per-route quantile gauges, and keeps every read-side endpoint
//! alive while degraded read-only.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sketches::streamdb::{
    silence_injected_panics, Aggregate, CheckpointPolicy, ConcurrentEngine, DurableEngine, IdGen,
    ManualClock, QuerySpec, Row, Stage, Trace, TraceContext, Value,
};
use sketches_serve::{Backend, Sampling, Server, ServerConfig, TraceConfig};

fn spec() -> QuerySpec {
    QuerySpec::new(
        vec![0],
        vec![
            Aggregate::Count,
            Aggregate::Sum { field: 2 },
            Aggregate::CountDistinct { field: 1 },
        ],
    )
    .expect("valid spec")
}

fn scratch_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "sketches-trace-it-{}-{tag}-{n}",
        std::process::id()
    ))
}

fn rows(seed: u64, n: u64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed);
            vec![
                Value::U64(x % 23),
                Value::U64(x % 307),
                Value::F64((x % 1_000) as f64),
            ]
        })
        .collect()
}

/// One blocking HTTP exchange with optional extra header lines; returns
/// `(status, head, body)`.
fn exchange_with(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &str,
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: it\r\n{extra_headers}Content-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(e) => {
                assert!(
                    raw.windows(4).any(|w| w == b"\r\n\r\n"),
                    "connection error before response head ({e})"
                );
                break;
            }
        }
    }
    let raw = String::from_utf8_lossy(&raw).to_string();
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {raw:?}"));
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, head.to_string(), body.to_string())
}

fn exchange(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    exchange_with(addr, method, path, "", body)
}

fn ingest_rows(addr: SocketAddr, n: u64, group_mod: u64) -> (u16, String, String) {
    let rows: Vec<String> = (0..n)
        .map(|i| format!("[{},{},{}.0]", i % group_mod, i % 17, i % 5))
        .collect();
    let body = format!("{{\"rows\":[{}]}}", rows.join(","));
    exchange(addr, "POST", "/v1/ingest", &body)
}

/// Builds a durable engine on a frozen [`ManualClock`], pushes one traced
/// batch through submit → shards → publish → WAL append → fsync, and
/// returns the finished trace plus its JSON rendering.
fn traced_span_tree(seed: u64) -> (Trace, String) {
    let dir = scratch_dir("span-tree");
    let clock = Arc::new(ManualClock::starting_at(1_000));
    let mut engine = ConcurrentEngine::new(spec(), 2).expect("engine");
    // The inner engine's clock must be installed before wrapping: the
    // durable layer exposes no mutable access to it afterwards.
    engine.set_clock(clock.clone());
    let policy = CheckpointPolicy::new(1_000_000, u64::MAX).expect("policy");
    let mut durable = DurableEngine::create(dir.clone(), engine, policy).expect("durable engine");
    durable.set_clock(clock);

    let mut ids = IdGen::new(seed);
    let ctx = TraceContext::root(ids.trace_id(), ids.span_id(), None);
    durable
        .process_batch_traced(&rows(7, 64), &ctx)
        .expect("traced batch");
    let trace = ctx
        .finish(Stage::Request, 500, 2_000, vec![])
        .expect("root context always yields a trace");
    let json = trace.to_json();
    drop(durable);
    let _ = std::fs::remove_dir_all(&dir);
    (trace, json)
}

/// The tentpole determinism pin: with a frozen clock and a fixed id seed,
/// one durable batch yields exactly the stage spans queue_wait →
/// engine_apply → publish → wal_append → fsync, every child nests inside
/// the root with `Σ children ≤ root`, and the JSON rendering is
/// byte-identical across 20 full engine rebuilds.
#[test]
fn manual_clock_pins_an_exact_span_tree() {
    let (trace, json0) = traced_span_tree(0xABCD);
    let root = trace.root();
    assert_eq!(root.stage, Stage::Request);
    assert_eq!(root.parent, None);

    let stages: Vec<Stage> = trace.spans.iter().skip(1).map(|s| s.stage).collect();
    assert_eq!(
        stages,
        vec![
            Stage::QueueWait,
            Stage::EngineApply,
            Stage::Publish,
            Stage::WalAppend,
            Stage::Fsync,
        ],
        "stage spans must arrive in pipeline order"
    );
    for span in trace.spans.iter().skip(1) {
        assert_eq!(span.parent, Some(root.span_id), "flat tree under the root");
        assert!(
            span.start_nanos >= root.start_nanos && span.end_nanos <= root.end_nanos,
            "child [{}, {}] must nest inside root [{}, {}]",
            span.start_nanos,
            span.end_nanos,
            root.start_nanos,
            root.end_nanos
        );
    }
    assert!(
        trace.child_duration_nanos() <= trace.duration_nanos(),
        "stage time cannot exceed the root span"
    );
    let apply = &trace.spans[2];
    assert!(apply.attrs.iter().any(|(k, v)| k == "rows" && v == "64"));
    assert!(apply.attrs.iter().any(|(k, _)| k == "shards"));
    assert!(trace.spans[4].attrs.iter().any(|(k, _)| k == "bytes"));
    assert!(json0.contains("\"stage\":\"wal_append\""), "{json0}");

    for rebuild in 0..20 {
        let (_, json) = traced_span_tree(0xABCD);
        assert_eq!(json, json0, "rebuild {rebuild} diverged");
    }

    // A different id seed changes identifiers but not the tree shape.
    let (other, other_json) = traced_span_tree(0x5EED);
    assert_ne!(other_json, json0);
    assert_eq!(other.spans.len(), trace.spans.len());
}

fn traced_server(trace: TraceConfig) -> (Server, PathBuf) {
    let dir = scratch_dir("traced-server");
    let engine = ConcurrentEngine::new(spec(), 2).expect("engine");
    let policy = CheckpointPolicy::new(1_000_000, u64::MAX).expect("policy");
    let durable = DurableEngine::create(dir.clone(), engine, policy).expect("durable engine");
    let config = ServerConfig {
        trace,
        ..ServerConfig::default()
    };
    let server = Server::start(config, Backend::durable(durable, dir.clone())).expect("server");
    (server, dir)
}

/// `/v1/debug/traces` over a durable backend: every response carries a
/// `traceparent` header, the newest trace holds the full socket-to-WAL
/// stage vocabulary, the envelope is versioned, `count` is bounded with
/// typed 400s, and the method is pinned.
#[test]
fn debug_traces_serves_versioned_socket_to_wal_spans() {
    let (server, dir) = traced_server(TraceConfig {
        sampling: Sampling::Always,
        ..TraceConfig::default()
    });
    let addr = server.addr();

    let (status, head, resp) = ingest_rows(addr, 100, 4);
    assert_eq!(status, 200, "{resp}");
    assert!(
        head.contains("traceparent: 00-"),
        "sampled responses must carry a traceparent header: {head}"
    );

    let (status, _, body) = exchange(addr, "GET", "/v1/debug/traces", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"version\":1"), "{body}");
    assert!(body.contains("\"sampling\":\"always\""), "{body}");
    for stage in [
        "parse",
        "handle",
        "write",
        "queue_wait",
        "engine_apply",
        "publish",
        "wal_append",
        "fsync",
    ] {
        assert!(
            body.contains(&format!("\"stage\":\"{stage}\"")),
            "missing {stage} span in {body}"
        );
    }
    assert!(body.contains("\"route\":\"ingest\""), "{body}");

    // The count parameter bounds the page; junk gets a typed 400.
    let (status, _, body) = exchange(addr, "GET", "/v1/debug/traces?count=1", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"count\":1"), "{body}");
    for bad in ["count=0", "count=abc", "count=300"] {
        let (status, _, body) = exchange(addr, "GET", &format!("/v1/debug/traces?{bad}"), "");
        assert_eq!(status, 400, "{bad} must be rejected: {body}");
        assert!(body.contains("bad_query"), "{body}");
    }
    let (status, _, _) = exchange(addr, "POST", "/v1/debug/traces", "");
    assert_eq!(status, 405);

    let _ = server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// An incoming `traceparent` header continues the remote trace: the
/// response echoes the caller's trace id and the stored trace adopts it.
#[test]
fn traceparent_header_continues_the_remote_trace() {
    let (server, dir) = traced_server(TraceConfig {
        sampling: Sampling::Always,
        ..TraceConfig::default()
    });
    let addr = server.addr();

    let remote = "00-00000000000000000000000000abcdef-0000000000001234-01";
    let (status, head, _) = exchange_with(
        addr,
        "GET",
        "/healthz",
        &format!("traceparent: {remote}\r\n"),
        "",
    );
    assert_eq!(status, 200);
    assert!(
        head.contains("traceparent: 00-00000000000000000000000000abcdef-"),
        "response must stay on the caller's trace: {head}"
    );

    let (status, _, body) = exchange(addr, "GET", "/v1/debug/traces?count=5", "");
    assert_eq!(status, 200);
    assert!(
        body.contains("\"trace_id\":\"00000000000000000000000000abcdef\""),
        "stored trace must adopt the remote id: {body}"
    );

    let _ = server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `/metrics?format=json` returns the same snapshot as one JSON object,
/// the Prometheus rendering now carries p50/p90/p99 gauges per latency
/// family, and an unknown format is a typed 400.
#[test]
fn metrics_format_json_and_quantile_gauges() {
    let engine = ConcurrentEngine::new(spec(), 2).expect("engine");
    let server = Server::start(ServerConfig::default(), Backend::Volatile(engine)).expect("server");
    let addr = server.addr();

    let (status, _, resp) = ingest_rows(addr, 200, 4);
    assert_eq!(status, 200, "{resp}");

    let (status, head, body) = exchange(addr, "GET", "/metrics?format=json", "");
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("application/json"), "{head}");
    assert!(
        body.starts_with('{') && body.trim_end().ends_with('}'),
        "{body}"
    );
    assert!(body.contains("serve_requests_total"), "{body}");
    assert!(body.contains("stage_latency_seconds"), "{body}");

    let (status, _, body) = exchange(addr, "GET", "/metrics?format=prometheus", "");
    assert_eq!(status, 200);
    assert!(
        body.contains("# TYPE serve_request_latency_nanos_p99 gauge"),
        "{body}"
    );
    assert!(
        body.contains("serve_request_latency_nanos_p99{route=\"ingest\"}"),
        "{body}"
    );
    assert!(
        body.contains("serve_request_latency_nanos_p50{route="),
        "{body}"
    );
    assert!(
        body.contains("stage_latency_seconds_p90{stage=\"parse\"}"),
        "{body}"
    );

    let (status, _, body) = exchange(addr, "GET", "/metrics?format=xml", "");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("bad_query"), "{body}");

    let _ = server.shutdown();
}

/// Degradation drill: after the coordinator is poisoned the server goes
/// read-only — `/readyz` reports degraded — but the trace sinks keep
/// serving, and with a zero slow threshold the failed ingests land in
/// `/v1/debug/slow` even though head sampling would have dropped them.
#[test]
fn degraded_server_keeps_debug_endpoints_alive() {
    silence_injected_panics();
    let engine = ConcurrentEngine::new(spec(), 2).expect("engine");
    let config = ServerConfig {
        trace: TraceConfig {
            sampling: Sampling::SampleEvery(1_000_000),
            slow_threshold: Duration::ZERO,
            ..TraceConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = Server::start(config, Backend::Volatile(engine)).expect("server");
    let addr = server.addr();

    let (status, _, resp) = ingest_rows(addr, 60, 3);
    assert_eq!(status, 200, "{resp}");

    server.inject_coordinator_panic();
    let mut flipped = false;
    for _ in 0..100 {
        let (status, _, resp) = ingest_rows(addr, 3, 3);
        if status == 503 {
            assert!(resp.contains("read_only"), "{resp}");
            flipped = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        flipped,
        "poisoned engine never flipped the server read-only"
    );

    let (status, _, body) = exchange(addr, "GET", "/readyz", "");
    assert_eq!(status, 503, "readiness goes red while degraded");
    assert!(body.contains("degraded"), "{body}");

    // The slow sink force-retained the requests head sampling skipped,
    // including the 503s issued while degraded.
    let (status, _, body) = exchange(addr, "GET", "/v1/debug/slow", "");
    assert_eq!(status, 200, "slow traces must survive degradation: {body}");
    assert!(body.contains("\"version\":1"), "{body}");
    assert!(body.contains("\"slow_threshold_nanos\":0"), "{body}");
    assert!(body.contains("\"route\":\"ingest\""), "{body}");
    assert!(body.contains("\"status\":\"503\""), "{body}");

    let (status, _, body) = exchange(addr, "GET", "/v1/debug/traces", "");
    assert_eq!(
        status, 200,
        "trace listing must survive degradation: {body}"
    );
    assert!(body.contains("\"sampling\":\"every_1000000\""), "{body}");

    let _ = server.shutdown();
}
