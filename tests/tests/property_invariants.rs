//! Property-based tests (proptest) over cross-cutting sketch invariants:
//! merge ≡ concatenation, no-underestimate guarantees, bounds ordering,
//! and determinism — on arbitrary streams, not hand-picked ones.

use proptest::collection::vec;
use proptest::prelude::*;
use sketches::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// HLL: sketch(A) merged with sketch(B) equals sketch(A ++ B) exactly.
    #[test]
    fn hll_merge_is_concat(a in vec(any::<u64>(), 0..500), b in vec(any::<u64>(), 0..500)) {
        let mut sa = HyperLogLog::new(8, 1).unwrap();
        let mut sb = HyperLogLog::new(8, 1).unwrap();
        let mut sab = HyperLogLog::new(8, 1).unwrap();
        for x in &a { sa.update(x); sab.update(x); }
        for x in &b { sb.update(x); sab.update(x); }
        sa.merge(&sb).unwrap();
        prop_assert_eq!(sa, sab);
    }

    /// Count-Min never underestimates any item on any stream.
    #[test]
    fn count_min_never_underestimates(stream in vec(0u16..256, 1..2000)) {
        let mut cm = CountMinSketch::new(64, 4, 7).unwrap();
        let mut exact = std::collections::HashMap::new();
        for x in &stream {
            cm.update(x);
            *exact.entry(*x).or_insert(0u64) += 1;
        }
        for (item, &truth) in &exact {
            prop_assert!(FrequencyEstimator::estimate(&cm, item) >= truth);
        }
        prop_assert_eq!(cm.total(), stream.len() as u64);
    }

    /// SpaceSaving bounds always sandwich the truth.
    #[test]
    fn space_saving_bounds_sandwich(stream in vec(0u8..50, 1..1500)) {
        let mut ss = SpaceSaving::new(10).unwrap();
        let mut exact = std::collections::HashMap::new();
        for x in &stream {
            ss.update(x);
            *exact.entry(*x).or_insert(0u64) += 1;
        }
        for (item, count, err) in ss.entries() {
            let truth = exact.get(item).copied().unwrap_or(0);
            prop_assert!(count >= truth, "upper bound violated");
            prop_assert!(count - err <= truth, "lower bound violated");
        }
        // Untracked items must be below the minimum counter.
        for (item, &truth) in &exact {
            if ss.estimate(item) == 0 {
                prop_assert!(truth <= ss.min_count());
            }
        }
    }

    /// KLL quantiles are within the value range and monotone in q.
    #[test]
    fn kll_quantiles_monotone(values in vec(-1e6f64..1e6, 1..3000)) {
        let mut kll = KllSketch::new(64, 3).unwrap();
        for v in &values {
            kll.update(v);
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut last = lo;
        for qi in 0..=10 {
            let q = f64::from(qi) / 10.0;
            let est = kll.quantile(q).unwrap();
            prop_assert!(est >= lo && est <= hi, "quantile outside value range");
            prop_assert!(est >= last, "quantiles must be monotone in q");
            last = est;
        }
    }

    /// Bloom filters have no false negatives, ever.
    #[test]
    fn bloom_no_false_negatives(keys in vec(any::<u64>(), 0..800)) {
        let mut f = BloomFilter::new(8192, 5, 11).unwrap();
        for k in &keys {
            f.update(k);
        }
        for k in &keys {
            prop_assert!(f.contains(k));
        }
    }

    /// Cuckoo filters: inserted keys are found; deleting them removes them
    /// without disturbing the rest.
    #[test]
    fn cuckoo_insert_delete_roundtrip(keys in prop::collection::hash_set(any::<u64>(), 0..300)) {
        let keys: Vec<u64> = keys.into_iter().collect();
        let mut f = CuckooFilter::with_capacity(keys.len().max(8) * 2, 13).unwrap();
        for k in &keys {
            prop_assert!(f.insert(k).is_ok());
        }
        for k in &keys {
            prop_assert!(f.contains(k));
        }
        let (del, keep) = keys.split_at(keys.len() / 2);
        for k in del {
            prop_assert!(f.remove(k));
        }
        for k in keep {
            prop_assert!(f.contains(k), "false negative after unrelated delete");
        }
    }

    /// Misra-Gries error never exceeds n/k on any stream.
    #[test]
    fn misra_gries_error_bound(stream in vec(0u16..300, 1..2000)) {
        let k = 12;
        let mut mg = MisraGries::new(k).unwrap();
        for x in &stream {
            mg.update(x);
        }
        prop_assert!(mg.error_bound() <= stream.len() as u64 / k as u64);
    }

    /// The distinct sampler never exceeds k and never invents items.
    #[test]
    fn distinct_sampler_sound(stream in vec(0u32..200, 0..1000)) {
        let mut s = DistinctSampler::new(16, 17).unwrap();
        for x in &stream {
            s.update(x);
        }
        prop_assert!(s.retained() <= 16);
        for item in s.sample() {
            prop_assert!(stream.contains(item), "sampled item never appeared");
        }
    }

    /// Reservoir sample is always a sub-multiset of the stream.
    #[test]
    fn reservoir_subset(stream in vec(any::<u32>(), 0..500)) {
        let mut r = ReservoirR::new(20, 23).unwrap();
        for x in &stream {
            r.update(x);
        }
        prop_assert_eq!(r.sample().len(), stream.len().min(20));
        for item in r.sample() {
            prop_assert!(stream.contains(item));
        }
    }

    /// Morris counters stay within 6 theoretical standard errors.
    #[test]
    fn morris_within_sigma(n in 1_000u64..50_000, seed in any::<u64>()) {
        let mut c = MorrisCounter::new(256.0, seed).unwrap();
        c.observe_many(n);
        let rel = (c.estimate() - n as f64).abs() / n as f64;
        prop_assert!(rel < 6.0 * c.theoretical_rse(), "rel err {rel}");
    }

    /// SF-sketch: on any insert-only stream, neither the fat update side
    /// nor the slim query side ever underestimates any item.
    #[test]
    fn sf_sketch_never_underestimates(stream in vec(0u16..512, 1..2000)) {
        let mut sf = SfSketch::new(256, 32, 4, 11).unwrap();
        let mut exact = std::collections::HashMap::new();
        for x in &stream {
            sf.update(x);
            *exact.entry(*x).or_insert(0u64) += 1;
        }
        for (item, &truth) in &exact {
            prop_assert!(FrequencyEstimator::estimate(&sf, item) >= truth, "fat side");
            prop_assert!(sf.slim_estimate(item) >= truth, "slim side");
        }
        prop_assert_eq!(sf.total(), stream.len() as u64);
    }

    /// SF-sketch: cutting a view commutes with merging (exactly), and the
    /// merged sketch keeps both one-sided bounds on the concatenation.
    #[test]
    fn sf_merge_commutes_with_views_and_keeps_bound(
        a in vec(0u16..256, 0..1000),
        b in vec(0u16..256, 0..1000),
    ) {
        let mut sa = SfSketch::new(256, 32, 4, 5).unwrap();
        let mut sb = SfSketch::new(256, 32, 4, 5).unwrap();
        for x in &a { sa.update(x); }
        for x in &b { sb.update(x); }
        let mut view_merge = sa.query_view();
        view_merge.merge(&sb.query_view()).unwrap();
        sa.merge(&sb).unwrap();
        prop_assert_eq!(sa.query_view(), view_merge);
        let mut exact = std::collections::HashMap::new();
        for x in a.iter().chain(&b) {
            *exact.entry(*x).or_insert(0u64) += 1;
        }
        for (item, &truth) in &exact {
            prop_assert!(FrequencyEstimator::estimate(&sa, item) >= truth);
            prop_assert!(sa.slim_estimate(item) >= truth);
        }
    }

    /// SF-sketch: the checkpoint layout round-trips the full state, and
    /// the restored sketch stays fat/slim-consistent with the original on
    /// every query.
    #[test]
    fn sf_state_round_trip_is_consistent(stream in vec(0u16..256, 0..1500)) {
        use sketches::core::{ByteReader, ByteWriter};
        let mut sf = SfSketch::new(128, 16, 3, 9).unwrap();
        for x in &stream {
            sf.update(x);
        }
        let mut w = ByteWriter::new();
        sf.write_state(&mut w);
        let bytes = w.into_bytes();
        let restored = SfSketch::read_state(&mut ByteReader::new(&bytes)).unwrap();
        prop_assert_eq!(&restored, &sf);
        prop_assert_eq!(restored.query_view(), sf.query_view());
        for x in 0u16..256 {
            prop_assert_eq!(
                FrequencyEstimator::estimate(&restored, &x),
                FrequencyEstimator::estimate(&sf, &x)
            );
            prop_assert_eq!(restored.slim_estimate(&x), sf.slim_estimate(&x));
        }
    }
}
