//! Property tests for the quantile summaries and similarity sketches:
//! order statistics stay inside the data, merge commutes, signatures
//! behave like the set operations they summarize.

use proptest::collection::vec;
use proptest::prelude::*;
use sketches::core::CardinalityEstimator;
use sketches::core::{MergeSketch, QuantileSketch, Update};
use sketches::lsh::MinHasher;
use sketches::prelude::{GreenwaldKhanna, KmvSketch, QDigest, TDigest};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// GK quantile answers always fall within [min, max] and the rank of
    /// the answer is within eps*n + 1 of the target.
    #[test]
    fn gk_rank_error_bounded(values in vec(-1e9f64..1e9, 2..2000)) {
        let eps = 0.05;
        let mut gk = GreenwaldKhanna::new(eps).unwrap();
        for v in &values {
            gk.update(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as f64;
        for qi in 0..=4 {
            let q = f64::from(qi) / 4.0;
            let est = gk.quantile(q).unwrap();
            prop_assert!(est >= sorted[0] && est <= sorted[sorted.len() - 1]);
            let est_rank = sorted.partition_point(|&x| x <= est) as f64;
            let target = (q * n).ceil().max(1.0);
            prop_assert!(
                (est_rank - target).abs() <= eps * n + 1.0,
                "q={}: rank {} vs target {}", q, est_rank, target
            );
        }
    }

    /// t-digest total weight is exact and quantiles stay inside the data.
    #[test]
    fn tdigest_weight_conserved(values in vec(-1e6f64..1e6, 1..3000)) {
        let mut td = TDigest::new(100.0).unwrap();
        for v in &values {
            td.update(v);
        }
        prop_assert_eq!(td.count(), values.len() as u64);
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let est = td.quantile(q).unwrap();
            prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "q={} est {} outside [{}, {}]", q, est, lo, hi);
        }
        // Centroid weights sum to n.
        let mut td2 = td.clone();
        let total: f64 = td2.centroids().iter().map(|c| c.weight).sum();
        prop_assert!((total - values.len() as f64).abs() < 1e-6);
    }

    /// q-digest counts are conserved under compression and merge.
    #[test]
    fn qdigest_mass_conserved(values in vec(0u64..1024, 1..1500)) {
        let mut a = QDigest::new(10, 16).unwrap();
        let mut b = QDigest::new(10, 16).unwrap();
        for (i, v) in values.iter().enumerate() {
            if i % 2 == 0 {
                a.update(*v, 1).unwrap();
            } else {
                b.update(*v, 1).unwrap();
            }
        }
        a.compress();
        a.merge(&b).unwrap();
        prop_assert_eq!(a.count(), values.len() as u64);
        // Quantile answers live in the domain.
        let med = a.quantile(0.5).unwrap();
        prop_assert!(med < 1024);
    }

    /// KMV merge equals the union-stream sketch, bit for bit.
    #[test]
    fn kmv_merge_is_union(a in vec(any::<u64>(), 0..800), b in vec(any::<u64>(), 0..800)) {
        let mut sa = KmvSketch::new(64, 9).unwrap();
        let mut sb = KmvSketch::new(64, 9).unwrap();
        let mut su = KmvSketch::new(64, 9).unwrap();
        for x in &a { sa.update(x); su.update(x); }
        for x in &b { sb.update(x); su.update(x); }
        sa.merge(&sb).unwrap();
        prop_assert_eq!(sa, su);
    }

    /// KMV is exact below k.
    #[test]
    fn kmv_exact_below_k(items in prop::collection::hash_set(any::<u64>(), 0..60)) {
        let mut s = KmvSketch::new(64, 10).unwrap();
        for x in &items {
            s.update(x);
            s.update(x); // duplicates free
        }
        prop_assert_eq!(s.estimate(), items.len() as f64);
    }

    /// MinHash signature agreement is symmetric and equals 1 iff the
    /// hashed sets are equal (on the tested universes).
    #[test]
    fn minhash_symmetry(a in prop::collection::hash_set(0u32..500, 1..100),
                        b in prop::collection::hash_set(0u32..500, 1..100)) {
        let mut ma = MinHasher::new(64, 4).unwrap();
        let mut mb = MinHasher::new(64, 4).unwrap();
        for x in &a { ma.update(x); }
        for x in &b { mb.update(x); }
        let ab = ma.jaccard(&mb).unwrap();
        let ba = mb.jaccard(&ma).unwrap();
        prop_assert_eq!(ab, ba);
        if a == b {
            prop_assert_eq!(ab, 1.0);
        }
        prop_assert!((0.0..=1.0).contains(&ab));
    }

    /// MinHash merge computes the union signature.
    #[test]
    fn minhash_merge_is_union(a in vec(any::<u32>(), 0..300), b in vec(any::<u32>(), 0..300)) {
        let mut ma = MinHasher::new(32, 5).unwrap();
        let mut mb = MinHasher::new(32, 5).unwrap();
        let mut mu = MinHasher::new(32, 5).unwrap();
        for x in &a { ma.update(x); mu.update(x); }
        for x in &b { mb.update(x); mu.update(x); }
        ma.merge(&mb).unwrap();
        prop_assert_eq!(ma.signature(), mu.signature());
    }
}
