//! Serde round-trips for the membership filters (`--features serde`).

#![cfg(feature = "serde")]

use sketches_core::{MembershipTester, MergeSketch, Update};
use sketches_membership::{BlockedBloomFilter, BloomFilter, CountingBloomFilter, CuckooFilter};

#[test]
fn bloom_roundtrip_no_false_negatives() {
    let mut f = BloomFilter::with_capacity(5_000, 0.01, 3).unwrap();
    for i in 0..5_000u64 {
        f.update(&i);
    }
    let back: BloomFilter = serde_json::from_str(&serde_json::to_string(&f).unwrap()).unwrap();
    assert_eq!(back, f);
    for i in 0..5_000u64 {
        assert!(back.contains(&i));
    }
    // Merge compatibility survives.
    let mut merged = back;
    merged.merge(&f).unwrap();
}

#[test]
fn counting_bloom_roundtrip_supports_delete() {
    let mut f = CountingBloomFilter::new(4096, 4, 5).unwrap();
    f.update("keep");
    f.update("drop");
    let mut back: CountingBloomFilter =
        serde_json::from_str(&serde_json::to_string(&f).unwrap()).unwrap();
    back.remove("drop");
    assert!(back.contains("keep"));
    assert!(!back.contains("drop"));
}

#[test]
fn blocked_and_cuckoo_roundtrip() {
    let mut blocked = BlockedBloomFilter::new(64, 6, 7).unwrap();
    let mut cuckoo = CuckooFilter::with_capacity(1_000, 7).unwrap();
    for i in 0..500u64 {
        blocked.update(&i);
        cuckoo.insert(&i).unwrap();
    }
    let b2: BlockedBloomFilter =
        serde_json::from_str(&serde_json::to_string(&blocked).unwrap()).unwrap();
    let c2: CuckooFilter = serde_json::from_str(&serde_json::to_string(&cuckoo).unwrap()).unwrap();
    for i in 0..500u64 {
        assert!(b2.contains(&i));
        assert!(c2.contains(&i));
    }
    assert_eq!(c2.len(), 500);
}
