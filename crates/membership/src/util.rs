//! Shared probing helpers for the filter implementations.

use sketches_hash::mix::{mix64_seeded, murmur_fmix64};

/// Derives the two base hashes for Kirsch–Mitzenmacher double hashing:
/// probe `i` lands at `h1 + i·h2` (with `h2` forced odd so probe sequences
/// cycle through the whole table). One derivation shared by every filter so
/// fixes cannot drift between them.
#[inline]
pub(crate) fn double_hash(hash: u64, seed: u64) -> (u64, u64) {
    let h1 = mix64_seeded(hash, seed);
    let h2 = murmur_fmix64(h1 ^ seed) | 1;
    (h1, h2)
}
