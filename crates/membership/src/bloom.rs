//! The classic Bloom filter (Bloom, CACM 1970) and its partitioned variant.

use std::hash::Hash;

use sketches_core::{
    check_open_unit, Clear, MembershipTester, MergeSketch, SketchError, SketchResult, SpaceUsage,
    Update,
};
use sketches_hash::bits::BitVec;
use sketches_hash::hash_item;
use sketches_hash::mix::fastrange64;

use crate::util::double_hash;

/// Computes the optimal `(bits, hashes)` for `n` keys at false-positive
/// rate `fpp`: `m = −n·ln p / (ln 2)²`, `k = (m/n)·ln 2`.
fn optimal_params(n: usize, fpp: f64) -> (usize, u32) {
    let n = n.max(1) as f64;
    let ln2 = std::f64::consts::LN_2;
    let m = (-n * fpp.ln() / (ln2 * ln2)).ceil().max(64.0) as usize;
    let k = ((m as f64 / n) * ln2).round().clamp(1.0, 30.0) as u32;
    (m, k)
}

/// The classic `k`-hash Bloom filter over a single bit array.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BloomFilter {
    bits: BitVec,
    k: u32,
    seed: u64,
    items: u64,
}

impl BloomFilter {
    /// Creates a filter with an explicit number of bits and hash functions.
    ///
    /// # Errors
    /// Returns an error if `bits < 64` or `k` is outside `1..=30`.
    pub fn new(bits: usize, k: u32, seed: u64) -> SketchResult<Self> {
        if bits < 64 {
            return Err(SketchError::invalid("bits", "need at least 64 bits"));
        }
        sketches_core::check_range("k", k, 1, 30)?;
        Ok(Self {
            bits: BitVec::zeros(bits),
            k,
            seed,
            items: 0,
        })
    }

    /// Creates a filter sized for `expected_items` keys at false-positive
    /// rate `fpp` (e.g. `0.01`).
    ///
    /// # Errors
    /// Returns an error if `fpp` is not in `(0, 1)`.
    pub fn with_capacity(expected_items: usize, fpp: f64, seed: u64) -> SketchResult<Self> {
        check_open_unit("fpp", fpp, 0.0, 1.0)?;
        let (m, k) = optimal_params(expected_items, fpp);
        Self::new(m, k, seed)
    }

    /// Inserts a pre-hashed key.
    pub fn insert_hash(&mut self, hash: u64) {
        let (h1, h2) = double_hash(hash, self.seed);
        let m = self.bits.len() as u64;
        for i in 0..self.k {
            let idx = fastrange64(h1.wrapping_add(u64::from(i).wrapping_mul(h2)), m);
            self.bits.set(idx as usize);
        }
        self.items += 1;
    }

    /// Tests a pre-hashed key.
    #[must_use]
    pub fn contains_hash(&self, hash: u64) -> bool {
        let (h1, h2) = double_hash(hash, self.seed);
        let m = self.bits.len() as u64;
        (0..self.k).all(|i| {
            let idx = fastrange64(h1.wrapping_add(u64::from(i).wrapping_mul(h2)), m);
            self.bits.get(idx as usize)
        })
    }

    /// Number of bits `m`.
    #[must_use]
    pub fn num_bits(&self) -> usize {
        self.bits.len()
    }

    /// Number of hash functions `k`.
    #[must_use]
    pub fn num_hashes(&self) -> u32 {
        self.k
    }

    /// Insertions performed (an upper bound on distinct keys).
    #[must_use]
    pub fn items_inserted(&self) -> u64 {
        self.items
    }

    /// Fraction of bits set (the filter's load).
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        self.bits.count_ones() as f64 / self.bits.len() as f64
    }

    /// Theoretical false-positive probability after `n` insertions:
    /// `(1 − e^{−kn/m})^k`.
    #[must_use]
    pub fn theoretical_fpp(&self, n: u64) -> f64 {
        let m = self.bits.len() as f64;
        let k = f64::from(self.k);
        (1.0 - (-k * n as f64 / m).exp()).powf(k)
    }
}

impl<T: Hash + ?Sized> Update<T> for BloomFilter {
    fn update(&mut self, item: &T) {
        self.insert_hash(hash_item(item, 0xB100_F11E));
    }
}

impl<T: Hash + ?Sized> MembershipTester<T> for BloomFilter {
    fn contains(&self, item: &T) -> bool {
        self.contains_hash(hash_item(item, 0xB100_F11E))
    }
}

impl Clear for BloomFilter {
    fn clear(&mut self) {
        self.bits.clear();
        self.items = 0;
    }
}

impl SpaceUsage for BloomFilter {
    fn space_bytes(&self) -> usize {
        self.bits.space_bytes()
    }
}

impl MergeSketch for BloomFilter {
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.bits.len() != other.bits.len() || self.k != other.k {
            return Err(SketchError::incompatible("shape differs"));
        }
        if self.seed != other.seed {
            return Err(SketchError::incompatible("seeds differ"));
        }
        self.bits.union_with(&other.bits);
        self.items += other.items;
        Ok(())
    }
}

/// A partitioned Bloom filter: the bit array is split into `k` equal
/// partitions and each hash function sets one bit in its own partition.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PartitionedBloomFilter {
    bits: BitVec,
    k: u32,
    partition_bits: usize,
    seed: u64,
}

impl PartitionedBloomFilter {
    /// Creates a filter with `k` partitions of `partition_bits` bits each.
    ///
    /// # Errors
    /// Returns an error if `partition_bits < 8` or `k` outside `1..=30`.
    pub fn new(partition_bits: usize, k: u32, seed: u64) -> SketchResult<Self> {
        if partition_bits < 8 {
            return Err(SketchError::invalid(
                "partition_bits",
                "need at least 8 bits per partition",
            ));
        }
        sketches_core::check_range("k", k, 1, 30)?;
        Ok(Self {
            bits: BitVec::zeros(partition_bits * k as usize),
            k,
            partition_bits,
            seed,
        })
    }

    /// Inserts a pre-hashed key.
    pub fn insert_hash(&mut self, hash: u64) {
        let (h1, h2) = double_hash(hash, self.seed);
        for i in 0..self.k {
            let off = fastrange64(
                h1.wrapping_add(u64::from(i).wrapping_mul(h2)),
                self.partition_bits as u64,
            ) as usize;
            self.bits.set(i as usize * self.partition_bits + off);
        }
    }

    /// Tests a pre-hashed key.
    #[must_use]
    pub fn contains_hash(&self, hash: u64) -> bool {
        let (h1, h2) = double_hash(hash, self.seed);
        (0..self.k).all(|i| {
            let off = fastrange64(
                h1.wrapping_add(u64::from(i).wrapping_mul(h2)),
                self.partition_bits as u64,
            ) as usize;
            self.bits.get(i as usize * self.partition_bits + off)
        })
    }

    /// Total bits across all partitions.
    #[must_use]
    pub fn num_bits(&self) -> usize {
        self.bits.len()
    }
}

impl<T: Hash + ?Sized> Update<T> for PartitionedBloomFilter {
    fn update(&mut self, item: &T) {
        self.insert_hash(hash_item(item, 0xB100_F11E));
    }
}

impl<T: Hash + ?Sized> MembershipTester<T> for PartitionedBloomFilter {
    fn contains(&self, item: &T) -> bool {
        self.contains_hash(hash_item(item, 0xB100_F11E))
    }
}

impl Clear for PartitionedBloomFilter {
    fn clear(&mut self) {
        self.bits.clear();
    }
}

impl SpaceUsage for PartitionedBloomFilter {
    fn space_bytes(&self) -> usize {
        self.bits.space_bytes()
    }
}

impl MergeSketch for PartitionedBloomFilter {
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.partition_bits != other.partition_bits || self.k != other.k {
            return Err(SketchError::incompatible("shape differs"));
        }
        if self.seed != other.seed {
            return Err(SketchError::incompatible("seeds differ"));
        }
        self.bits.union_with(&other.bits);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_params_match_formulas() {
        let (m, k) = optimal_params(1000, 0.01);
        // m ≈ 9585, k ≈ 7.
        assert!((9000..10500).contains(&m), "m={m}");
        assert_eq!(k, 7);
        let (_, k) = optimal_params(1000, 0.001);
        assert_eq!(k, 10);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(BloomFilter::new(32, 3, 0).is_err());
        assert!(BloomFilter::new(64, 0, 0).is_err());
        assert!(BloomFilter::new(64, 31, 0).is_err());
        assert!(BloomFilter::with_capacity(100, 0.0, 0).is_err());
        assert!(BloomFilter::with_capacity(100, 1.0, 0).is_err());
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_capacity(5_000, 0.01, 1).unwrap();
        for i in 0..5_000u64 {
            f.update(&i);
        }
        for i in 0..5_000u64 {
            assert!(f.contains(&i), "false negative for {i}");
        }
    }

    #[test]
    fn measured_fpp_matches_theory() {
        let n = 10_000u64;
        let mut f = BloomFilter::with_capacity(n as usize, 0.01, 2).unwrap();
        for i in 0..n {
            f.update(&i);
        }
        let trials = 100_000u64;
        let fps = (n..n + trials).filter(|i| f.contains(i)).count();
        let measured = fps as f64 / trials as f64;
        let theory = f.theoretical_fpp(n);
        assert!(
            (measured - theory).abs() < 0.01,
            "measured {measured:.4} vs theory {theory:.4}"
        );
        assert!(measured < 0.02, "fpp {measured} too high for 1% target");
    }

    #[test]
    fn fill_ratio_near_half_at_design_load() {
        // At the design point the optimal filter is ~50% full.
        let n = 20_000;
        let mut f = BloomFilter::with_capacity(n, 0.01, 3).unwrap();
        for i in 0..n as u64 {
            f.update(&i);
        }
        let fill = f.fill_ratio();
        assert!((fill - 0.5).abs() < 0.03, "fill {fill}");
    }

    #[test]
    fn merge_equals_union_stream() {
        let mut a = BloomFilter::new(1 << 14, 5, 4).unwrap();
        let mut b = BloomFilter::new(1 << 14, 5, 4).unwrap();
        let mut u = BloomFilter::new(1 << 14, 5, 4).unwrap();
        for i in 0..500u64 {
            a.update(&i);
            u.update(&i);
        }
        for i in 500..1000u64 {
            b.update(&i);
            u.update(&i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, u);
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = BloomFilter::new(128, 3, 0).unwrap();
        assert!(a.merge(&BloomFilter::new(256, 3, 0).unwrap()).is_err());
        assert!(a.merge(&BloomFilter::new(128, 4, 0).unwrap()).is_err());
        assert!(a.merge(&BloomFilter::new(128, 3, 1).unwrap()).is_err());
    }

    #[test]
    fn clear_resets() {
        let mut f = BloomFilter::new(128, 2, 0).unwrap();
        f.update("x");
        assert!(f.contains("x"));
        f.clear();
        assert!(!f.contains("x"));
        assert_eq!(f.items_inserted(), 0);
    }

    #[test]
    fn partitioned_no_false_negatives() {
        let mut f = PartitionedBloomFilter::new(2048, 7, 5).unwrap();
        for i in 0..1_000u64 {
            f.update(&i);
        }
        for i in 0..1_000u64 {
            assert!(f.contains(&i));
        }
    }

    #[test]
    fn partitioned_fpp_reasonable() {
        // Same total bits as a classic filter; FPR should be in the same
        // ballpark (slightly worse).
        let n = 1_000u64;
        let mut f = PartitionedBloomFilter::new(1370, 7, 6).unwrap(); // ~9590 bits
        for i in 0..n {
            f.update(&i);
        }
        let trials = 50_000u64;
        let fps = (n..n + trials).filter(|i| f.contains(i)).count();
        let measured = fps as f64 / trials as f64;
        assert!(measured < 0.03, "partitioned fpp {measured}");
    }

    #[test]
    fn partitioned_merge_matches_union() {
        let mut a = PartitionedBloomFilter::new(512, 4, 7).unwrap();
        let mut b = PartitionedBloomFilter::new(512, 4, 7).unwrap();
        a.update(&1u32);
        b.update(&2u32);
        a.merge(&b).unwrap();
        assert!(a.contains(&1u32) && a.contains(&2u32));
        assert!(a
            .merge(&PartitionedBloomFilter::new(256, 4, 7).unwrap())
            .is_err());
    }

    #[test]
    fn space_reporting() {
        let f = BloomFilter::new(1 << 13, 5, 0).unwrap();
        assert_eq!(f.space_bytes(), 1024);
    }
}
