//! The counting Bloom filter (Fan, Cao, Almeida & Broder, 1998).
//!
//! Replaces each bit with a small counter so that deletions become possible:
//! insert increments `k` counters, delete decrements them, and membership
//! asks whether all `k` are nonzero. Counters saturate at 255 and, once
//! saturated, are never decremented (the standard safety rule: decrementing
//! a saturated counter could create false negatives).

use std::hash::Hash;

use sketches_core::{
    Clear, MembershipTester, MergeSketch, SketchError, SketchResult, SpaceUsage, Update,
};
use sketches_hash::hash_item;
use sketches_hash::mix::fastrange64;

use crate::util::double_hash;

/// A counting Bloom filter with 8-bit saturating counters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CountingBloomFilter {
    counters: Vec<u8>,
    k: u32,
    seed: u64,
}

impl CountingBloomFilter {
    /// Creates a filter with `slots` counters and `k` hash functions.
    ///
    /// # Errors
    /// Returns an error if `slots < 64` or `k` outside `1..=30`.
    pub fn new(slots: usize, k: u32, seed: u64) -> SketchResult<Self> {
        if slots < 64 {
            return Err(SketchError::invalid("slots", "need at least 64 counters"));
        }
        sketches_core::check_range("k", k, 1, 30)?;
        Ok(Self {
            counters: vec![0u8; slots],
            k,
            seed,
        })
    }

    #[inline]
    fn probe(&self, hash: u64, i: u32) -> usize {
        let (h1, h2) = double_hash(hash, self.seed);
        fastrange64(
            h1.wrapping_add(u64::from(i).wrapping_mul(h2)),
            self.counters.len() as u64,
        ) as usize
    }

    /// Inserts a pre-hashed key.
    pub fn insert_hash(&mut self, hash: u64) {
        for i in 0..self.k {
            let idx = self.probe(hash, i);
            self.counters[idx] = self.counters[idx].saturating_add(1);
        }
    }

    /// Removes one occurrence of a pre-hashed key.
    ///
    /// Only call for keys previously inserted; removing a never-inserted
    /// key can introduce false negatives for other keys. Saturated
    /// counters are left untouched.
    pub fn remove_hash(&mut self, hash: u64) {
        for i in 0..self.k {
            let idx = self.probe(hash, i);
            let c = self.counters[idx];
            if c > 0 && c < u8::MAX {
                self.counters[idx] = c - 1;
            }
        }
    }

    /// Tests a pre-hashed key.
    #[must_use]
    pub fn contains_hash(&self, hash: u64) -> bool {
        (0..self.k).all(|i| self.counters[self.probe(hash, i)] > 0)
    }

    /// Removes one occurrence of `item` (see [`Self::remove_hash`]).
    pub fn remove<T: Hash + ?Sized>(&mut self, item: &T) {
        self.remove_hash(hash_item(item, 0xB100_F11E));
    }

    /// Number of counter slots.
    #[must_use]
    pub fn num_slots(&self) -> usize {
        self.counters.len()
    }

    /// Number of saturated (255) counters; deletions near saturation are
    /// unsafe, so production deployments monitor this.
    #[must_use]
    pub fn saturated_counters(&self) -> usize {
        self.counters.iter().filter(|&&c| c == u8::MAX).count()
    }
}

impl<T: Hash + ?Sized> Update<T> for CountingBloomFilter {
    fn update(&mut self, item: &T) {
        self.insert_hash(hash_item(item, 0xB100_F11E));
    }
}

impl<T: Hash + ?Sized> MembershipTester<T> for CountingBloomFilter {
    fn contains(&self, item: &T) -> bool {
        self.contains_hash(hash_item(item, 0xB100_F11E))
    }
}

impl Clear for CountingBloomFilter {
    fn clear(&mut self) {
        self.counters.fill(0);
    }
}

impl SpaceUsage for CountingBloomFilter {
    fn space_bytes(&self) -> usize {
        self.counters.len()
    }
}

impl MergeSketch for CountingBloomFilter {
    /// Merging adds counters slot-wise (saturating), matching the result of
    /// inserting both substreams into one filter.
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.counters.len() != other.counters.len() || self.k != other.k {
            return Err(SketchError::incompatible("shape differs"));
        }
        if self.seed != other.seed {
            return Err(SketchError::incompatible("seeds differ"));
        }
        for (a, &b) in self.counters.iter_mut().zip(&other.counters) {
            *a = a.saturating_add(b);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(CountingBloomFilter::new(32, 3, 0).is_err());
        assert!(CountingBloomFilter::new(64, 0, 0).is_err());
    }

    #[test]
    fn insert_then_contains() {
        let mut f = CountingBloomFilter::new(4096, 4, 1).unwrap();
        for i in 0..500u64 {
            f.update(&i);
        }
        for i in 0..500u64 {
            assert!(f.contains(&i));
        }
    }

    #[test]
    fn delete_removes_membership() {
        let mut f = CountingBloomFilter::new(8192, 4, 2).unwrap();
        for i in 0..200u64 {
            f.update(&i);
        }
        for i in 0..100u64 {
            f.remove(&i);
        }
        // Removed keys should (almost always) be gone...
        let still: usize = (0..100u64).filter(|i| f.contains(i)).count();
        assert!(still < 5, "{still} deleted keys still present");
        // ...and remaining keys must all still be present (no false negatives).
        for i in 100..200u64 {
            assert!(f.contains(&i), "false negative after deletes for {i}");
        }
    }

    #[test]
    fn multiset_semantics() {
        let mut f = CountingBloomFilter::new(1024, 3, 3).unwrap();
        f.update("x");
        f.update("x");
        f.remove("x");
        assert!(f.contains("x"), "one copy should survive");
        f.remove("x");
        assert!(!f.contains("x"));
    }

    #[test]
    fn saturation_is_sticky() {
        let mut f = CountingBloomFilter::new(64, 1, 4).unwrap();
        for _ in 0..300 {
            f.update("hot");
        }
        assert!(f.saturated_counters() >= 1);
        // Decrements skip saturated counters, so the key stays present.
        for _ in 0..300 {
            f.remove("hot");
        }
        assert!(
            f.contains("hot"),
            "saturated counter must not be decremented"
        );
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = CountingBloomFilter::new(2048, 3, 5).unwrap();
        let mut b = CountingBloomFilter::new(2048, 3, 5).unwrap();
        a.update("only-a");
        b.update("only-b");
        b.update("shared");
        a.merge(&b).unwrap();
        assert!(a.contains("only-a"));
        assert!(a.contains("only-b"));
        assert!(a.contains("shared"));
        // After merge, removing "shared" once removes it (count 1).
        a.remove("shared");
        assert!(!a.contains("shared"));
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = CountingBloomFilter::new(128, 3, 0).unwrap();
        assert!(a
            .merge(&CountingBloomFilter::new(256, 3, 0).unwrap())
            .is_err());
        assert!(a
            .merge(&CountingBloomFilter::new(128, 2, 0).unwrap())
            .is_err());
        assert!(a
            .merge(&CountingBloomFilter::new(128, 3, 9).unwrap())
            .is_err());
    }

    #[test]
    fn clear_and_space() {
        let mut f = CountingBloomFilter::new(256, 2, 0).unwrap();
        f.update(&1u8);
        f.clear();
        assert!(!f.contains(&1u8));
        assert_eq!(f.space_bytes(), 256);
    }
}
