//! The blocked Bloom filter (Putze, Sanders & Singler, 2009).
//!
//! Each key's `k` probe bits are confined to a single 64-byte block (one
//! cache line), so every operation costs exactly one memory access instead
//! of `k`. The price is a slightly higher false-positive rate because keys
//! mapped to the same block interfere more — the classic
//! throughput-vs-accuracy engineering trade-off the survey's "pushing out
//! code" section is about.

use std::hash::Hash;

use sketches_core::{
    Clear, MembershipTester, MergeSketch, SketchError, SketchResult, SpaceUsage, Update,
};
use sketches_hash::hash_item;
use sketches_hash::mix::fastrange64;

use crate::util::double_hash;

/// Words per block: 8 × u64 = 512 bits = one 64-byte cache line.
const WORDS_PER_BLOCK: usize = 8;

/// A cache-line-blocked Bloom filter.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockedBloomFilter {
    words: Vec<u64>,
    blocks: usize,
    k: u32,
    seed: u64,
}

impl BlockedBloomFilter {
    /// Creates a filter with `blocks` 512-bit blocks and `k` probes per key.
    ///
    /// # Errors
    /// Returns an error if `blocks == 0` or `k` outside `1..=16`.
    pub fn new(blocks: usize, k: u32, seed: u64) -> SketchResult<Self> {
        if blocks == 0 {
            return Err(SketchError::invalid("blocks", "need at least one block"));
        }
        sketches_core::check_range("k", k, 1, 16)?;
        Ok(Self {
            words: vec![0u64; blocks * WORDS_PER_BLOCK],
            blocks,
            k,
            seed,
        })
    }

    /// Sizes the filter for `expected_items` at roughly `bits_per_key` bits
    /// per key (rounding the block count up).
    ///
    /// # Errors
    /// Returns an error if parameters produce zero blocks or invalid `k`.
    pub fn with_capacity(
        expected_items: usize,
        bits_per_key: usize,
        seed: u64,
    ) -> SketchResult<Self> {
        let total_bits = expected_items.max(1) * bits_per_key.max(1);
        let blocks = total_bits.div_ceil(512).max(1);
        // k ≈ bits_per_key · ln2, the classic optimum.
        let k = ((bits_per_key as f64) * std::f64::consts::LN_2)
            .round()
            .clamp(1.0, 16.0) as u32;
        Self::new(blocks, k, seed)
    }

    /// Returns (block index, probe bases): block from `h1`, within-block
    /// probes from the shared double-hash derivation (probe index starts
    /// at 1 because `h1` itself already chose the block).
    #[inline]
    fn locate(&self, hash: u64) -> (usize, u64, u64) {
        let (h1, h2) = double_hash(hash, self.seed);
        let block = fastrange64(h1, self.blocks as u64) as usize;
        (block, h1, h2)
    }

    /// Inserts a pre-hashed key.
    pub fn insert_hash(&mut self, hash: u64) {
        let (block, h1, h2) = self.locate(hash);
        let base = block * WORDS_PER_BLOCK;
        for i in 0..self.k {
            let bit = (h1.wrapping_add(u64::from(i + 1).wrapping_mul(h2)) % 512) as usize;
            self.words[base + bit / 64] |= 1u64 << (bit % 64);
        }
    }

    /// Tests a pre-hashed key.
    #[must_use]
    pub fn contains_hash(&self, hash: u64) -> bool {
        let (block, h1, h2) = self.locate(hash);
        let base = block * WORDS_PER_BLOCK;
        (0..self.k).all(|i| {
            let bit = (h1.wrapping_add(u64::from(i + 1).wrapping_mul(h2)) % 512) as usize;
            self.words[base + bit / 64] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Number of 512-bit blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks
    }
}

impl<T: Hash + ?Sized> Update<T> for BlockedBloomFilter {
    fn update(&mut self, item: &T) {
        self.insert_hash(hash_item(item, 0xB10C_B100));
    }
}

impl<T: Hash + ?Sized> MembershipTester<T> for BlockedBloomFilter {
    fn contains(&self, item: &T) -> bool {
        self.contains_hash(hash_item(item, 0xB10C_B100))
    }
}

impl Clear for BlockedBloomFilter {
    fn clear(&mut self) {
        self.words.fill(0);
    }
}

impl SpaceUsage for BlockedBloomFilter {
    fn space_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }
}

impl MergeSketch for BlockedBloomFilter {
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.blocks != other.blocks || self.k != other.k {
            return Err(SketchError::incompatible("shape differs"));
        }
        if self.seed != other.seed {
            return Err(SketchError::incompatible("seeds differ"));
        }
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(BlockedBloomFilter::new(0, 4, 0).is_err());
        assert!(BlockedBloomFilter::new(4, 0, 0).is_err());
        assert!(BlockedBloomFilter::new(4, 17, 0).is_err());
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BlockedBloomFilter::with_capacity(10_000, 10, 1).unwrap();
        for i in 0..10_000u64 {
            f.update(&i);
        }
        for i in 0..10_000u64 {
            assert!(f.contains(&i), "false negative {i}");
        }
    }

    #[test]
    fn fpp_reasonable_at_ten_bits_per_key() {
        let n = 20_000u64;
        let mut f = BlockedBloomFilter::with_capacity(n as usize, 10, 2).unwrap();
        for i in 0..n {
            f.update(&i);
        }
        let trials = 100_000u64;
        let fps = (n..n + trials).filter(|i| f.contains(i)).count();
        let measured = fps as f64 / trials as f64;
        // Classic filter would be ~0.9%; blocked pays a modest penalty.
        assert!(measured < 0.03, "blocked fpp {measured}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = BlockedBloomFilter::new(64, 6, 3).unwrap();
        let mut b = BlockedBloomFilter::new(64, 6, 3).unwrap();
        let mut u = BlockedBloomFilter::new(64, 6, 3).unwrap();
        for i in 0..200u64 {
            a.update(&i);
            u.update(&i);
        }
        for i in 200..400u64 {
            b.update(&i);
            u.update(&i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, u);
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = BlockedBloomFilter::new(8, 4, 0).unwrap();
        assert!(a
            .merge(&BlockedBloomFilter::new(16, 4, 0).unwrap())
            .is_err());
        assert!(a.merge(&BlockedBloomFilter::new(8, 5, 0).unwrap()).is_err());
        assert!(a.merge(&BlockedBloomFilter::new(8, 4, 7).unwrap()).is_err());
    }

    #[test]
    fn clear_and_space() {
        let mut f = BlockedBloomFilter::new(16, 4, 0).unwrap();
        f.update("k");
        f.clear();
        assert!(!f.contains("k"));
        assert_eq!(f.space_bytes(), 16 * 64);
    }
}
