//! The Cuckoo filter (Fan, Andersen, Kaminsky & Mitzenmacher, CoNEXT 2014).
//!
//! Stores a short *fingerprint* of each key in a bucketized cuckoo hash
//! table. Each key has two candidate buckets related by
//! `i₂ = i₁ ⊕ hash(fingerprint)` (partial-key cuckoo hashing), so an entry
//! can be relocated knowing only its fingerprint. Compared to Bloom
//! filters, cuckoo filters support deletion and beat Bloom space below
//! ≈3% false-positive rates — the modern comparator in experiment E7.

use std::hash::Hash;

use sketches_core::{Clear, MembershipTester, SketchError, SketchResult, SpaceUsage, Update};
use sketches_hash::hash_item;
use sketches_hash::mix::{mix64, mix64_seeded};
use sketches_hash::rng::{Rng64, SplitMix64};

/// Slots per bucket (the paper's recommended b = 4).
const BUCKET_SLOTS: usize = 4;
/// Maximum displacement chain length before declaring the filter full.
const MAX_KICKS: usize = 500;

/// A cuckoo filter with 16-bit fingerprints and 4-slot buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CuckooFilter {
    /// Flattened buckets; 0 encodes an empty slot.
    slots: Vec<u16>,
    /// Number of buckets (power of two so XOR addressing stays in range).
    buckets: usize,
    seed: u64,
    len: u64,
    rng: SplitMix64,
}

impl CuckooFilter {
    /// Creates a filter with at least `capacity` slots; the bucket count is
    /// rounded up to a power of two and sized at 95% target load.
    ///
    /// # Errors
    /// Returns an error if `capacity == 0`.
    pub fn with_capacity(capacity: usize, seed: u64) -> SketchResult<Self> {
        if capacity == 0 {
            return Err(SketchError::invalid("capacity", "must be positive"));
        }
        let needed = (capacity as f64 / 0.95).ceil() as usize;
        let buckets = needed.div_ceil(BUCKET_SLOTS).next_power_of_two();
        Ok(Self {
            slots: vec![0u16; buckets * BUCKET_SLOTS],
            buckets,
            seed,
            len: 0,
            rng: SplitMix64::new(seed ^ 0xC0C0_0C0C),
        })
    }

    /// Derives the (fingerprint, primary bucket) pair for a hash.
    #[inline]
    fn fingerprint_and_index(&self, hash: u64) -> (u16, usize) {
        let h = mix64_seeded(hash, self.seed);
        // Fingerprint from the high bits, never zero (zero = empty slot).
        let fp = ((h >> 48) as u16).max(1);
        let idx = (h as usize) & (self.buckets - 1);
        (fp, idx)
    }

    /// The alternate bucket for a fingerprint (partial-key cuckoo hashing).
    #[inline]
    fn alt_index(&self, idx: usize, fp: u16) -> usize {
        (idx ^ (mix64(u64::from(fp)) as usize)) & (self.buckets - 1)
    }

    fn bucket(&self, idx: usize) -> &[u16] {
        &self.slots[idx * BUCKET_SLOTS..(idx + 1) * BUCKET_SLOTS]
    }

    fn bucket_mut(&mut self, idx: usize) -> &mut [u16] {
        &mut self.slots[idx * BUCKET_SLOTS..(idx + 1) * BUCKET_SLOTS]
    }

    fn try_place(&mut self, idx: usize, fp: u16) -> bool {
        for slot in self.bucket_mut(idx) {
            if *slot == 0 {
                *slot = fp;
                return true;
            }
        }
        false
    }

    /// Inserts a pre-hashed key.
    ///
    /// # Errors
    /// Returns [`SketchError::CapacityExceeded`] when the displacement
    /// chain exceeds the kick limit (the filter is effectively full).
    pub fn insert_hash(&mut self, hash: u64) -> SketchResult<()> {
        let (mut fp, i1) = self.fingerprint_and_index(hash);
        let i2 = self.alt_index(i1, fp);
        if self.try_place(i1, fp) || self.try_place(i2, fp) {
            self.len += 1;
            return Ok(());
        }
        // Evict: random walk between the two candidate buckets.
        let mut idx = if self.rng.next_u64() & 1 == 0 { i1 } else { i2 };
        for _ in 0..MAX_KICKS {
            let victim_slot = self.rng.gen_range(BUCKET_SLOTS as u64) as usize;
            let bucket = self.bucket_mut(idx);
            std::mem::swap(&mut fp, &mut bucket[victim_slot]);
            idx = self.alt_index(idx, fp);
            if self.try_place(idx, fp) {
                self.len += 1;
                return Ok(());
            }
        }
        Err(SketchError::CapacityExceeded {
            reason: format!("cuckoo filter full after {MAX_KICKS} displacements"),
        })
    }

    /// Inserts `item`.
    ///
    /// # Errors
    /// Returns [`SketchError::CapacityExceeded`] when full; prefer sizing
    /// via [`CuckooFilter::with_capacity`] with headroom.
    pub fn insert<T: Hash + ?Sized>(&mut self, item: &T) -> SketchResult<()> {
        self.insert_hash(hash_item(item, 0xC0CC_00F1))
    }

    /// Tests a pre-hashed key.
    #[must_use]
    pub fn contains_hash(&self, hash: u64) -> bool {
        let (fp, i1) = self.fingerprint_and_index(hash);
        let i2 = self.alt_index(i1, fp);
        self.bucket(i1).contains(&fp) || self.bucket(i2).contains(&fp)
    }

    /// Removes one copy of a pre-hashed key; returns whether a fingerprint
    /// was found and removed. Only delete keys that were inserted.
    pub fn remove_hash(&mut self, hash: u64) -> bool {
        let (fp, i1) = self.fingerprint_and_index(hash);
        let i2 = self.alt_index(i1, fp);
        for idx in [i1, i2] {
            for slot in self.bucket_mut(idx) {
                if *slot == fp {
                    *slot = 0;
                    self.len -= 1;
                    return true;
                }
            }
        }
        false
    }

    /// Removes one copy of `item` (see [`Self::remove_hash`]).
    pub fn remove<T: Hash + ?Sized>(&mut self, item: &T) -> bool {
        self.remove_hash(hash_item(item, 0xC0CC_00F1))
    }

    /// Number of fingerprints currently stored.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the filter holds no fingerprints.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current load factor.
    #[must_use]
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / (self.buckets * BUCKET_SLOTS) as f64
    }
}

impl<T: Hash + ?Sized> Update<T> for CuckooFilter {
    /// Inserts, silently dropping the item if the filter is full (matching
    /// the lossy semantics of the `Update` trait); use
    /// [`CuckooFilter::insert`] to observe fullness.
    fn update(&mut self, item: &T) {
        let _ = self.insert(item);
    }
}

impl<T: Hash + ?Sized> MembershipTester<T> for CuckooFilter {
    fn contains(&self, item: &T) -> bool {
        self.contains_hash(hash_item(item, 0xC0CC_00F1))
    }
}

impl Clear for CuckooFilter {
    fn clear(&mut self) {
        self.slots.fill(0);
        self.len = 0;
    }
}

impl SpaceUsage for CuckooFilter {
    fn space_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<u16>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_capacity() {
        assert!(CuckooFilter::with_capacity(0, 0).is_err());
    }

    #[test]
    fn insert_contains_roundtrip() {
        let mut f = CuckooFilter::with_capacity(10_000, 1).unwrap();
        for i in 0..10_000u64 {
            f.insert(&i).unwrap();
        }
        for i in 0..10_000u64 {
            assert!(f.contains(&i), "false negative {i}");
        }
        assert_eq!(f.len(), 10_000);
    }

    #[test]
    fn false_positive_rate_low() {
        let n = 50_000u64;
        let mut f = CuckooFilter::with_capacity(n as usize, 2).unwrap();
        for i in 0..n {
            f.insert(&i).unwrap();
        }
        let trials = 100_000u64;
        let fps = (n..n + trials).filter(|i| f.contains(i)).count();
        let measured = fps as f64 / trials as f64;
        // 16-bit fingerprints, 2 buckets × 4 slots → theory ≈ 8/2^16 ≈ 0.00012.
        assert!(measured < 0.001, "cuckoo fpp {measured}");
    }

    #[test]
    fn delete_works_without_false_negatives() {
        let mut f = CuckooFilter::with_capacity(5_000, 3).unwrap();
        for i in 0..2_000u64 {
            f.insert(&i).unwrap();
        }
        for i in 0..1_000u64 {
            assert!(f.remove(&i), "failed to remove {i}");
        }
        for i in 1_000..2_000u64 {
            assert!(f.contains(&i), "false negative after delete {i}");
        }
        let still: usize = (0..1_000u64).filter(|i| f.contains(i)).count();
        assert!(still < 5, "{still} deleted keys still claimed present");
        assert_eq!(f.len(), 1_000);
    }

    #[test]
    fn duplicate_inserts_supported_within_slot_budget() {
        let mut f = CuckooFilter::with_capacity(64, 4).unwrap();
        // 2 candidate buckets × 4 slots = up to 8 copies.
        for _ in 0..8 {
            f.insert("dup").unwrap();
        }
        for _ in 0..8 {
            assert!(f.remove("dup"));
        }
        assert!(!f.contains("dup"));
    }

    #[test]
    fn fills_to_high_load_then_errors() {
        let mut f = CuckooFilter::with_capacity(1000, 5).unwrap();
        let mut inserted = 0u64;
        let mut full = false;
        for i in 0..100_000u64 {
            match f.insert(&i) {
                Ok(()) => inserted += 1,
                Err(SketchError::CapacityExceeded { .. }) => {
                    full = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(full, "filter should eventually fill");
        assert!(
            f.load_factor() > 0.9,
            "cuckoo should reach >90% load, got {:.3}",
            f.load_factor()
        );
        assert_eq!(f.len(), inserted);
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut f = CuckooFilter::with_capacity(100, 6).unwrap();
        assert!(!f.remove("never"));
    }

    #[test]
    fn clear_and_space() {
        let mut f = CuckooFilter::with_capacity(100, 7).unwrap();
        f.insert("a").unwrap();
        f.clear();
        assert!(!f.contains("a"));
        assert!(f.is_empty());
        assert!(f.space_bytes() >= 100 * 2);
    }
}
