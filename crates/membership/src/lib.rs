//! Approximate-membership filters.
//!
//! The Bloom filter (1970) is the survey's canonical "first sketch": a bit
//! array answering *"have I seen this key?"* with no false negatives and a
//! tunable false-positive rate. This crate provides the classic filter and
//! the three engineering descendants a production system reaches for:
//!
//! * [`bloom::BloomFilter`] — the classic `k`-hash filter, with the
//!   double-hashing optimization of Kirsch–Mitzenmacher.
//! * [`bloom::PartitionedBloomFilter`] — one bit per `m/k`-bit partition,
//!   slightly worse FPR but word-parallel friendly and simpler analysis.
//! * [`counting::CountingBloomFilter`] — 8-bit counters instead of bits,
//!   buying deletion support at 8× the space.
//! * [`blocked::BlockedBloomFilter`] — all `k` probes confined to one
//!   64-byte cache line (Putze–Sanders–Singler), trading a little FPR for
//!   one cache miss per op.
//! * [`cuckoo::CuckooFilter`] — fingerprints in a cuckoo hash table (Fan et
//!   al. 2014): deletion support *and* better space at low FPR, the modern
//!   comparator benchmarked in experiment E7.
//!
//! # Quick example
//!
//! ```
//! use sketches_membership::bloom::BloomFilter;
//! use sketches_core::{MembershipTester, Update};
//!
//! let mut f = BloomFilter::with_capacity(10_000, 0.01, 42).unwrap();
//! f.update("alice@example.com");
//! assert!(f.contains("alice@example.com")); // no false negatives
//! ```

#![forbid(unsafe_code)]

pub mod blocked;
pub mod bloom;
pub mod counting;
pub mod cuckoo;
pub(crate) mod util;

pub use blocked::BlockedBloomFilter;
pub use bloom::{BloomFilter, PartitionedBloomFilter};
pub use counting::CountingBloomFilter;
pub use cuckoo::CuckooFilter;
