//! Candidate-generation LSH indexes.
//!
//! * [`MinHashIndex`] — the banding construction over MinHash signatures:
//!   `b` bands of `r` rows; two sets become candidates when any band
//!   matches, giving the S-curve `1 − (1 − j^r)^b` (experiment E10).
//! * [`EuclideanLshIndex`] — `L` tables of `k` concatenated p-stable
//!   hashes for approximate near-neighbour search in `ℝ^d`.

use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;

use sketches_core::{SketchError, SketchResult, SpaceUsage, Update};
use sketches_hash::hash_bytes;

use crate::minhash::{MinHashSignature, MinHasher};
use crate::pstable::PStableHasher;

/// A banded index over MinHash signatures; item payloads are `u64` ids.
#[derive(Debug, Clone)]
pub struct MinHashIndex {
    bands: usize,
    rows: usize,
    seed: u64,
    /// One bucket map per band: band-key → item ids.
    tables: Vec<HashMap<u64, Vec<u64>>>,
    items: usize,
}

impl MinHashIndex {
    /// Creates an index with `bands × rows` signature components.
    ///
    /// # Errors
    /// Returns an error if either parameter is zero.
    pub fn new(bands: usize, rows: usize, seed: u64) -> SketchResult<Self> {
        if bands == 0 || rows == 0 {
            return Err(SketchError::invalid("bands/rows", "must be positive"));
        }
        Ok(Self {
            bands,
            rows,
            seed,
            tables: vec![HashMap::new(); bands],
            items: 0,
        })
    }

    /// Builds the signature of a set with the index's parameters.
    pub fn signature_of<T: Hash, I: IntoIterator<Item = T>>(&self, set: I) -> MinHashSignature {
        // lint: panic-ok(bands and rows were validated positive in new(), so the component count is positive)
        let mut mh = MinHasher::new(self.bands * self.rows, self.seed).expect("validated");
        for item in set {
            mh.update(&item);
        }
        mh.signature()
    }

    fn band_key(&self, sig: &MinHashSignature, band: usize) -> u64 {
        let slice = &sig.0[band * self.rows..(band + 1) * self.rows];
        let bytes: Vec<u8> = slice.iter().flat_map(|v| v.to_le_bytes()).collect();
        hash_bytes(&bytes, band as u64)
    }

    /// Inserts an item id with its signature.
    ///
    /// # Errors
    /// Returns an error if the signature has the wrong length.
    pub fn insert(&mut self, id: u64, sig: &MinHashSignature) -> SketchResult<()> {
        if sig.len() != self.bands * self.rows {
            return Err(SketchError::invalid("sig", "signature length mismatch"));
        }
        for band in 0..self.bands {
            let key = self.band_key(sig, band);
            self.tables[band].entry(key).or_default().push(id);
        }
        self.items += 1;
        Ok(())
    }

    /// Returns the candidate ids sharing at least one band with `sig`, as
    /// an ordered set (iteration order is ascending id, never hash order).
    ///
    /// # Errors
    /// Returns an error if the signature has the wrong length.
    pub fn candidates(&self, sig: &MinHashSignature) -> SketchResult<BTreeSet<u64>> {
        if sig.len() != self.bands * self.rows {
            return Err(SketchError::invalid("sig", "signature length mismatch"));
        }
        let mut out = BTreeSet::new();
        for band in 0..self.bands {
            let key = self.band_key(sig, band);
            if let Some(ids) = self.tables[band].get(&key) {
                out.extend(ids.iter().copied());
            }
        }
        Ok(out)
    }

    /// Theoretical probability that a pair with Jaccard `j` becomes a
    /// candidate: `1 − (1 − j^r)^b`.
    #[must_use]
    pub fn candidate_probability(&self, j: f64) -> f64 {
        1.0 - (1.0 - j.powi(self.rows as i32)).powi(self.bands as i32)
    }

    /// Number of inserted items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }
}

impl SpaceUsage for MinHashIndex {
    fn space_bytes(&self) -> usize {
        self.tables
            .iter()
            .map(|t| t.values().map(|v| 8 + v.len() * 8).sum::<usize>())
            .sum()
    }
}

/// An E2LSH index: `L` tables keyed by `k` concatenated p-stable hashes.
#[derive(Debug)]
pub struct EuclideanLshIndex {
    hashers: Vec<Vec<PStableHasher>>,
    tables: Vec<HashMap<Vec<i64>, Vec<u64>>>,
    points: Vec<Vec<f64>>,
    d: usize,
}

impl EuclideanLshIndex {
    /// Creates an index over dimension `d` with `l` tables of `k`
    /// concatenated hashes of width `w`.
    ///
    /// # Errors
    /// Returns an error for zero parameters or a bad width.
    pub fn new(d: usize, l: usize, k: usize, w: f64, seed: u64) -> SketchResult<Self> {
        if l == 0 || k == 0 {
            return Err(SketchError::invalid("l/k", "must be positive"));
        }
        let hashers = (0..l)
            .map(|t| {
                (0..k)
                    .map(|i| PStableHasher::new(d, w, seed ^ ((t * 1000 + i) as u64 + 1)))
                    .collect::<SketchResult<Vec<_>>>()
            })
            .collect::<SketchResult<Vec<_>>>()?;
        Ok(Self {
            hashers,
            tables: vec![HashMap::new(); l],
            points: Vec::new(),
            d,
        })
    }

    fn key(&self, table: usize, v: &[f64]) -> SketchResult<Vec<i64>> {
        self.hashers[table].iter().map(|h| h.hash(v)).collect()
    }

    /// Inserts a point, returning its id.
    ///
    /// # Errors
    /// Returns an error on dimension mismatch.
    pub fn insert(&mut self, v: &[f64]) -> SketchResult<u64> {
        if v.len() != self.d {
            return Err(SketchError::invalid("v", "dimension mismatch"));
        }
        let id = self.points.len() as u64;
        for t in 0..self.tables.len() {
            let key = self.key(t, v)?;
            self.tables[t].entry(key).or_default().push(id);
        }
        self.points.push(v.to_vec());
        Ok(id)
    }

    /// Returns candidate ids colliding with `v` in any table, as an ordered
    /// set (iteration order is ascending id, never hash order).
    ///
    /// # Errors
    /// Returns an error on dimension mismatch.
    pub fn candidates(&self, v: &[f64]) -> SketchResult<BTreeSet<u64>> {
        if v.len() != self.d {
            return Err(SketchError::invalid("v", "dimension mismatch"));
        }
        let mut out = BTreeSet::new();
        for t in 0..self.tables.len() {
            let key = self.key(t, v)?;
            if let Some(ids) = self.tables[t].get(&key) {
                out.extend(ids.iter().copied());
            }
        }
        Ok(out)
    }

    /// Approximate nearest neighbour: the closest candidate (or `None` if
    /// no candidates collide).
    ///
    /// # Errors
    /// Returns an error on dimension mismatch.
    pub fn nearest(&self, v: &[f64]) -> SketchResult<Option<(u64, f64)>> {
        let cands = self.candidates(v)?;
        // Ties in distance break toward the smallest id: a total order, so
        // the reported neighbour is the same in every run.
        Ok(cands
            .into_iter()
            .map(|id| {
                let p = &self.points[id as usize];
                let d2: f64 = p.iter().zip(v).map(|(&a, &b)| (a - b) * (a - b)).sum();
                (id, d2.sqrt())
            })
            .min_by(|a, b| f64::total_cmp(&a.1, &b.1).then_with(|| a.0.cmp(&b.0))))
    }

    /// Stored point by id.
    #[must_use]
    pub fn point(&self, id: u64) -> Option<&[f64]> {
        self.points.get(id as usize).map(Vec::as_slice)
    }

    /// Number of stored points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketches_hash::rng::{Rng64, Xoshiro256PlusPlus};

    #[test]
    fn rejects_bad_params() {
        assert!(MinHashIndex::new(0, 4, 0).is_err());
        assert!(MinHashIndex::new(4, 0, 0).is_err());
        assert!(EuclideanLshIndex::new(4, 0, 2, 1.0, 0).is_err());
    }

    #[test]
    fn similar_sets_become_candidates() {
        let mut idx = MinHashIndex::new(16, 4, 1).unwrap();
        // 20 base sets; set i shares 90% of its elements with set 0 when
        // i < 3, nothing otherwise.
        let mut sigs = Vec::new();
        for i in 0..20u64 {
            let set: Vec<u64> = if i < 3 {
                (0..90).chain(1000 * i..1000 * i + 10).collect()
            } else {
                (10_000 * i..10_000 * i + 100).collect()
            };
            let sig = idx.signature_of(set);
            idx.insert(i, &sig).unwrap();
            sigs.push(sig);
        }
        let cands = idx.candidates(&sigs[0]).unwrap();
        assert!(cands.contains(&0));
        assert!(cands.contains(&1), "highly similar set 1 missed");
        assert!(cands.contains(&2), "highly similar set 2 missed");
        // Unrelated sets should mostly NOT be candidates.
        let noise: usize = (3..20u64).filter(|i| cands.contains(i)).count();
        assert!(noise <= 2, "{noise} dissimilar sets were candidates");
    }

    #[test]
    fn s_curve_probability() {
        let idx = MinHashIndex::new(20, 5, 0).unwrap();
        // r=5, b=20: threshold ≈ (1/b)^(1/r) ≈ 0.55.
        assert!(idx.candidate_probability(0.2) < 0.1);
        assert!(idx.candidate_probability(0.8) > 0.99);
        // Monotone.
        let mut last = 0.0;
        for j in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let p = idx.candidate_probability(j);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn empirical_candidate_rate_matches_s_curve() {
        // Pairs with Jaccard ~0.6 under a 10x4 banding.
        let mut hits = 0u32;
        let trials = 400;
        for t in 0..trials {
            let mut idx = MinHashIndex::new(10, 4, 777 + t as u64).unwrap();
            // Build two sets with Jaccard 0.6: |A∩B|=60, |A∪B|=100.
            let a: Vec<u64> = (0..80).collect();
            let b: Vec<u64> = (20..100).collect(); // inter 60, union 100
            let sa = idx.signature_of(a);
            let sb = idx.signature_of(b);
            idx.insert(1, &sa).unwrap();
            if idx.candidates(&sb).unwrap().contains(&1) {
                hits += 1;
            }
        }
        let emp = f64::from(hits) / f64::from(trials);
        let theory = MinHashIndex::new(10, 4, 0)
            .unwrap()
            .candidate_probability(0.6);
        assert!(
            (emp - theory).abs() < 0.1,
            "empirical {emp:.3} vs S-curve {theory:.3}"
        );
    }

    #[test]
    fn euclidean_index_finds_near_neighbour() {
        let d = 8;
        let mut rng = Xoshiro256PlusPlus::new(5);
        let mut idx = EuclideanLshIndex::new(d, 8, 4, 4.0, 6).unwrap();
        let mut points = Vec::new();
        for _ in 0..200 {
            let p: Vec<f64> = (0..d).map(|_| rng.gauss() * 10.0).collect();
            idx.insert(&p).unwrap();
            points.push(p);
        }
        // Query near point 17.
        let q: Vec<f64> = points[17].iter().map(|&x| x + 0.01).collect();
        let (id, dist) = idx.nearest(&q).unwrap().expect("neighbour found");
        assert_eq!(id, 17);
        assert!(dist < 0.1);
    }

    #[test]
    fn euclidean_index_rejects_bad_dims() {
        let mut idx = EuclideanLshIndex::new(4, 2, 2, 1.0, 0).unwrap();
        assert!(idx.insert(&[1.0, 2.0]).is_err());
        assert!(idx.candidates(&[1.0]).is_err());
    }

    #[test]
    fn far_points_rarely_candidates() {
        let d = 8;
        let mut idx = EuclideanLshIndex::new(d, 4, 6, 1.0, 9).unwrap();
        let origin = vec![0.0; d];
        idx.insert(&origin).unwrap();
        let mut far = vec![0.0; d];
        far[0] = 1000.0;
        assert!(!idx.candidates(&far).unwrap().contains(&0));
    }
}
