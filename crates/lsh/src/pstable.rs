//! p-stable LSH for Euclidean distance (Datar, Immorlica, Indyk &
//! Mirrokni, SoCG 2004) — the "E2LSH" scheme.
//!
//! `h(v) = ⌊(⟨a, v⟩ + b)/w⌋` with `a` standard Gaussian (2-stable) and `b`
//! uniform in `[0, w)`. Nearby points collide with probability decreasing
//! in `‖u − v‖/w`, which the index in [`crate::index`] amplifies by
//! concatenation and repetition.

use sketches_core::{SketchError, SketchResult, SpaceUsage};
use sketches_hash::rng::{Rng64, Xoshiro256PlusPlus};

/// One Gaussian-projection bucket hash.
#[derive(Debug, Clone)]
pub struct PStableHasher {
    a: Vec<f64>,
    b: f64,
    w: f64,
}

impl PStableHasher {
    /// Draws a hash over dimension `d` with bucket width `w > 0`.
    ///
    /// # Errors
    /// Returns an error for `d == 0` or non-positive `w`.
    pub fn new(d: usize, w: f64, seed: u64) -> SketchResult<Self> {
        if d == 0 {
            return Err(SketchError::invalid("d", "must be positive"));
        }
        sketches_core::check_positive_finite("w", w)?;
        let mut rng = Xoshiro256PlusPlus::new(seed ^ 0xE215);
        Ok(Self {
            a: (0..d).map(|_| rng.gauss()).collect(),
            b: rng.next_f64() * w,
            w,
        })
    }

    /// Hashes a vector to its bucket index.
    ///
    /// # Errors
    /// Returns an error on dimension mismatch.
    pub fn hash(&self, v: &[f64]) -> SketchResult<i64> {
        if v.len() != self.a.len() {
            return Err(SketchError::invalid("v", "dimension mismatch"));
        }
        let dot: f64 = self.a.iter().zip(v).map(|(&a, &x)| a * x).sum();
        Ok(((dot + self.b) / self.w).floor() as i64)
    }

    /// The theoretical collision probability for two points at distance
    /// `c`: `p(c) = 1 − 2Φ(−w/c) − (2c/(√(2π)·w))(1 − e^{−w²/(2c²)})`.
    #[must_use]
    pub fn collision_probability(&self, c: f64) -> f64 {
        if c <= 0.0 {
            return 1.0;
        }
        let r = self.w / c;
        let phi_neg = 0.5 * libm_erfc(r / std::f64::consts::SQRT_2);
        1.0 - 2.0 * phi_neg
            - (2.0 / (std::f64::consts::TAU.sqrt() * r)) * (1.0 - (-r * r / 2.0).exp())
    }

    /// Bucket width `w`.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.w
    }
}

/// A reasonable-accuracy complementary error function (Abramowitz &
/// Stegun 7.1.26-style rational approximation), good to ~1e-7 — enough for
/// computing theoretical collision curves in experiments.
#[must_use]
pub fn libm_erfc(x: f64) -> f64 {
    let ax = x.abs();
    let t = 1.0 / (1.0 + 0.5 * ax);
    let y = t
        * (-ax * ax - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        y
    } else {
        2.0 - y
    }
}

impl SpaceUsage for PStableHasher {
    fn space_bytes(&self) -> usize {
        self.a.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(PStableHasher::new(0, 1.0, 0).is_err());
        assert!(PStableHasher::new(4, 0.0, 0).is_err());
        assert!(PStableHasher::new(4, f64::NAN, 0).is_err());
    }

    #[test]
    fn erfc_reference_values() {
        assert!((libm_erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((libm_erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((libm_erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(libm_erfc(5.0) < 1e-10);
    }

    #[test]
    fn close_points_collide_more() {
        let d = 16;
        let mut rng = Xoshiro256PlusPlus::new(1);
        let base: Vec<f64> = (0..d).map(|_| rng.gauss()).collect();
        let perturb = |eps: f64, rng: &mut Xoshiro256PlusPlus| -> Vec<f64> {
            let noise: Vec<f64> = (0..d).map(|_| rng.gauss()).collect();
            let n = noise.iter().map(|x| x * x).sum::<f64>().sqrt();
            base.iter()
                .zip(&noise)
                .map(|(&b, &x)| b + eps * x / n)
                .collect()
        };
        let mut near_coll = 0u32;
        let mut far_coll = 0u32;
        let trials = 2_000;
        for t in 0..trials {
            let h = PStableHasher::new(d, 4.0, 100 + t as u64).unwrap();
            let hb = h.hash(&base).unwrap();
            let near = perturb(1.0, &mut rng);
            let far = perturb(20.0, &mut rng);
            if h.hash(&near).unwrap() == hb {
                near_coll += 1;
            }
            if h.hash(&far).unwrap() == hb {
                far_coll += 1;
            }
        }
        assert!(
            near_coll > 3 * far_coll,
            "near {near_coll} vs far {far_coll}"
        );
    }

    #[test]
    fn empirical_collision_matches_theory() {
        let d = 8;
        let w = 4.0;
        let dist = 2.0;
        let mut rng = Xoshiro256PlusPlus::new(2);
        let mut collisions = 0u32;
        let trials = 4_000;
        for t in 0..trials {
            let h = PStableHasher::new(d, w, 999 + t as u64).unwrap();
            let a: Vec<f64> = (0..d).map(|_| rng.gauss()).collect();
            // Point at exact distance `dist` in a random direction.
            let dir: Vec<f64> = {
                let v: Vec<f64> = (0..d).map(|_| rng.gauss()).collect();
                let n = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                v.into_iter().map(|x| x / n).collect()
            };
            let b: Vec<f64> = a.iter().zip(&dir).map(|(&x, &u)| x + dist * u).collect();
            if h.hash(&a).unwrap() == h.hash(&b).unwrap() {
                collisions += 1;
            }
        }
        let emp = f64::from(collisions) / f64::from(trials);
        let theory = PStableHasher::new(d, w, 0)
            .unwrap()
            .collision_probability(dist);
        assert!(
            (emp - theory).abs() < 0.03,
            "empirical {emp:.3} vs theory {theory:.3}"
        );
    }

    #[test]
    fn collision_probability_monotone() {
        let h = PStableHasher::new(4, 4.0, 3).unwrap();
        let p1 = h.collision_probability(0.5);
        let p2 = h.collision_probability(2.0);
        let p3 = h.collision_probability(8.0);
        assert!(p1 > p2 && p2 > p3, "{p1} {p2} {p3}");
        assert_eq!(h.collision_probability(0.0), 1.0);
    }
}
