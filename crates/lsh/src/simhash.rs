//! SimHash (Charikar, STOC 2002): sign-random-projection signatures for
//! angular/cosine similarity.
//!
//! Bit `i` of the signature is the sign of `⟨rᵢ, x⟩` for a random Gaussian
//! vector `rᵢ`. For two vectors at angle θ, each bit disagrees with
//! probability `θ/π`, so the Hamming distance estimates the angle and
//! `cos(π·hamming/b)` estimates the cosine similarity.

use sketches_core::{SketchError, SketchResult, SpaceUsage};
use sketches_hash::rng::{Rng64, Xoshiro256PlusPlus};

/// A SimHash signature of `b` bits, packed into words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimHashSignature {
    bits: Vec<u64>,
    len: usize,
}

impl SimHashSignature {
    /// Hamming distance to another signature.
    ///
    /// # Errors
    /// Returns an error on length mismatch.
    pub fn hamming(&self, other: &Self) -> SketchResult<u32> {
        if self.len != other.len {
            return Err(SketchError::incompatible("signature lengths differ"));
        }
        Ok(self
            .bits
            .iter()
            .zip(&other.bits)
            .map(|(&a, &b)| (a ^ b).count_ones())
            .sum())
    }

    /// Estimated angle in radians between the original vectors.
    ///
    /// # Errors
    /// Returns an error on length mismatch.
    pub fn angle_estimate(&self, other: &Self) -> SketchResult<f64> {
        let h = self.hamming(other)?;
        Ok(std::f64::consts::PI * f64::from(h) / self.len as f64)
    }

    /// Estimated cosine similarity.
    ///
    /// # Errors
    /// Returns an error on length mismatch.
    pub fn cosine_estimate(&self, other: &Self) -> SketchResult<f64> {
        Ok(self.angle_estimate(other)?.cos())
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the signature has zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `band`-th group of `r` bits, packed into a u64 (for banding
    /// indexes). `r` must be ≤ 64.
    #[must_use]
    pub fn band(&self, band: usize, r: usize) -> u64 {
        let mut out = 0u64;
        for i in 0..r {
            let bit = band * r + i;
            if bit >= self.len {
                break;
            }
            if self.bits[bit / 64] >> (bit % 64) & 1 == 1 {
                out |= 1 << i;
            }
        }
        out
    }
}

/// A SimHash family: `b` random Gaussian hyperplanes over dimension `d`.
#[derive(Debug, Clone)]
pub struct SimHasher {
    planes: Vec<Vec<f64>>,
    d: usize,
}

impl SimHasher {
    /// Draws `b >= 1` hyperplanes over `d >= 1` dimensions.
    ///
    /// # Errors
    /// Returns an error for zero parameters.
    pub fn new(d: usize, b: usize, seed: u64) -> SketchResult<Self> {
        if d == 0 || b == 0 {
            return Err(SketchError::invalid("dimensions", "must be positive"));
        }
        let mut rng = Xoshiro256PlusPlus::new(seed ^ 0x51_3417);
        let planes = (0..b)
            .map(|_| (0..d).map(|_| rng.gauss()).collect())
            .collect();
        Ok(Self { planes, d })
    }

    /// Signs a vector.
    ///
    /// # Errors
    /// Returns an error on dimension mismatch.
    pub fn sign(&self, v: &[f64]) -> SketchResult<SimHashSignature> {
        if v.len() != self.d {
            return Err(SketchError::invalid("v", "dimension mismatch"));
        }
        let b = self.planes.len();
        let mut bits = vec![0u64; b.div_ceil(64)];
        for (i, plane) in self.planes.iter().enumerate() {
            let dot: f64 = plane.iter().zip(v).map(|(&p, &x)| p * x).sum();
            if dot >= 0.0 {
                bits[i / 64] |= 1 << (i % 64);
            }
        }
        Ok(SimHashSignature { bits, len: b })
    }

    /// Signature length in bits.
    #[must_use]
    pub fn num_bits(&self) -> usize {
        self.planes.len()
    }
}

impl SpaceUsage for SimHasher {
    fn space_bytes(&self) -> usize {
        self.planes.len() * self.d * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(v: Vec<f64>) -> Vec<f64> {
        let n = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        v.into_iter().map(|x| x / n).collect()
    }

    #[test]
    fn rejects_bad_params() {
        assert!(SimHasher::new(0, 8, 0).is_err());
        assert!(SimHasher::new(8, 0, 0).is_err());
        let h = SimHasher::new(4, 8, 0).unwrap();
        assert!(h.sign(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn identical_vectors_agree_fully() {
        let h = SimHasher::new(10, 256, 1).unwrap();
        let v: Vec<f64> = (0..10).map(|i| f64::from(i) - 4.5).collect();
        let s1 = h.sign(&v).unwrap();
        let s2 = h.sign(&v).unwrap();
        assert_eq!(s1.hamming(&s2).unwrap(), 0);
        assert_eq!(s1.cosine_estimate(&s2).unwrap(), 1.0);
    }

    #[test]
    fn opposite_vectors_disagree_fully() {
        let h = SimHasher::new(10, 256, 2).unwrap();
        let v: Vec<f64> = (0..10).map(|i| f64::from(i) + 1.0).collect();
        let neg: Vec<f64> = v.iter().map(|x| -x).collect();
        let s1 = h.sign(&v).unwrap();
        let s2 = h.sign(&neg).unwrap();
        assert_eq!(s1.hamming(&s2).unwrap() as usize, s1.len());
        assert!(s1.cosine_estimate(&s2).unwrap() < -0.99);
    }

    #[test]
    fn orthogonal_vectors_disagree_half() {
        let h = SimHasher::new(4, 2048, 3).unwrap();
        let a = h.sign(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        let b = h.sign(&[0.0, 1.0, 0.0, 0.0]).unwrap();
        let frac = f64::from(a.hamming(&b).unwrap()) / 2048.0;
        assert!((frac - 0.5).abs() < 0.05, "disagreement {frac}");
        let cos = a.cosine_estimate(&b).unwrap();
        assert!(cos.abs() < 0.15, "cosine {cos}");
    }

    #[test]
    fn angle_estimates_track_truth() {
        // Vectors at a known angle θ: (1,0) and (cosθ, sinθ).
        let h = SimHasher::new(2, 4096, 4).unwrap();
        for theta_deg in [30.0, 60.0, 120.0] {
            let theta = f64::to_radians(theta_deg);
            let a = h.sign(&[1.0, 0.0]).unwrap();
            let b = h.sign(&[theta.cos(), theta.sin()]).unwrap();
            let est = a.angle_estimate(&b).unwrap();
            assert!(
                (est - theta).abs() < 0.08,
                "θ={theta_deg}°: est {est:.3} vs {theta:.3}"
            );
        }
    }

    #[test]
    fn scale_invariance() {
        let h = SimHasher::new(6, 128, 5).unwrap();
        let v = unit(vec![1.0, -2.0, 3.0, 0.5, -0.1, 2.2]);
        let scaled: Vec<f64> = v.iter().map(|x| x * 42.0).collect();
        assert_eq!(h.sign(&v).unwrap(), h.sign(&scaled).unwrap());
    }

    #[test]
    fn banding_extracts_bits() {
        let h = SimHasher::new(3, 16, 6).unwrap();
        let s = h.sign(&[0.3, -0.7, 1.1]).unwrap();
        // Reconstruct all bits from 4 bands of 4.
        let mut reconstructed = 0u64;
        for band in 0..4 {
            reconstructed |= s.band(band, 4) << (band * 4);
        }
        assert_eq!(reconstructed, s.bits[0] & 0xFFFF);
    }

    #[test]
    fn mismatched_lengths_error() {
        let h1 = SimHasher::new(4, 8, 7).unwrap();
        let h2 = SimHasher::new(4, 16, 7).unwrap();
        let a = h1.sign(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        let b = h2.sign(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        assert!(a.hamming(&b).is_err());
    }
}
