//! Locality-sensitive hashing (Indyk & Motwani, STOC 1998).
//!
//! The survey highlights LSH as the sketch family behind multimedia
//! similarity search at the early internet companies, and notes the same
//! machinery now serves learned vector embeddings. Three classic families
//! and an index:
//!
//! * [`minhash`] — MinHash signatures for Jaccard similarity of sets
//!   (k-hash and one-permutation-with-densification variants).
//! * [`simhash`] — sign-random-projection signatures for cosine/angular
//!   similarity of vectors.
//! * [`pstable`] — p-stable (Gaussian, `p = 2`) LSH for Euclidean
//!   distance, the E2LSH scheme.
//! * [`index`] — banded candidate-generation indexes over MinHash
//!   signatures (the LSH S-curve of experiment E10) and over concatenated
//!   E2LSH keys.

#![forbid(unsafe_code)]

pub mod index;
pub mod minhash;
pub mod pstable;
pub mod simhash;

pub use index::{EuclideanLshIndex, MinHashIndex};
pub use minhash::{MinHashSignature, MinHasher, OnePermMinHasher};
pub use pstable::PStableHasher;
pub use simhash::{SimHashSignature, SimHasher};
