//! MinHash (Broder, 1997): signatures whose agreement rate is exactly the
//! Jaccard similarity of the underlying sets.

use std::hash::Hash;

use sketches_core::{Clear, MergeSketch, SketchError, SketchResult, SpaceUsage, Update};
use sketches_hash::hash_item;
use sketches_hash::mix::mix64_seeded;

/// A MinHash signature: the vector of per-function minima.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHashSignature(pub Vec<u64>);

impl MinHashSignature {
    /// Estimated Jaccard similarity: the fraction of agreeing components.
    ///
    /// # Errors
    /// Returns an error if lengths differ.
    pub fn jaccard(&self, other: &Self) -> SketchResult<f64> {
        if self.0.len() != other.0.len() {
            return Err(SketchError::incompatible("signature lengths differ"));
        }
        let agree = self.0.iter().zip(&other.0).filter(|(a, b)| a == b).count();
        Ok(agree as f64 / self.0.len() as f64)
    }

    /// Signature length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the signature is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// The classic k-hash MinHasher: `k` independent hash functions, each
/// tracking its minimum over the set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHasher {
    mins: Vec<u64>,
    seed: u64,
}

impl MinHasher {
    /// Creates a MinHasher with `k >= 1` hash functions.
    ///
    /// # Errors
    /// Returns an error if `k == 0`.
    pub fn new(k: usize, seed: u64) -> SketchResult<Self> {
        if k == 0 {
            return Err(SketchError::invalid("k", "need k >= 1"));
        }
        Ok(Self {
            mins: vec![u64::MAX; k],
            seed,
        })
    }

    /// Absorbs a pre-hashed element.
    pub fn update_hash(&mut self, hash: u64) {
        for (i, m) in self.mins.iter_mut().enumerate() {
            let h = mix64_seeded(
                hash,
                self.seed ^ (i as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93),
            );
            if h < *m {
                *m = h;
            }
        }
    }

    /// The current signature.
    #[must_use]
    pub fn signature(&self) -> MinHashSignature {
        MinHashSignature(self.mins.clone())
    }

    /// Estimated Jaccard similarity with another MinHasher.
    ///
    /// # Errors
    /// Returns an error on parameter mismatch.
    pub fn jaccard(&self, other: &Self) -> SketchResult<f64> {
        if self.seed != other.seed {
            return Err(SketchError::incompatible("seeds differ"));
        }
        self.signature().jaccard(&other.signature())
    }
}

impl<T: Hash + ?Sized> Update<T> for MinHasher {
    fn update(&mut self, item: &T) {
        self.update_hash(hash_item(item, 0x3147_4A51));
    }
}

impl Clear for MinHasher {
    fn clear(&mut self) {
        self.mins.fill(u64::MAX);
    }
}

impl SpaceUsage for MinHasher {
    fn space_bytes(&self) -> usize {
        self.mins.len() * std::mem::size_of::<u64>()
    }
}

impl MergeSketch for MinHasher {
    /// Component-wise minimum — the signature of the *union* of the sets.
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.mins.len() != other.mins.len() {
            return Err(SketchError::incompatible("k differs"));
        }
        if self.seed != other.seed {
            return Err(SketchError::incompatible("seeds differ"));
        }
        for (a, &b) in self.mins.iter_mut().zip(&other.mins) {
            *a = (*a).min(b);
        }
        Ok(())
    }
}

/// One-permutation MinHash with rotation densification (Li, Owen & Zhang):
/// a single hash pass, buckets by the top bits, with empty buckets filled
/// from the next non-empty one. `k`-times cheaper per update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnePermMinHasher {
    mins: Vec<u64>,
    k: usize,
    seed: u64,
}

impl OnePermMinHasher {
    /// Creates a one-permutation hasher with `k >= 1` buckets.
    ///
    /// # Errors
    /// Returns an error if `k == 0`.
    pub fn new(k: usize, seed: u64) -> SketchResult<Self> {
        if k == 0 {
            return Err(SketchError::invalid("k", "need k >= 1"));
        }
        Ok(Self {
            mins: vec![u64::MAX; k],
            k,
            seed,
        })
    }

    /// Absorbs a pre-hashed element: one hash, one bucket update.
    pub fn update_hash(&mut self, hash: u64) {
        let h = mix64_seeded(hash, self.seed);
        let bucket = ((u128::from(h) * self.k as u128) >> 64) as usize;
        let value = mix64_seeded(h, 0x0EB5);
        if value < self.mins[bucket] {
            self.mins[bucket] = value;
        }
    }

    /// The densified signature: empty buckets borrow the value of the next
    /// occupied bucket (cyclically), keeping the collision property.
    #[must_use]
    pub fn signature(&self) -> MinHashSignature {
        let mut out = vec![u64::MAX; self.k];
        for (i, slot) in out.iter_mut().enumerate() {
            if self.mins[i] != u64::MAX {
                *slot = self.mins[i];
                continue;
            }
            // Rotate to the next non-empty bucket.
            for d in 1..=self.k {
                let j = (i + d) % self.k;
                if self.mins[j] != u64::MAX {
                    // Mix in the distance so distinct empty runs stay
                    // distinguishable across sets with different support.
                    *slot = mix64_seeded(self.mins[j], d as u64);
                    break;
                }
            }
        }
        MinHashSignature(out)
    }
}

impl<T: Hash + ?Sized> Update<T> for OnePermMinHasher {
    fn update(&mut self, item: &T) {
        self.update_hash(hash_item(item, 0x0E_B514));
    }
}

impl Clear for OnePermMinHasher {
    fn clear(&mut self) {
        self.mins.fill(u64::MAX);
    }
}

impl SpaceUsage for OnePermMinHasher {
    fn space_bytes(&self) -> usize {
        self.mins.len() * std::mem::size_of::<u64>()
    }
}

impl MergeSketch for OnePermMinHasher {
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.k != other.k || self.seed != other.seed {
            return Err(SketchError::incompatible("parameters differ"));
        }
        for (a, &b) in self.mins.iter_mut().zip(&other.mins) {
            *a = (*a).min(b);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds two integer sets with the given Jaccard similarity.
    fn sets_with_jaccard(j: f64, size: usize) -> (Vec<u64>, Vec<u64>) {
        // |A∩B| = j·|A∪B|; build union of size `size`.
        let inter = (j * size as f64 / (1.0 + j) * 2.0).round() as u64;
        let rest = size as u64 - inter;
        let a: Vec<u64> = (0..inter).chain(inter..inter + rest / 2).collect();
        let b: Vec<u64> = (0..inter).chain(inter + rest / 2..inter + rest).collect();
        (a, b)
    }

    fn true_jaccard(a: &[u64], b: &[u64]) -> f64 {
        use std::collections::HashSet;
        let sa: HashSet<_> = a.iter().collect();
        let sb: HashSet<_> = b.iter().collect();
        let inter = sa.intersection(&sb).count() as f64;
        let union = sa.union(&sb).count() as f64;
        inter / union
    }

    #[test]
    fn rejects_zero_k() {
        assert!(MinHasher::new(0, 0).is_err());
        assert!(OnePermMinHasher::new(0, 0).is_err());
    }

    #[test]
    fn identical_sets_have_jaccard_one() {
        let mut a = MinHasher::new(64, 1).unwrap();
        let mut b = MinHasher::new(64, 1).unwrap();
        for i in 0..100u64 {
            a.update(&i);
            b.update(&i);
        }
        assert_eq!(a.jaccard(&b).unwrap(), 1.0);
    }

    #[test]
    fn disjoint_sets_have_jaccard_near_zero() {
        let mut a = MinHasher::new(128, 2).unwrap();
        let mut b = MinHasher::new(128, 2).unwrap();
        for i in 0..500u64 {
            a.update(&i);
            b.update(&(i + 10_000));
        }
        assert!(a.jaccard(&b).unwrap() < 0.05);
    }

    #[test]
    fn estimates_match_true_jaccard() {
        for target in [0.2, 0.5, 0.8] {
            let (sa, sb) = sets_with_jaccard(target, 2000);
            let truth = true_jaccard(&sa, &sb);
            let mut a = MinHasher::new(512, 3).unwrap();
            let mut b = MinHasher::new(512, 3).unwrap();
            for x in &sa {
                a.update(x);
            }
            for x in &sb {
                b.update(x);
            }
            let est = a.jaccard(&b).unwrap();
            // stderr ≈ sqrt(j(1-j)/512) ≈ 0.022.
            assert!(
                (est - truth).abs() < 0.08,
                "target {target}: est {est:.3} vs true {truth:.3}"
            );
        }
    }

    #[test]
    fn merge_is_union() {
        let mut a = MinHasher::new(64, 4).unwrap();
        let mut b = MinHasher::new(64, 4).unwrap();
        let mut u = MinHasher::new(64, 4).unwrap();
        for i in 0..200u64 {
            a.update(&i);
            u.update(&i);
        }
        for i in 100..300u64 {
            b.update(&i);
            u.update(&i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, u);
        assert!(a.merge(&MinHasher::new(32, 4).unwrap()).is_err());
    }

    #[test]
    fn one_perm_estimates_jaccard() {
        let (sa, sb) = sets_with_jaccard(0.5, 4000);
        let truth = true_jaccard(&sa, &sb);
        let mut a = OnePermMinHasher::new(256, 5).unwrap();
        let mut b = OnePermMinHasher::new(256, 5).unwrap();
        for x in &sa {
            a.update(x);
        }
        for x in &sb {
            b.update(x);
        }
        let est = a.signature().jaccard(&b.signature()).unwrap();
        assert!(
            (est - truth).abs() < 0.1,
            "one-perm est {est:.3} vs true {truth:.3}"
        );
    }

    #[test]
    fn one_perm_densification_fills_empty_buckets() {
        let mut a = OnePermMinHasher::new(64, 6).unwrap();
        // Only 5 items: most buckets empty; signature must still have no
        // u64::MAX placeholders.
        for i in 0..5u64 {
            a.update(&i);
        }
        let sig = a.signature();
        assert!(sig.0.iter().all(|&v| v != u64::MAX));
    }

    #[test]
    fn signature_mismatch_is_error() {
        let a = MinHasher::new(8, 0).unwrap();
        let b = MinHasher::new(16, 0).unwrap();
        assert!(a.signature().jaccard(&b.signature()).is_err());
        assert!(a.jaccard(&MinHasher::new(8, 1).unwrap()).is_err());
    }

    #[test]
    fn clear_resets() {
        let mut a = MinHasher::new(8, 0).unwrap();
        a.update(&1u32);
        a.clear();
        assert_eq!(a.signature().0, vec![u64::MAX; 8]);
    }
}
