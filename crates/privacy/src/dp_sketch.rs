//! Central-DP linear sketches (Zhao et al., NeurIPS 2022: "Differentially
//! Private Linear Sketches").
//!
//! Because a Count-Min sketch is a *linear* function of the input
//! histogram, adding calibrated noise to its counters yields a
//! differentially-private summary whose per-query noise does not grow with
//! the domain size — the survey's point that sketch representations make
//! "the perturbations due to privacy less disruptive". The
//! [`DpHistogram`] baseline adds noise to every domain bin instead;
//! experiment E12 compares the two at equal ε and equal space.

use std::hash::Hash;

use sketches_core::{SketchError, SketchResult, SpaceUsage, Update};
use sketches_frequency::{CountMinSketch, CountSketch};
use sketches_hash::rng::Xoshiro256PlusPlus;

use crate::mechanisms::laplace_noise;

/// A Count-Min sketch released with ε-DP by adding Laplace noise to every
/// counter at finalization time.
#[derive(Debug, Clone)]
pub struct DpCountMin {
    sketch: CountMinSketch,
    /// Per-counter noise, drawn at finalization.
    noise: Option<Vec<f64>>,
    epsilon: f64,
    seed: u64,
}

impl DpCountMin {
    /// Creates a DP Count-Min with the given dimensions and privacy ε.
    ///
    /// One item contributes to `depth` counters, so the L1 sensitivity of
    /// the counter vector is `depth` and each counter gets
    /// `Lap(depth/ε)` noise.
    ///
    /// # Errors
    /// Returns an error for bad dimensions or ε.
    pub fn new(width: usize, depth: usize, epsilon: f64, seed: u64) -> SketchResult<Self> {
        sketches_core::check_positive_finite("epsilon", epsilon)?;
        Ok(Self {
            sketch: CountMinSketch::new(width, depth, seed)?,
            noise: None,
            epsilon,
            seed,
        })
    }

    /// Absorbs an item (must happen before [`Self::finalize`]).
    ///
    /// # Errors
    /// Returns an error if the sketch was already finalized.
    pub fn update<T: Hash + ?Sized>(&mut self, item: &T) -> SketchResult<()> {
        if self.noise.is_some() {
            return Err(SketchError::invalid(
                "state",
                "sketch already finalized; no further updates allowed",
            ));
        }
        Update::update(&mut self.sketch, item);
        Ok(())
    }

    /// Draws the Laplace noise, after which the sketch is ε-DP and
    /// queryable.
    pub fn finalize(&mut self) {
        if self.noise.is_some() {
            return;
        }
        let mut rng = Xoshiro256PlusPlus::new(self.seed ^ 0xD9_0153);
        let scale_sensitivity = self.sketch.depth() as f64;
        let count = self.sketch.width() * self.sketch.depth();
        self.noise = Some(
            (0..count)
                .map(|_| laplace_noise(scale_sensitivity, self.epsilon, &mut rng))
                .collect(),
        );
    }

    /// DP frequency estimate: min over rows of (counter + its noise).
    ///
    /// # Errors
    /// Returns an error if [`Self::finalize`] has not been called.
    pub fn estimate<T: Hash + ?Sized>(&self, item: &T) -> SketchResult<f64> {
        let noise = self
            .noise
            .as_ref()
            .ok_or_else(|| SketchError::invalid("state", "call finalize() before querying"))?;
        // Reconstruct the per-row counters via the public API: query each
        // row by probing with the noisy min. CountMinSketch only exposes
        // the min, so we recompute rows through the row-estimate trick:
        // estimate() is min over rows of counters; we need per-row values,
        // so we re-derive them from the raw counter layout instead.
        let est = self.sketch.row_values(item);
        let w = self.sketch.width();
        let v = est
            .iter()
            .enumerate()
            .map(|(row, &(col, c))| c as f64 + noise[row * w + col])
            .fold(f64::INFINITY, f64::min);
        Ok(v.max(0.0))
    }

    /// The privacy parameter ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl SpaceUsage for DpCountMin {
    fn space_bytes(&self) -> usize {
        self.sketch.space_bytes()
            + self
                .noise
                .as_ref()
                .map_or(0, |n| n.len() * std::mem::size_of::<f64>())
    }
}

/// A Count sketch released with ε-DP by adding Laplace noise to every
/// counter at finalization (Zhao et al.'s second construction). Unlike the
/// Count-Min variant the noisy estimate stays *unbiased*: the median of
/// `sign·(counter + noise)` has symmetric noise around the true estimate.
#[derive(Debug, Clone)]
pub struct DpCountSketch {
    sketch: CountSketch,
    noise: Option<Vec<f64>>,
    epsilon: f64,
    seed: u64,
}

impl DpCountSketch {
    /// Creates a DP Count sketch; each item touches `depth` counters, so
    /// every counter gets `Lap(depth/ε)` noise.
    ///
    /// # Errors
    /// Returns an error for bad dimensions or ε.
    pub fn new(width: usize, depth: usize, epsilon: f64, seed: u64) -> SketchResult<Self> {
        sketches_core::check_positive_finite("epsilon", epsilon)?;
        Ok(Self {
            sketch: CountSketch::new(width, depth, seed)?,
            noise: None,
            epsilon,
            seed,
        })
    }

    /// Absorbs an item (before [`Self::finalize`]).
    ///
    /// # Errors
    /// Returns an error if already finalized.
    pub fn update<T: Hash + ?Sized>(&mut self, item: &T) -> SketchResult<()> {
        if self.noise.is_some() {
            return Err(SketchError::invalid("state", "already finalized"));
        }
        Update::update(&mut self.sketch, item);
        Ok(())
    }

    /// Draws the Laplace noise; afterwards the sketch is ε-DP.
    pub fn finalize(&mut self) {
        if self.noise.is_some() {
            return;
        }
        let mut rng = Xoshiro256PlusPlus::new(self.seed ^ 0xD9_0155);
        let sensitivity = self.sketch.depth() as f64;
        let count = self.sketch.width() * self.sketch.depth();
        self.noise = Some(
            (0..count)
                .map(|_| laplace_noise(sensitivity, self.epsilon, &mut rng))
                .collect(),
        );
    }

    /// DP frequency estimate: the median over rows of
    /// `sign · (counter + noise)`.
    ///
    /// # Errors
    /// Returns an error if [`Self::finalize`] has not been called.
    pub fn estimate<T: Hash + ?Sized>(&self, item: &T) -> SketchResult<f64> {
        let noise = self
            .noise
            .as_ref()
            .ok_or_else(|| SketchError::invalid("state", "call finalize() first"))?;
        let w = self.sketch.width();
        let mut ests: Vec<f64> = self
            .sketch
            .row_components(item)
            .into_iter()
            .enumerate()
            .map(|(row, (col, counter, sign))| {
                sign as f64 * (counter as f64 + noise[row * w + col])
            })
            .collect();
        Ok(sketches_core::median_f64(&mut ests))
    }

    /// The privacy parameter ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl SpaceUsage for DpCountSketch {
    fn space_bytes(&self) -> usize {
        self.sketch.space_bytes()
            + self
                .noise
                .as_ref()
                .map_or(0, |n| n.len() * std::mem::size_of::<f64>())
    }
}

/// The baseline: a full histogram over `0..domain` with `Lap(1/ε)` noise
/// per bin (sensitivity 1 — each item touches one bin).
#[derive(Debug, Clone)]
pub struct DpHistogram {
    counts: Vec<u64>,
    noise: Option<Vec<f64>>,
    epsilon: f64,
    seed: u64,
}

impl DpHistogram {
    /// Creates a histogram over `0..domain`.
    ///
    /// # Errors
    /// Returns an error for a zero domain or bad ε.
    pub fn new(domain: usize, epsilon: f64, seed: u64) -> SketchResult<Self> {
        if domain == 0 {
            return Err(SketchError::invalid("domain", "must be positive"));
        }
        sketches_core::check_positive_finite("epsilon", epsilon)?;
        Ok(Self {
            counts: vec![0u64; domain],
            noise: None,
            epsilon,
            seed,
        })
    }

    /// Counts one occurrence of `value`.
    ///
    /// # Errors
    /// Returns an error if out of domain or already finalized.
    pub fn update(&mut self, value: usize) -> SketchResult<()> {
        if self.noise.is_some() {
            return Err(SketchError::invalid("state", "already finalized"));
        }
        if value >= self.counts.len() {
            return Err(SketchError::invalid("value", "outside domain"));
        }
        self.counts[value] += 1;
        Ok(())
    }

    /// Draws the noise; afterwards the histogram is ε-DP.
    pub fn finalize(&mut self) {
        if self.noise.is_some() {
            return;
        }
        let mut rng = Xoshiro256PlusPlus::new(self.seed ^ 0xD9_0154);
        self.noise = Some(
            (0..self.counts.len())
                .map(|_| laplace_noise(1.0, self.epsilon, &mut rng))
                .collect(),
        );
    }

    /// DP estimate for `value`.
    ///
    /// # Errors
    /// Returns an error if not finalized or out of domain.
    pub fn estimate(&self, value: usize) -> SketchResult<f64> {
        let noise = self
            .noise
            .as_ref()
            .ok_or_else(|| SketchError::invalid("state", "call finalize() first"))?;
        if value >= self.counts.len() {
            return Err(SketchError::invalid("value", "outside domain"));
        }
        Ok((self.counts[value] as f64 + noise[value]).max(0.0))
    }
}

impl SpaceUsage for DpHistogram {
    fn space_bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<u64>()
            + self
                .noise
                .as_ref()
                .map_or(0, |n| n.len() * std::mem::size_of::<f64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(DpCountMin::new(64, 4, 0.0, 0).is_err());
        assert!(DpCountSketch::new(64, 5, f64::NAN, 0).is_err());
        assert!(DpHistogram::new(0, 1.0, 0).is_err());
    }

    #[test]
    fn dp_count_sketch_lifecycle_and_accuracy() {
        let mut s = DpCountSketch::new(512, 5, 1.0, 11).unwrap();
        for i in 0..200u32 {
            let reps = 2_000 / (i + 1);
            for _ in 0..reps {
                s.update(&i).unwrap();
            }
        }
        assert!(s.estimate(&0u32).is_err(), "query before finalize");
        s.finalize();
        assert!(s.update(&1u32).is_err(), "update after finalize");
        let est = s.estimate(&0u32).unwrap();
        assert!((est - 2_000.0).abs() < 300.0, "heavy estimate {est:.0}");
    }

    #[test]
    fn dp_count_sketch_noise_is_symmetric() {
        // Mean estimate of an absent item across seeds should be ~0 (the
        // Count-Sketch + Laplace combination stays unbiased).
        let mut sum = 0.0;
        let trials = 24;
        for t in 0..trials {
            let mut s = DpCountSketch::new(256, 5, 1.0, 100 + t).unwrap();
            for i in 0..500u32 {
                s.update(&i).unwrap();
            }
            s.finalize();
            sum += s.estimate(&999_999u32).unwrap();
        }
        let mean = sum / trials as f64;
        assert!(mean.abs() < 15.0, "absent-item mean {mean:.2}");
    }

    #[test]
    fn updates_blocked_after_finalize() {
        let mut s = DpCountMin::new(64, 4, 1.0, 1).unwrap();
        s.update(&1u32).unwrap();
        s.finalize();
        assert!(s.update(&2u32).is_err());
        let mut h = DpHistogram::new(10, 1.0, 1).unwrap();
        h.update(3).unwrap();
        h.finalize();
        assert!(h.update(3).is_err());
    }

    #[test]
    fn query_requires_finalize() {
        let s = DpCountMin::new(64, 4, 1.0, 2).unwrap();
        assert!(s.estimate(&1u32).is_err());
        let h = DpHistogram::new(4, 1.0, 2).unwrap();
        assert!(h.estimate(1).is_err());
    }

    #[test]
    fn dp_cms_accuracy_at_reasonable_epsilon() {
        let mut s = DpCountMin::new(512, 5, 1.0, 3).unwrap();
        for i in 0..200u32 {
            let reps = 2_000 / (i + 1);
            for _ in 0..reps {
                s.update(&i).unwrap();
            }
        }
        s.finalize();
        // Heavy item 0 has 2000 occurrences; Laplace(5/1) noise is tiny
        // relative to that, sketch collision error moderate.
        let est = s.estimate(&0u32).unwrap();
        assert!(
            (est - 2_000.0).abs() < 300.0,
            "DP-CMS heavy estimate {est:.0}"
        );
    }

    #[test]
    fn dp_histogram_accuracy() {
        let mut h = DpHistogram::new(100, 1.0, 4).unwrap();
        for _ in 0..500 {
            h.update(7).unwrap();
        }
        h.finalize();
        let est = h.estimate(7).unwrap();
        assert!((est - 500.0).abs() < 30.0, "estimate {est:.0}");
        let ghost = h.estimate(8).unwrap();
        assert!(ghost < 20.0);
    }

    #[test]
    fn dp_cms_space_beats_histogram_on_large_domains() {
        // The E12 story: same ε, huge domain — the sketch is tiny, the
        // histogram is domain-sized.
        let s = DpCountMin::new(512, 5, 1.0, 5).unwrap();
        let h = DpHistogram::new(1_000_000, 1.0, 5).unwrap();
        assert!(s.space_bytes() * 100 < h.space_bytes());
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = DpCountMin::new(64, 3, 0.5, seed).unwrap();
            for i in 0..100u32 {
                s.update(&i).unwrap();
            }
            s.finalize();
            s.estimate(&5u32).unwrap()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
