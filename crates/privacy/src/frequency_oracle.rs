//! k-ary (generalized) randomized response: the basic ε-LDP frequency
//! oracle over a known finite domain.
//!
//! Each user reports their true value with probability
//! `p = e^ε/(e^ε + k − 1)` and a uniformly random *other* value otherwise.
//! The aggregator unbiases observed counts; the per-item standard error
//! grows like `√n·(k−2+e^ε)/(e^ε−1)`, which is why large domains need the
//! sketch-based oracles in [`crate::rappor`] and [`crate::private_cms`].

use std::collections::HashMap;

use sketches_core::{SketchError, SketchResult};
use sketches_hash::rng::Rng64;

/// A generalized-randomized-response frequency oracle over domain
/// `0..domain`.
#[derive(Debug, Clone)]
pub struct GrrFrequencyOracle {
    domain: u64,
    epsilon: f64,
    counts: HashMap<u64, u64>,
    n: u64,
}

impl GrrFrequencyOracle {
    /// Creates an oracle for domain size `>= 2` and privacy `epsilon > 0`.
    ///
    /// # Errors
    /// Returns an error for a degenerate domain or ε.
    pub fn new(domain: u64, epsilon: f64) -> SketchResult<Self> {
        if domain < 2 {
            return Err(SketchError::invalid("domain", "need at least 2 values"));
        }
        sketches_core::check_positive_finite("epsilon", epsilon)?;
        Ok(Self {
            domain,
            epsilon,
            counts: HashMap::new(),
            n: 0,
        })
    }

    /// The probability of reporting the true value.
    #[must_use]
    pub fn p_truth(&self) -> f64 {
        let e = self.epsilon.exp();
        e / (e + self.domain as f64 - 1.0)
    }

    /// Client-side: privatizes a value.
    ///
    /// # Errors
    /// Returns an error if the value is outside the domain.
    pub fn privatize(&self, value: u64, rng: &mut impl Rng64) -> SketchResult<u64> {
        if value >= self.domain {
            return Err(SketchError::invalid("value", "outside domain"));
        }
        if rng.gen_bool(self.p_truth()) {
            Ok(value)
        } else {
            // Uniform over the other k−1 values.
            let r = rng.gen_range(self.domain - 1);
            Ok(if r >= value { r + 1 } else { r })
        }
    }

    /// Server-side: absorbs one privatized report.
    ///
    /// # Errors
    /// Returns an error if the report is outside the domain.
    pub fn collect(&mut self, report: u64) -> SketchResult<()> {
        if report >= self.domain {
            return Err(SketchError::invalid("report", "outside domain"));
        }
        *self.counts.entry(report).or_insert(0) += 1;
        self.n += 1;
        Ok(())
    }

    /// Unbiased estimate of the true count of `value`.
    #[must_use]
    pub fn estimate(&self, value: u64) -> f64 {
        let observed = self.counts.get(&value).copied().unwrap_or(0) as f64;
        let p = self.p_truth();
        let q = (1.0 - p) / (self.domain as f64 - 1.0);
        (observed - self.n as f64 * q) / (p - q)
    }

    /// Number of reports collected.
    #[must_use]
    pub fn reports(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketches_hash::rng::Xoshiro256PlusPlus;

    #[test]
    fn rejects_bad_params() {
        assert!(GrrFrequencyOracle::new(1, 1.0).is_err());
        assert!(GrrFrequencyOracle::new(10, 0.0).is_err());
        assert!(GrrFrequencyOracle::new(10, f64::NAN).is_err());
    }

    #[test]
    fn privatize_stays_in_domain() {
        let o = GrrFrequencyOracle::new(5, 0.5).unwrap();
        let mut rng = Xoshiro256PlusPlus::new(1);
        for v in 0..5 {
            for _ in 0..100 {
                assert!(o.privatize(v, &mut rng).unwrap() < 5);
            }
        }
        assert!(o.privatize(5, &mut rng).is_err());
    }

    #[test]
    fn estimates_recover_distribution() {
        let domain = 10u64;
        let eps = 2.0;
        let mut oracle = GrrFrequencyOracle::new(domain, eps).unwrap();
        let mut rng = Xoshiro256PlusPlus::new(2);
        let n = 100_000u64;
        // True distribution: value v has weight ∝ v+1.
        let total_w: u64 = (1..=domain).sum();
        let mut true_counts = vec![0u64; domain as usize];
        for i in 0..n {
            let mut pick = (i * total_w / n) % total_w; // deterministic mix
            let mut v = 0u64;
            while pick > v {
                pick -= v + 1;
                v += 1;
            }
            true_counts[v as usize] += 1;
            let r = oracle.privatize(v, &mut rng).unwrap();
            oracle.collect(r).unwrap();
        }
        for v in 0..domain {
            let est = oracle.estimate(v);
            let truth = true_counts[v as usize] as f64;
            assert!(
                (est - truth).abs() < 0.15 * n as f64 / domain as f64 + 500.0,
                "v={v}: est {est:.0} vs true {truth}"
            );
        }
    }

    #[test]
    fn lower_epsilon_means_noisier_estimates() {
        let run = |eps: f64| -> f64 {
            let mut oracle = GrrFrequencyOracle::new(20, eps).unwrap();
            let mut rng = Xoshiro256PlusPlus::new(3);
            let n = 50_000;
            for i in 0..n {
                let v = u64::from(i % 20 == 0); // value 1 has 5%, value 0 95%...
                let r = oracle.privatize(v, &mut rng).unwrap();
                oracle.collect(r).unwrap();
            }
            // Error on a value that never occurs.
            oracle.estimate(7).abs()
        };
        let noisy = run(0.1);
        let clean = run(4.0);
        assert!(
            clean < noisy,
            "ε=4 error {clean:.0} should beat ε=0.1 error {noisy:.0}"
        );
    }

    #[test]
    fn p_truth_formula() {
        let o = GrrFrequencyOracle::new(2, 1.0).unwrap();
        let e = 1f64.exp();
        assert!((o.p_truth() - e / (e + 1.0)).abs() < 1e-12);
    }
}
