//! Basic privacy mechanisms: randomized response, Laplace, discrete
//! geometric, and ε-budget accounting.

use sketches_core::{SketchError, SketchResult};
use sketches_hash::rng::Rng64;

/// Warner's randomized response (1965): report the true bit with
/// probability `e^ε/(1+e^ε)`, the flipped bit otherwise. Satisfies ε-LDP.
pub fn randomized_response(truth: bool, epsilon: f64, rng: &mut impl Rng64) -> bool {
    let p_truth = epsilon.exp() / (1.0 + epsilon.exp());
    if rng.gen_bool(p_truth) {
        truth
    } else {
        !truth
    }
}

/// Unbiases an observed count of 1-responses out of `n` randomized
/// responses back to an estimate of the true count.
#[must_use]
pub fn debias_randomized_response(ones: f64, n: f64, epsilon: f64) -> f64 {
    let p = epsilon.exp() / (1.0 + epsilon.exp());
    (ones - n * (1.0 - p)) / (2.0 * p - 1.0)
}

/// A Laplace sample with scale `sensitivity/epsilon` — the Laplace
/// mechanism for ε-DP release of a statistic with the given L1
/// sensitivity.
pub fn laplace_noise(sensitivity: f64, epsilon: f64, rng: &mut impl Rng64) -> f64 {
    rng.laplace(sensitivity / epsilon)
}

/// The discrete (two-sided) geometric mechanism: integer-valued noise with
/// `Pr[k] ∝ α^{|k|}`, `α = e^{−ε/sensitivity}`. The integer analogue of
/// Laplace, exact for counting queries.
pub fn discrete_geometric(sensitivity: f64, epsilon: f64, rng: &mut impl Rng64) -> i64 {
    let alpha = (-epsilon / sensitivity).exp();
    // Sample magnitude from the geometric tail, sign uniformly.
    // Pr[|k| = 0] = (1-α)/(1+α); Pr[|k| = j] = 2α^j(1-α)/(1+α·... ]
    // Sample via inversion: u in (0,1).
    let u = rng.next_f64();
    let p0 = (1.0 - alpha) / (1.0 + alpha);
    if u < p0 {
        return 0;
    }
    // Remaining mass is symmetric; sample magnitude geometrically.
    let magnitude = 1 + (rng.next_f64().max(f64::MIN_POSITIVE).ln() / alpha.ln()).floor() as i64;
    if rng.next_u64() & 1 == 0 {
        magnitude
    } else {
        -magnitude
    }
}

/// A simple sequential-composition ε budget tracker.
#[derive(Debug, Clone)]
pub struct PrivacyBudget {
    total: f64,
    spent: f64,
}

impl PrivacyBudget {
    /// Creates a budget of `total_epsilon > 0`.
    ///
    /// # Errors
    /// Returns an error for non-positive or non-finite ε.
    pub fn new(total_epsilon: f64) -> SketchResult<Self> {
        sketches_core::check_positive_finite("epsilon", total_epsilon)?;
        Ok(Self {
            total: total_epsilon,
            spent: 0.0,
        })
    }

    /// Attempts to spend `epsilon` from the budget.
    ///
    /// # Errors
    /// Returns an error if the remaining budget is insufficient.
    pub fn spend(&mut self, epsilon: f64) -> SketchResult<()> {
        if epsilon.is_nan() || epsilon <= 0.0 {
            return Err(SketchError::invalid("epsilon", "must be positive"));
        }
        if self.spent + epsilon > self.total + 1e-12 {
            return Err(SketchError::CapacityExceeded {
                reason: format!(
                    "privacy budget exhausted: spent {:.3} + {:.3} > {:.3}",
                    self.spent, epsilon, self.total
                ),
            });
        }
        self.spent += epsilon;
        Ok(())
    }

    /// Remaining budget.
    #[must_use]
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketches_hash::rng::Xoshiro256PlusPlus;

    #[test]
    fn rr_keeps_truth_with_correct_probability() {
        let eps = 1.0;
        let mut rng = Xoshiro256PlusPlus::new(1);
        let n = 100_000;
        let kept = (0..n)
            .filter(|_| randomized_response(true, eps, &mut rng))
            .count();
        let p = eps.exp() / (1.0 + eps.exp()); // ≈ 0.731
        let frac = kept as f64 / n as f64;
        assert!((frac - p).abs() < 0.01, "kept fraction {frac} vs {p}");
    }

    #[test]
    fn rr_debias_recovers_true_count() {
        let eps = 1.5;
        let mut rng = Xoshiro256PlusPlus::new(2);
        let n = 200_000usize;
        let true_ones = 60_000usize;
        let mut observed = 0.0;
        for i in 0..n {
            if randomized_response(i < true_ones, eps, &mut rng) {
                observed += 1.0;
            }
        }
        let est = debias_randomized_response(observed, n as f64, eps);
        let rel = (est - true_ones as f64).abs() / true_ones as f64;
        assert!(rel < 0.03, "debias estimate {est} (rel {rel:.4})");
    }

    #[test]
    fn laplace_scale_matches() {
        let mut rng = Xoshiro256PlusPlus::new(3);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| laplace_noise(2.0, 0.5, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        // scale b = 4 → var = 2b² = 32.
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 32.0).abs() < 1.5, "var {var}");
    }

    #[test]
    fn geometric_noise_symmetric_and_integer() {
        let mut rng = Xoshiro256PlusPlus::new(4);
        let n = 100_000;
        let samples: Vec<i64> = (0..n)
            .map(|_| discrete_geometric(1.0, 1.0, &mut rng))
            .collect();
        let mean = samples.iter().sum::<i64>() as f64 / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        let zeros = samples.iter().filter(|&&s| s == 0).count() as f64 / n as f64;
        let alpha: f64 = (-1.0f64).exp();
        let p0 = (1.0 - alpha) / (1.0 + alpha);
        assert!((zeros - p0).abs() < 0.01, "P[0] {zeros} vs {p0}");
    }

    #[test]
    fn budget_accounting() {
        let mut b = PrivacyBudget::new(1.0).unwrap();
        b.spend(0.4).unwrap();
        b.spend(0.6).unwrap();
        assert!(b.remaining() < 1e-9);
        assert!(b.spend(0.1).is_err());
        assert!(PrivacyBudget::new(0.0).is_err());
        assert!(PrivacyBudget::new(f64::INFINITY).is_err());
    }
}
