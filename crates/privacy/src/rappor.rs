//! RAPPOR (Erlingsson, Pihur & Korolova, CCS 2014) — the system the survey
//! describes as "combining the Bloom filter summary with randomized
//! response".
//!
//! Each client Bloom-encodes its string into `m` bits with `h` hashes and
//! applies *permanent* randomized response (flip each bit with probability
//! `f/2`). The aggregator debiases per-bit counts and decodes candidate
//! strings Count-Min style: a candidate's frequency estimate is the
//! minimum of its bits' debiased counts (collisions only inflate bits, so
//! the minimum is the tightest of the available upper bounds).

use sketches_core::{SketchError, SketchResult};
use sketches_hash::hash_item;
use sketches_hash::mix::{fastrange64, mix64_seeded};
use sketches_hash::rng::Rng64;

/// Client-side RAPPOR encoder.
#[derive(Debug, Clone)]
pub struct RapporClient {
    bits: usize,
    hashes: u32,
    f: f64,
    seed: u64,
}

/// Computes the bit positions of `value` (shared by client and decoder).
fn bloom_bits(value: &str, bits: usize, hashes: u32, seed: u64) -> Vec<usize> {
    let base = hash_item(&value, seed);
    (0..hashes)
        .map(|i| {
            let h = mix64_seeded(base, u64::from(i).wrapping_mul(0x9E37_79B9) ^ seed);
            fastrange64(h, bits as u64) as usize
        })
        .collect()
}

impl RapporClient {
    /// Creates a client with an `bits`-bit Bloom filter, `hashes` hash
    /// functions, and flip parameter `f ∈ (0, 1)` (each bit flips to a
    /// coin with probability `f`; ε = 2h·ln((1−f/2)/(f/2)) for one-time
    /// collection).
    ///
    /// # Errors
    /// Returns an error for degenerate parameters.
    pub fn new(bits: usize, hashes: u32, f: f64, seed: u64) -> SketchResult<Self> {
        if bits < 8 {
            return Err(SketchError::invalid("bits", "need at least 8 bits"));
        }
        sketches_core::check_range("hashes", hashes, 1, 8)?;
        sketches_core::check_open_unit("f", f, 0.0, 1.0)?;
        Ok(Self {
            bits,
            hashes,
            f,
            seed,
        })
    }

    /// Produces the permanent randomized report for `value`.
    #[must_use]
    pub fn report(&self, value: &str, rng: &mut impl Rng64) -> Vec<bool> {
        let mut bloom = vec![false; self.bits];
        for b in bloom_bits(value, self.bits, self.hashes, self.seed) {
            bloom[b] = true;
        }
        bloom
            .into_iter()
            .map(|bit| {
                if rng.gen_bool(self.f) {
                    rng.gen_bool(0.5) // replaced by a fair coin
                } else {
                    bit
                }
            })
            .collect()
    }

    /// The local-DP ε of a single (one-time) report.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        2.0 * f64::from(self.hashes) * ((1.0 - self.f / 2.0) / (self.f / 2.0)).ln()
    }
}

/// Server-side aggregator and decoder.
#[derive(Debug, Clone)]
pub struct RapporAggregator {
    bit_counts: Vec<u64>,
    reports: u64,
    bits: usize,
    hashes: u32,
    f: f64,
    seed: u64,
}

impl RapporAggregator {
    /// Creates an aggregator matching the client parameters.
    ///
    /// # Errors
    /// Returns an error for degenerate parameters (same rules as the
    /// client).
    pub fn new(bits: usize, hashes: u32, f: f64, seed: u64) -> SketchResult<Self> {
        let _check = RapporClient::new(bits, hashes, f, seed)?;
        Ok(Self {
            bit_counts: vec![0u64; bits],
            reports: 0,
            bits,
            hashes,
            f,
            seed,
        })
    }

    /// Absorbs one client report.
    ///
    /// # Errors
    /// Returns an error if the report length does not match.
    pub fn collect(&mut self, report: &[bool]) -> SketchResult<()> {
        if report.len() != self.bits {
            return Err(SketchError::invalid("report", "length mismatch"));
        }
        for (c, &b) in self.bit_counts.iter_mut().zip(report) {
            *c += u64::from(b);
        }
        self.reports += 1;
        Ok(())
    }

    /// Debiased estimate of how many clients had bit `j` set.
    fn debiased_bit(&self, j: usize) -> f64 {
        let c = self.bit_counts[j] as f64;
        let n = self.reports as f64;
        // P(report 1 | true 1) = 1 − f/2; P(report 1 | true 0) = f/2.
        (c - n * self.f / 2.0) / (1.0 - self.f)
    }

    /// Estimated number of clients holding `candidate` (Count-Min-style
    /// minimum over its Bloom bits, clamped at 0).
    #[must_use]
    pub fn estimate(&self, candidate: &str) -> f64 {
        bloom_bits(candidate, self.bits, self.hashes, self.seed)
            .into_iter()
            .map(|j| self.debiased_bit(j))
            .fold(f64::INFINITY, f64::min)
            .max(0.0)
    }

    /// Number of reports collected.
    #[must_use]
    pub fn reports(&self) -> u64 {
        self.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketches_hash::rng::Xoshiro256PlusPlus;

    fn run_rappor(f: f64, counts: &[(&str, usize)], seed: u64) -> RapporAggregator {
        let client = RapporClient::new(256, 2, f, seed).unwrap();
        let mut agg = RapporAggregator::new(256, 2, f, seed).unwrap();
        let mut rng = Xoshiro256PlusPlus::new(seed ^ 1);
        for &(value, n) in counts {
            for _ in 0..n {
                agg.collect(&client.report(value, &mut rng)).unwrap();
            }
        }
        agg
    }

    #[test]
    fn rejects_bad_params() {
        assert!(RapporClient::new(4, 2, 0.5, 0).is_err());
        assert!(RapporClient::new(64, 0, 0.5, 0).is_err());
        assert!(RapporClient::new(64, 2, 0.0, 0).is_err());
        assert!(RapporClient::new(64, 2, 1.0, 0).is_err());
    }

    #[test]
    fn report_has_right_length_and_noise() {
        let client = RapporClient::new(128, 2, 0.5, 1).unwrap();
        let mut rng = Xoshiro256PlusPlus::new(2);
        let r = client.report("hello", &mut rng);
        assert_eq!(r.len(), 128);
        // With f=0.5, about a quarter of the bits are 1 from noise alone.
        let ones = r.iter().filter(|&&b| b).count();
        assert!(ones > 10 && ones < 60, "{ones} ones");
    }

    #[test]
    fn recovers_candidate_frequencies() {
        let counts = [("firefox", 5_000), ("chrome", 10_000), ("safari", 2_000)];
        let agg = run_rappor(0.25, &counts, 3);
        for &(value, n) in &counts {
            let est = agg.estimate(value);
            let rel = (est - n as f64).abs() / n as f64;
            assert!(rel < 0.15, "{value}: est {est:.0} vs {n} (rel {rel:.3})");
        }
        // A never-reported candidate stays near zero.
        let ghost = agg.estimate("netscape");
        assert!(ghost < 1_000.0, "ghost estimate {ghost:.0}");
    }

    #[test]
    fn stronger_privacy_is_noisier() {
        let counts = [("a", 3_000), ("b", 1_000)];
        let low_noise = run_rappor(0.1, &counts, 4);
        let high_noise = run_rappor(0.9, &counts, 4);
        let err = |agg: &RapporAggregator| {
            (agg.estimate("a") - 3_000.0).abs() + (agg.estimate("b") - 1_000.0).abs()
        };
        assert!(
            err(&low_noise) < err(&high_noise),
            "more flipping should hurt accuracy: {} vs {}",
            err(&low_noise),
            err(&high_noise)
        );
        // And ε reflects it.
        assert!(
            RapporClient::new(64, 2, 0.1, 0).unwrap().epsilon()
                > RapporClient::new(64, 2, 0.9, 0).unwrap().epsilon()
        );
    }

    #[test]
    fn collect_rejects_wrong_length() {
        let mut agg = RapporAggregator::new(64, 2, 0.5, 0).unwrap();
        assert!(agg.collect(&[false; 32]).is_err());
    }
}

/// A longitudinal RAPPOR reporter: the *permanent* randomized response is
/// memoized once per value (protecting against averaging attacks across
/// reports), and each collection round applies a second, *instantaneous*
/// randomized response on top (protecting any single report).
///
/// Instantaneous parameters: a bit reports 1 with probability `q` when the
/// permanent bit is 1, and with probability `p` when it is 0 (`q > p`).
#[derive(Debug, Clone)]
pub struct LongitudinalReporter {
    /// The memoized permanent randomized Bloom bits.
    permanent: Vec<bool>,
    p: f64,
    q: f64,
}

impl LongitudinalReporter {
    /// Creates a reporter for `value`, drawing its permanent noise once.
    ///
    /// # Errors
    /// Returns an error unless `0 < p < q < 1`.
    pub fn new(
        client: &RapporClient,
        value: &str,
        p: f64,
        q: f64,
        rng: &mut impl Rng64,
    ) -> SketchResult<Self> {
        sketches_core::check_open_unit("p", p, 0.0, 1.0)?;
        sketches_core::check_open_unit("q", q, 0.0, 1.0)?;
        if p >= q {
            return Err(sketches_core::SketchError::invalid(
                "p",
                "need p < q for the instantaneous response",
            ));
        }
        Ok(Self {
            permanent: client.report(value, rng),
            p,
            q,
        })
    }

    /// Emits one instantaneous report (call once per collection round).
    pub fn report(&self, rng: &mut impl Rng64) -> Vec<bool> {
        self.permanent
            .iter()
            .map(|&b| rng.gen_bool(if b { self.q } else { self.p }))
            .collect()
    }
}

impl RapporAggregator {
    /// Debiased estimate for `candidate` over *longitudinal* reports
    /// collected with instantaneous parameters `(p, q)` matching the
    /// clients'.
    ///
    /// The combined channel: `P(1 | bloom bit set) = q(1−f/2) + p·f/2` and
    /// `P(1 | unset) = p(1−f/2) + q·f/2`.
    #[must_use]
    pub fn estimate_longitudinal(&self, candidate: &str, p: f64, q: f64) -> f64 {
        let n = self.reports as f64;
        let p1_set = q * (1.0 - self.f / 2.0) + p * self.f / 2.0;
        let p1_unset = p * (1.0 - self.f / 2.0) + q * self.f / 2.0;
        bloom_bits(candidate, self.bits, self.hashes, self.seed)
            .into_iter()
            .map(|j| {
                let c = self.bit_counts[j] as f64;
                (c - n * p1_unset) / (p1_set - p1_unset)
            })
            .fold(f64::INFINITY, f64::min)
            .max(0.0)
    }
}

#[cfg(test)]
mod longitudinal_tests {
    use super::*;
    use sketches_hash::rng::Xoshiro256PlusPlus;

    #[test]
    fn rejects_bad_instantaneous_params() {
        let client = RapporClient::new(64, 2, 0.5, 1).unwrap();
        let mut rng = Xoshiro256PlusPlus::new(1);
        assert!(LongitudinalReporter::new(&client, "x", 0.75, 0.25, &mut rng).is_err());
        assert!(LongitudinalReporter::new(&client, "x", 0.0, 0.5, &mut rng).is_err());
    }

    #[test]
    fn permanent_noise_is_memoized() {
        let client = RapporClient::new(128, 2, 0.5, 2).unwrap();
        let mut rng = Xoshiro256PlusPlus::new(3);
        let reporter = LongitudinalReporter::new(&client, "stable", 0.25, 0.75, &mut rng).unwrap();
        // Two rounds from the same reporter share the permanent layer:
        // their agreement must be far above that of two independent
        // permanent draws.
        let r1 = reporter.report(&mut rng);
        let r2 = reporter.report(&mut rng);
        let agree = r1.iter().zip(&r2).filter(|(a, b)| a == b).count();
        assert!(agree > 64, "agreement {agree}/128 too low for shared state");
    }

    #[test]
    fn longitudinal_estimates_recover_frequencies() {
        let (bits, hashes, f) = (256, 2, 0.25);
        let (p, q) = (0.3, 0.7);
        let client = RapporClient::new(bits, hashes, f, 4).unwrap();
        let mut agg = RapporAggregator::new(bits, hashes, f, 4).unwrap();
        let mut rng = Xoshiro256PlusPlus::new(5);
        let counts = [("alpha", 8_000), ("beta", 3_000)];
        for &(value, n) in &counts {
            for _ in 0..n {
                // Each simulated user reports once.
                let reporter = LongitudinalReporter::new(&client, value, p, q, &mut rng).unwrap();
                agg.collect(&reporter.report(&mut rng)).unwrap();
            }
        }
        for &(value, n) in &counts {
            let est = agg.estimate_longitudinal(value, p, q);
            let rel = (est - n as f64).abs() / n as f64;
            assert!(rel < 0.25, "{value}: est {est:.0} vs {n} (rel {rel:.3})");
        }
        let ghost = agg.estimate_longitudinal("gamma", p, q);
        assert!(ghost < 2_000.0, "ghost {ghost:.0}");
    }
}
