//! Privacy-preserving data analysis with sketches (§3 of the survey,
//! "Private Data Analysis").
//!
//! The survey's observation: sketch representations "mix and concentrate
//! the information from many individuals, making the perturbations due to
//! privacy less disruptive than other representations would be". This
//! crate builds the deployed systems it names:
//!
//! * [`mechanisms`] — randomized response (Warner 1965), the Laplace and
//!   discrete geometric mechanisms, and ε-budget accounting.
//! * [`frequency_oracle`] — k-ary randomized response (generalized RR),
//!   the basic ε-LDP frequency oracle.
//! * [`rappor`] — Google's RAPPOR (CCS 2014): Bloom filter + permanent
//!   randomized response (plus the longitudinal instantaneous layer),
//!   with a Count-Min-style debiased decoder.
//! * [`private_cms`] — Apple's private Count-Mean-Sketch (2017): one-hot
//!   rows under symmetric RR, aggregated and debiased server-side.
//! * [`dp_sketch`] — central-DP linear sketches (Zhao et al., NeurIPS
//!   2022): Laplace-noised Count-Min and Count-Sketch with
//!   sensitivity-calibrated scale, and the noisy-histogram baseline for
//!   experiment E12.

#![forbid(unsafe_code)]

pub mod dp_sketch;
pub mod frequency_oracle;
pub mod mechanisms;
pub mod private_cms;
pub mod rappor;

pub use dp_sketch::{DpCountMin, DpCountSketch, DpHistogram};
pub use frequency_oracle::GrrFrequencyOracle;
pub use mechanisms::{discrete_geometric, laplace_noise, randomized_response, PrivacyBudget};
pub use private_cms::{PrivateCmsClient, PrivateCmsServer};
pub use rappor::{LongitudinalReporter, RapporAggregator, RapporClient};
