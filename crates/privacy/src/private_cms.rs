//! Apple's private Count-Mean-Sketch (Differential Privacy Team, 2017) —
//! the deployment the survey describes as "taking a Count-Min sketch of a
//! sparse input and applying randomized response to each entry".
//!
//! Client: pick one of `k` hash rows uniformly, one-hot encode the value's
//! bucket in ±1, flip each entry with probability `1/(e^{ε/2} + 1)`.
//! Server: debias each report so its expectation is the original one-hot,
//! accumulate into the `k × m` matrix, and answer queries with the
//! collision-corrected mean `f̂(v) = (m/(m−1))·(Σⱼ M[j, hⱼ(v)] − n/m)`.

use std::hash::Hash;

use sketches_core::{SketchError, SketchResult, SpaceUsage};
use sketches_hash::hash_item;
use sketches_hash::mix::{fastrange64, mix64_seeded};
use sketches_hash::rng::Rng64;

/// A privatized client report: the chosen row and the noisy ±1 vector.
#[derive(Debug, Clone)]
pub struct CmsReport {
    row: usize,
    bits: Vec<i8>,
}

/// Client-side encoder.
#[derive(Debug, Clone)]
pub struct PrivateCmsClient {
    rows: usize,
    buckets: usize,
    epsilon: f64,
    seed: u64,
}

fn bucket_of<T: Hash + ?Sized>(value: &T, row: usize, buckets: usize, seed: u64) -> usize {
    let h = mix64_seeded(
        hash_item(value, seed ^ 0xCE5_0AE),
        (row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    fastrange64(h, buckets as u64) as usize
}

impl PrivateCmsClient {
    /// Creates a client for a `rows × buckets` sketch at privacy `epsilon`.
    ///
    /// # Errors
    /// Returns an error for degenerate parameters.
    pub fn new(rows: usize, buckets: usize, epsilon: f64, seed: u64) -> SketchResult<Self> {
        if rows == 0 || buckets < 2 {
            return Err(SketchError::invalid("rows/buckets", "too small"));
        }
        sketches_core::check_positive_finite("epsilon", epsilon)?;
        Ok(Self {
            rows,
            buckets,
            epsilon,
            seed,
        })
    }

    /// Privatizes one value.
    pub fn report<T: Hash + ?Sized>(&self, value: &T, rng: &mut impl Rng64) -> CmsReport {
        let row = rng.gen_range(self.rows as u64) as usize;
        let bucket = bucket_of(value, row, self.buckets, self.seed);
        let flip_prob = 1.0 / ((self.epsilon / 2.0).exp() + 1.0);
        let bits = (0..self.buckets)
            .map(|b| {
                let truth: i8 = if b == bucket { 1 } else { -1 };
                if rng.gen_bool(flip_prob) {
                    -truth
                } else {
                    truth
                }
            })
            .collect();
        CmsReport { row, bits }
    }
}

/// Server-side aggregator.
#[derive(Debug, Clone)]
pub struct PrivateCmsServer {
    /// Debiased count matrix, `rows × buckets`.
    matrix: Vec<f64>,
    rows: usize,
    buckets: usize,
    epsilon: f64,
    seed: u64,
    n: u64,
}

impl PrivateCmsServer {
    /// Creates a server matching the client parameters.
    ///
    /// # Errors
    /// Returns an error for degenerate parameters.
    pub fn new(rows: usize, buckets: usize, epsilon: f64, seed: u64) -> SketchResult<Self> {
        let _ = PrivateCmsClient::new(rows, buckets, epsilon, seed)?;
        Ok(Self {
            matrix: vec![0.0; rows * buckets],
            rows,
            buckets,
            epsilon,
            seed,
            n: 0,
        })
    }

    /// Absorbs one client report, debiasing it so its expected
    /// contribution is the client's true one-hot row.
    ///
    /// # Errors
    /// Returns an error if the report shape does not match.
    pub fn collect(&mut self, report: &CmsReport) -> SketchResult<()> {
        if report.row >= self.rows || report.bits.len() != self.buckets {
            return Err(SketchError::invalid("report", "shape mismatch"));
        }
        let e_half = (self.epsilon / 2.0).exp();
        let c_eps = (e_half + 1.0) / (e_half - 1.0);
        let base = report.row * self.buckets;
        for (b, &bit) in report.bits.iter().enumerate() {
            self.matrix[base + b] += c_eps / 2.0 * f64::from(bit) + 0.5;
        }
        self.n += 1;
        Ok(())
    }

    /// Collision- and noise-corrected frequency estimate for `value`.
    #[must_use]
    pub fn estimate<T: Hash + ?Sized>(&self, value: &T) -> f64 {
        let m = self.buckets as f64;
        let x: f64 = (0..self.rows)
            .map(|row| {
                let b = bucket_of(value, row, self.buckets, self.seed);
                self.matrix[row * self.buckets + b]
            })
            .sum();
        (m / (m - 1.0)) * (x - self.n as f64 / m)
    }

    /// Reports collected.
    #[must_use]
    pub fn reports(&self) -> u64 {
        self.n
    }
}

impl SpaceUsage for PrivateCmsServer {
    fn space_bytes(&self) -> usize {
        self.matrix.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketches_hash::rng::Xoshiro256PlusPlus;

    fn run(eps: f64, counts: &[(&str, usize)], seed: u64) -> PrivateCmsServer {
        let rows = 16;
        let buckets = 1024;
        let client = PrivateCmsClient::new(rows, buckets, eps, seed).unwrap();
        let mut server = PrivateCmsServer::new(rows, buckets, eps, seed).unwrap();
        let mut rng = Xoshiro256PlusPlus::new(seed ^ 0xFACE);
        for &(v, n) in counts {
            for _ in 0..n {
                server.collect(&client.report(v, &mut rng)).unwrap();
            }
        }
        server
    }

    #[test]
    fn rejects_bad_params() {
        assert!(PrivateCmsClient::new(0, 64, 1.0, 0).is_err());
        assert!(PrivateCmsClient::new(4, 1, 1.0, 0).is_err());
        assert!(PrivateCmsClient::new(4, 64, 0.0, 0).is_err());
    }

    #[test]
    fn recovers_frequencies_at_moderate_epsilon() {
        let counts = [("apple", 20_000), ("banana", 8_000), ("cherry", 2_000)];
        let server = run(4.0, &counts, 1);
        for &(v, n) in &counts {
            let est = server.estimate(v);
            let tol = 0.10 * n as f64 + 600.0;
            assert!((est - n as f64).abs() < tol, "{v}: est {est:.0} vs {n}");
        }
        let ghost = server.estimate("durian");
        assert!(ghost.abs() < 1_500.0, "ghost {ghost:.0}");
    }

    #[test]
    fn estimates_are_nearly_unbiased_across_seeds() {
        let truth = 5_000usize;
        let mut sum = 0.0;
        let trials = 8;
        for t in 0..trials {
            let server = run(2.0, &[("x", truth), ("pad", 5_000)], 100 + t);
            sum += server.estimate("x");
        }
        let mean = sum / trials as f64;
        let rel = (mean - truth as f64).abs() / truth as f64;
        assert!(rel < 0.1, "mean {mean:.0} vs {truth} (rel {rel:.3})");
    }

    #[test]
    fn smaller_epsilon_is_noisier() {
        let counts = [("only", 10_000)];
        let tight = run(8.0, &counts, 7);
        let loose = run(0.5, &counts, 7);
        let err_tight = (tight.estimate("only") - 10_000.0).abs();
        let err_loose = (loose.estimate("only") - 10_000.0).abs();
        assert!(
            err_tight < err_loose + 500.0,
            "ε=8 err {err_tight:.0} vs ε=0.5 err {err_loose:.0}"
        );
    }

    #[test]
    fn collect_rejects_shape_mismatch() {
        let mut server = PrivateCmsServer::new(4, 64, 1.0, 0).unwrap();
        let bad = CmsReport {
            row: 9,
            bits: vec![1; 64],
        };
        assert!(server.collect(&bad).is_err());
        let bad2 = CmsReport {
            row: 0,
            bits: vec![1; 32],
        };
        assert!(server.collect(&bad2).is_err());
    }
}
