//! Self-hosted observability for the sketches workspace.
//!
//! The paper's §3 thesis is that sketches earned their keep inside
//! monitoring and telemetry pipelines (Gigascope/CMON, DataSketches).
//! This crate makes that thesis executable by *dogfooding* the
//! workspace's own summaries as its telemetry backend: latency
//! distributions are held in a [KLL sketch](sketches_quantiles::KllSketch)
//! rather than fixed buckets, so per-shard histograms merge without loss
//! (the mergeable-summaries contract) and report true stream quantiles.
//!
//! Three layers:
//!
//! - **Primitives** — [`Counter`] and [`Gauge`] (relaxed atomics, `&self`
//!   updates) and [`LatencyHistogram`] (KLL-backed, `&mut` record, `&self`
//!   query). All are allocation-free on the hot path.
//! - **Time** — the [`Clock`] trait. Library crates are forbidden from
//!   ambient time reads (lint rule L4); the *only* sanctioned
//!   `Instant::now` call sites in the workspace are [`Clock`]
//!   implementations in this crate. Binaries install [`MonotonicClock`];
//!   tests install [`ManualClock`] and advance it by hand, keeping every
//!   test deterministic.
//! - **Aggregation** — [`Registry`] (string-keyed metrics + a bounded
//!   event log) and [`MetricsSnapshot`], a point-in-time view that merges
//!   across shards (counters add, gauges add, histograms sketch-merge)
//!   and renders as a human table, Prometheus text exposition, or JSON.
//! - **Tracing** — [`TraceContext`]/[`TraceSpan`] carry one request's
//!   per-stage latency breakdown from the socket to the WAL; completed
//!   traces land in a bounded [`TraceSink`]. Identifiers come from an
//!   injected seeded [`IdGen`] and sampling ([`Sampling`]) is a
//!   deterministic counter, mirroring the [`Clock`] discipline.
//!
//! ```
//! use sketches_obs::{Clock, LatencyHistogram, ManualClock, Span};
//!
//! let clock = ManualClock::default();
//! let mut hist = LatencyHistogram::new();
//! {
//!     let _span = Span::start(&clock, &mut hist);
//!     clock.advance(1_500); // pretend 1.5 µs of work
//! } // drop records into the histogram
//! assert_eq!(hist.snapshot().count(), 1);
//! ```

#![forbid(unsafe_code)]

mod clock;
mod metrics;
mod registry;
mod snapshot;
mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use metrics::{Counter, Gauge, LatencyHistogram, Span, OBS_KLL_K, OBS_KLL_SEED};
pub use registry::{Event, Registry, EVENT_CAP};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};
pub use trace::{
    IdGen, Sampler, Sampling, SpanId, Stage, Trace, TraceContext, TraceId, TraceSink, TraceSpan,
};
