//! Metric primitives: atomic counters and gauges, and a KLL-backed
//! latency histogram.
//!
//! Counters and gauges update through `&self` (relaxed atomics) so they
//! can be bumped from shard workers without locks; the histogram records
//! through `&mut self` — the engines only touch it at batch granularity,
//! where exclusive access is already in hand — and queries through
//! `&self`.

use std::sync::atomic::{AtomicU64, Ordering};

use sketches_core::MergeSketch;
use sketches_core::QuantileSketch;
use sketches_core::Update;
use sketches_quantiles::KllSketch;

use crate::clock::Clock;
use crate::snapshot::HistogramSnapshot;

/// KLL accuracy parameter shared by every obs histogram. Fixed so that
/// histograms from different shards/processes always merge.
pub const OBS_KLL_K: usize = 128;

/// KLL seed shared by every obs histogram; same rationale as [`OBS_KLL_K`].
pub const OBS_KLL_SEED: u64 = 0x0B5E_0B5E_0B5E;

/// A monotone event counter (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Rewinds to an absolute value — used by transactional ingest to
    /// restore the pre-batch reading when a batch rolls back, keeping
    /// counters exact rather than merely monotone.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        Self {
            value: AtomicU64::new(self.get()),
        }
    }
}

/// A point-in-time level (relaxed atomic).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `n` to the level.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current level.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Clone for Gauge {
    fn clone(&self) -> Self {
        let g = Self::new();
        g.set(self.get());
        g
    }
}

/// A latency distribution held in the workspace's own KLL sketch.
///
/// Unlike fixed-bucket histograms, the sketch needs no a-priori bucket
/// layout, merges losslessly across shards, and answers arbitrary
/// quantiles (p50/p90/p99/max) with the KLL rank guarantee. Values are
/// recorded in nanoseconds.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    kll: KllSketch,
}

impl LatencyHistogram {
    /// Creates an empty histogram with the workspace-standard shape
    /// ([`OBS_KLL_K`], [`OBS_KLL_SEED`]).
    #[must_use]
    pub fn new() -> Self {
        // lint: panic-ok(OBS_KLL_K is a compile-time constant >= 8, so construction cannot fail)
        let kll = KllSketch::new(OBS_KLL_K, OBS_KLL_SEED).expect("OBS_KLL_K is a valid KLL k");
        Self { kll }
    }

    /// Records one duration in nanoseconds.
    pub fn record_nanos(&mut self, nanos: u64) {
        self.kll.update(&(nanos as f64));
    }

    /// Records one duration in seconds.
    pub fn record_secs(&mut self, secs: f64) {
        if secs.is_finite() && secs >= 0.0 {
            self.kll.update(&(secs * 1e9));
        }
    }

    /// Number of recorded durations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.kll.count()
    }

    /// A mergeable point-in-time copy of the distribution.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::from_kll(self.kll.clone())
    }

    /// Folds another histogram's recordings into this one, losslessly.
    /// Infallible: every obs histogram is built with the same fixed shape
    /// ([`OBS_KLL_K`], [`OBS_KLL_SEED`]), so the KLL merge cannot reject.
    pub fn merge(&mut self, other: &Self) {
        // lint: panic-ok(every obs histogram shares one fixed (k, seed), so KLL merge cannot fail)
        self.kll
            .merge(&other.kll)
            .expect("obs histograms share one KLL shape");
    }

    /// Starts an RAII span that records into this histogram when dropped.
    pub fn time<'a>(&'a mut self, clock: &'a dyn Clock) -> Span<'a> {
        Span::start(clock, self)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// An RAII timer: measures from construction to drop and records the
/// elapsed nanoseconds into a [`LatencyHistogram`].
///
/// ```
/// use sketches_obs::{LatencyHistogram, ManualClock, Span};
/// let clock = ManualClock::new();
/// let mut hist = LatencyHistogram::new();
/// {
///     let _guard = Span::start(&clock, &mut hist);
///     clock.advance(42);
/// }
/// assert_eq!(hist.count(), 1);
/// ```
#[derive(Debug)]
pub struct Span<'a> {
    clock: &'a dyn Clock,
    hist: &'a mut LatencyHistogram,
    start: u64,
}

impl<'a> Span<'a> {
    /// Starts timing now.
    pub fn start(clock: &'a dyn Clock, hist: &'a mut LatencyHistogram) -> Self {
        let start = clock.now_nanos();
        Self { clock, hist, start }
    }

    /// Nanoseconds elapsed so far.
    #[must_use]
    pub fn elapsed_nanos(&self) -> u64 {
        self.clock.now_nanos().saturating_sub(self.start)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let elapsed = self.elapsed_nanos();
        self.hist.record_nanos(elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn counter_add_get_set_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.set(7);
        assert_eq!(c.get(), 7);
        assert_eq!(c.clone().get(), 7);
    }

    #[test]
    fn gauge_tracks_level() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        assert_eq!(g.get(), 15);
        assert_eq!(g.clone().get(), 15);
    }

    #[test]
    fn histogram_reports_quantiles() {
        let mut h = LatencyHistogram::new();
        for n in 1..=1_000u64 {
            h.record_nanos(n);
        }
        assert_eq!(h.count(), 1_000);
        let snap = h.snapshot();
        let p50 = snap.quantile_nanos(0.5).unwrap();
        assert!((400.0..=600.0).contains(&p50), "p50 = {p50}");
        assert_eq!(snap.quantile_nanos(1.0).unwrap(), 1_000.0);
    }

    #[test]
    fn record_secs_converts_and_rejects_garbage() {
        let mut h = LatencyHistogram::new();
        h.record_secs(1.5e-6);
        h.record_secs(f64::NAN);
        h.record_secs(-1.0);
        assert_eq!(h.count(), 1);
        let max = h.snapshot().quantile_nanos(1.0).unwrap();
        assert!((max - 1_500.0).abs() < 1e-9);
    }

    #[test]
    fn merge_is_lossless_on_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for n in 0..500u64 {
            a.record_nanos(n);
            b.record_nanos(10_000 + n);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1_000);
        assert_eq!(a.snapshot().quantile_nanos(1.0).unwrap(), 10_499.0);
    }

    #[test]
    fn span_records_on_drop() {
        let clock = ManualClock::new();
        let mut h = LatencyHistogram::new();
        {
            let span = h.time(&clock);
            clock.advance(1_234);
            assert_eq!(span.elapsed_nanos(), 1_234);
        }
        assert_eq!(h.count(), 1);
        assert_eq!(h.snapshot().quantile_nanos(1.0).unwrap(), 1_234.0);
    }
}
