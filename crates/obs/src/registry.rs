//! A string-keyed metric registry with a bounded event log.
//!
//! The hot engine paths hold their metric primitives as named struct
//! fields (no map lookup per row); the registry is the dynamic facade
//! for everything at batch-or-coarser cadence — the durable layer's
//! WAL/checkpoint/recovery accounting, ad-hoc tool metrics — and the
//! point where a [`MetricsSnapshot`] is cut.

use std::collections::{BTreeMap, VecDeque};

use crate::clock::Clock;
use crate::metrics::{Counter, Gauge, LatencyHistogram, Span};
use crate::snapshot::MetricsSnapshot;

/// Maximum events retained by a [`Registry`] (oldest dropped first).
pub const EVENT_CAP: usize = 64;

/// A timestamped, human-readable occurrence (e.g. a recovery warning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Clock reading when the event was recorded (nanoseconds).
    pub at_nanos: u64,
    /// What happened.
    pub message: String,
}

/// Named counters, gauges, and histograms plus a bounded event log.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, LatencyHistogram>,
    events: VecDeque<Event>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&mut self, name: &str) -> &Counter {
        self.counters.entry(name.to_string()).or_default()
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&mut self, name: &str) -> &Gauge {
        self.gauges.entry(name.to_string()).or_default()
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&mut self, name: &str) -> &mut LatencyHistogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    /// Starts an RAII span that records into histogram `name` when
    /// dropped — the ergonomic form of
    /// [`LatencyHistogram::time`], which needs a mutable histogram
    /// borrow the call site rarely has in hand.
    ///
    /// ```
    /// use sketches_obs::{ManualClock, Registry};
    /// let clock = ManualClock::new();
    /// let mut r = Registry::new();
    /// {
    ///     let _span = r.time("stage_seconds", &clock);
    ///     clock.advance(250);
    /// }
    /// assert_eq!(r.histogram("stage_seconds").count(), 1);
    /// ```
    pub fn time<'a>(&'a mut self, name: &str, clock: &'a dyn Clock) -> Span<'a> {
        Span::start(clock, self.histogram(name))
    }

    /// Appends an event, dropping the oldest past [`EVENT_CAP`].
    pub fn event(&mut self, at_nanos: u64, message: impl Into<String>) {
        self.events.push_back(Event {
            at_nanos,
            message: message.into(),
        });
        while self.events.len() > EVENT_CAP {
            self.events.pop_front();
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Cuts a mergeable point-in-time snapshot of everything registered.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        for (name, c) in &self.counters {
            snap.add_counter(name, c.get());
        }
        for (name, g) in &self.gauges {
            snap.add_gauge(name, g.get());
        }
        for (name, h) in &self.histograms {
            snap.put_histogram(name, h.snapshot());
        }
        for e in &self.events {
            snap.push_event(e.clone());
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_and_snapshot() {
        let mut r = Registry::new();
        r.counter("a_total").add(3);
        r.counter("a_total").inc();
        r.gauge("g").set(9);
        r.histogram("h_seconds").record_nanos(500);
        r.event(1, "hello");
        let snap = r.snapshot();
        assert_eq!(snap.counters["a_total"], 4);
        assert_eq!(snap.gauges["g"], 9);
        assert_eq!(snap.histograms["h_seconds"].count(), 1);
        assert_eq!(snap.events.len(), 1);
    }

    #[test]
    fn event_log_is_bounded() {
        let mut r = Registry::new();
        for i in 0..(EVENT_CAP as u64 + 10) {
            r.event(i, format!("e{i}"));
        }
        let events: Vec<_> = r.events().collect();
        assert_eq!(events.len(), EVENT_CAP);
        assert_eq!(events[0].message, "e10");
    }
}
