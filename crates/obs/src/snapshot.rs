//! Point-in-time metric snapshots: merge across shards, render for
//! humans, Prometheus, or JSON.
//!
//! Merging follows the mergeable-summaries contract end to end: counters
//! and gauges add, and latency histograms merge their underlying KLL
//! sketches — the merged p99 is the true p99 of the combined stream, not
//! an average of per-shard p99s.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use sketches_core::{MergeSketch, QuantileSketch, SketchResult};
use sketches_quantiles::KllSketch;

use crate::registry::Event;

/// The quantiles every histogram report includes.
const REPORT_QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")];

/// A mergeable copy of one latency distribution (values in nanoseconds).
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    kll: KllSketch,
}

impl HistogramSnapshot {
    /// Wraps a KLL sketch of nanosecond durations.
    #[must_use]
    pub fn from_kll(kll: KllSketch) -> Self {
        Self { kll }
    }

    /// Number of recorded durations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.kll.count()
    }

    /// The duration (nanoseconds) at rank fraction `q`, or `None` when
    /// the histogram is empty or `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile_nanos(&self, q: f64) -> Option<f64> {
        self.kll.quantile(q).ok()
    }

    /// Merges another snapshot's distribution into this one.
    ///
    /// # Errors
    /// Returns [`sketches_core::SketchError::Incompatible`] when the
    /// underlying sketches have different shapes — impossible for
    /// histograms built by this crate, which share one `(k, seed)`.
    pub fn merge(&mut self, other: &Self) -> SketchResult<()> {
        self.kll.merge(&other.kll)
    }
}

/// A point-in-time view of every metric an engine (or registry) holds.
///
/// Counter totals from disjoint shards add exactly; a 4-shard engine's
/// merged snapshot therefore carries byte-identical counter totals to a
/// sequential engine fed the same stream (tested in the integration
/// suite).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotone counters (Prometheus `_total` convention).
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time levels; merging sums them.
    pub gauges: BTreeMap<String, u64>,
    /// Latency distributions, keyed by a `*_seconds` metric name
    /// (recorded in nanoseconds, rendered in seconds).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Recent noteworthy occurrences (recovery warnings, etc.).
    pub events: Vec<Event>,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `value` to counter `name` (creating it at zero).
    pub fn add_counter(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += value;
    }

    /// Adds `value` to gauge `name` (creating it at zero).
    pub fn add_gauge(&mut self, name: &str, value: u64) {
        *self.gauges.entry(name.to_string()).or_insert(0) += value;
    }

    /// Installs (or replaces) histogram `name`.
    pub fn put_histogram(&mut self, name: &str, hist: HistogramSnapshot) {
        self.histograms.insert(name.to_string(), hist);
    }

    /// Appends an event.
    pub fn push_event(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Merges `other` into `self`: counters and gauges add, histograms
    /// sketch-merge, events concatenate (bounded by the registry cap at
    /// the source, so growth stays small).
    ///
    /// # Errors
    /// Propagates a histogram shape mismatch; snapshots produced by this
    /// crate always share one histogram shape.
    pub fn merge(&mut self, other: &Self) -> SketchResult<()> {
        for (name, v) in &other.counters {
            self.add_counter(name, *v);
        }
        for (name, v) in &other.gauges {
            self.add_gauge(name, *v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h)?,
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
        self.events.extend(other.events.iter().cloned());
        Ok(())
    }

    /// A fixed-width human table: one line per metric.
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "  counter  {name:<44} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "  gauge    {name:<44} {v}");
        }
        for (name, h) in &self.histograms {
            let stats = if h.count() == 0 {
                "count=0".to_string()
            } else {
                let q = |q: f64| fmt_nanos(h.quantile_nanos(q).unwrap_or(0.0));
                format!(
                    "count={} p50={} p90={} p99={} max={}",
                    h.count(),
                    q(0.5),
                    q(0.9),
                    q(0.99),
                    q(1.0),
                )
            };
            let _ = writeln!(out, "  hist     {name:<44} {stats}");
        }
        for e in &self.events {
            let _ = writeln!(
                out,
                "  event    t+{:<42} {}",
                fmt_nanos(e.at_nanos as f64),
                e.message
            );
        }
        out
    }

    /// Prometheus text exposition format (version 0.0.4).
    ///
    /// Counters keep their `_total` names, histograms render as
    /// summaries in seconds with `quantile` labels plus a `_count`.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let base = name.split('{').next().unwrap_or(name);
            let line = format!("# TYPE {base} {kind}");
            if line != last_type_line {
                let _ = writeln!(out, "{line}");
                last_type_line = line;
            }
        };
        for (name, v) in &self.counters {
            type_line(&mut out, name, "counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            type_line(&mut out, name, "gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            type_line(&mut out, name, "summary");
            for (q, label) in REPORT_QUANTILES {
                if let Some(nanos) = h.quantile_nanos(q) {
                    let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", nanos / 1e9);
                }
            }
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }

    /// A single-line JSON object (hand-rolled: the offline serde shim has
    /// no derive), with histogram quantiles in nanoseconds.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_u64_map(&mut out, &self.counters);
        out.push_str("},\"gauges\":{");
        push_u64_map(&mut out, &self.gauges);
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{{\"count\":{}", json_string(name), h.count());
            for (q, label) in [(0.5, "p50"), (0.9, "p90"), (0.99, "p99"), (1.0, "max")] {
                match h.quantile_nanos(q) {
                    Some(v) => {
                        let _ = write!(out, ",\"{label}_nanos\":{v}");
                    }
                    None => {
                        let _ = write!(out, ",\"{label}_nanos\":null");
                    }
                }
            }
            out.push('}');
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"at_nanos\":{},\"message\":{}}}",
                e.at_nanos,
                json_string(&e.message)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Writes `"name":value` pairs for a counter/gauge map.
fn push_u64_map(out: &mut String, map: &BTreeMap<String, u64>) {
    for (i, (name, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{v}", json_string(name));
    }
}

/// JSON-escapes and quotes a string.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a nanosecond duration with an adaptive unit.
fn fmt_nanos(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.2}s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.2}ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.2}us", nanos / 1e3)
    } else {
        format!("{nanos:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::LatencyHistogram;

    fn snap_with(counter: u64) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        s.add_counter("rows_ingested_total", counter);
        s.add_gauge("groups", 3);
        let mut h = LatencyHistogram::new();
        for n in 0..100u64 {
            h.record_nanos(n * 1_000);
        }
        s.put_histogram("batch_latency_seconds", h.snapshot());
        s
    }

    #[test]
    fn merge_adds_counters_and_merges_histograms() {
        let mut a = snap_with(10);
        let b = snap_with(32);
        a.merge(&b).unwrap();
        assert_eq!(a.counters["rows_ingested_total"], 42);
        assert_eq!(a.gauges["groups"], 6);
        assert_eq!(a.histograms["batch_latency_seconds"].count(), 200);
    }

    #[test]
    fn merge_into_empty_clones_everything() {
        let mut a = MetricsSnapshot::new();
        a.merge(&snap_with(5)).unwrap();
        assert_eq!(a.counters["rows_ingested_total"], 5);
        assert_eq!(a.histograms["batch_latency_seconds"].count(), 100);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = snap_with(7).to_prometheus();
        assert!(text.contains("# TYPE rows_ingested_total counter"));
        assert!(text.contains("rows_ingested_total 7"));
        assert!(text.contains("# TYPE groups gauge"));
        assert!(text.contains("# TYPE batch_latency_seconds summary"));
        assert!(text.contains("batch_latency_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("batch_latency_seconds_count 100"));
    }

    #[test]
    fn prometheus_labels_share_one_type_line() {
        let mut s = MetricsSnapshot::new();
        s.add_gauge("shard_rows_routed{shard=\"0\"}", 10);
        s.add_gauge("shard_rows_routed{shard=\"1\"}", 20);
        let text = s.to_prometheus();
        assert_eq!(text.matches("# TYPE shard_rows_routed gauge").count(), 1);
        assert!(text.contains("shard_rows_routed{shard=\"0\"} 10"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut s = snap_with(1);
        s.push_event(Event {
            at_nanos: 5,
            message: "torn \"tail\"\n".to_string(),
        });
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rows_ingested_total\":1"));
        assert!(json.contains("\"count\":100"));
        assert!(json.contains("torn \\\"tail\\\"\\n"));
    }

    #[test]
    fn table_renders_every_kind() {
        let mut s = snap_with(9);
        s.push_event(Event {
            at_nanos: 1_500,
            message: "warned".to_string(),
        });
        let t = s.to_table();
        assert!(t.contains("counter"));
        assert!(t.contains("gauge"));
        assert!(t.contains("hist"));
        assert!(t.contains("warned"));
        assert!(t.contains("p99="));
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = LatencyHistogram::new().snapshot();
        assert_eq!(h.quantile_nanos(0.5), None);
        let mut s = MetricsSnapshot::new();
        s.put_histogram("h_seconds", h);
        assert!(s.to_json().contains("\"p50_nanos\":null"));
        assert!(s.to_table().contains("count=0"));
    }
}
