//! Point-in-time metric snapshots: merge across shards, render for
//! humans, Prometheus, or JSON.
//!
//! Merging follows the mergeable-summaries contract end to end: counters
//! and gauges add, and latency histograms merge their underlying KLL
//! sketches — the merged p99 is the true p99 of the combined stream, not
//! an average of per-shard p99s.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use sketches_core::{MergeSketch, QuantileSketch, SketchResult};
use sketches_quantiles::KllSketch;

use crate::registry::Event;

/// The quantiles every histogram report includes.
const REPORT_QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")];

/// A mergeable copy of one latency distribution (values in nanoseconds).
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    kll: KllSketch,
}

impl HistogramSnapshot {
    /// Wraps a KLL sketch of nanosecond durations.
    #[must_use]
    pub fn from_kll(kll: KllSketch) -> Self {
        Self { kll }
    }

    /// Number of recorded durations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.kll.count()
    }

    /// The duration (nanoseconds) at rank fraction `q`, or `None` when
    /// the histogram is empty or `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile_nanos(&self, q: f64) -> Option<f64> {
        self.kll.quantile(q).ok()
    }

    /// Merges another snapshot's distribution into this one.
    ///
    /// # Errors
    /// Returns [`sketches_core::SketchError::Incompatible`] when the
    /// underlying sketches have different shapes — impossible for
    /// histograms built by this crate, which share one `(k, seed)`.
    pub fn merge(&mut self, other: &Self) -> SketchResult<()> {
        self.kll.merge(&other.kll)
    }
}

/// A point-in-time view of every metric an engine (or registry) holds.
///
/// Counter totals from disjoint shards add exactly; a 4-shard engine's
/// merged snapshot therefore carries byte-identical counter totals to a
/// sequential engine fed the same stream (tested in the integration
/// suite).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotone counters (Prometheus `_total` convention).
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time levels; merging sums them.
    pub gauges: BTreeMap<String, u64>,
    /// Latency distributions, keyed by a `*_seconds` metric name
    /// (recorded in nanoseconds, rendered in seconds).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Recent noteworthy occurrences (recovery warnings, etc.).
    pub events: Vec<Event>,
    /// `# HELP` texts keyed by metric *family* (the name with any label
    /// block stripped). Families without an entry get a fallback derived
    /// from the name, so the exposition always carries HELP lines.
    pub help: BTreeMap<String, String>,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `value` to counter `name` (creating it at zero).
    pub fn add_counter(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += value;
    }

    /// Adds `value` to gauge `name` (creating it at zero).
    pub fn add_gauge(&mut self, name: &str, value: u64) {
        *self.gauges.entry(name.to_string()).or_insert(0) += value;
    }

    /// Installs (or replaces) histogram `name`.
    pub fn put_histogram(&mut self, name: &str, hist: HistogramSnapshot) {
        self.histograms.insert(name.to_string(), hist);
    }

    /// Appends an event.
    pub fn push_event(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Registers the `# HELP` text for metric family `base` (a metric
    /// name without its label block).
    pub fn set_help(&mut self, base: &str, text: &str) {
        self.help.insert(base.to_string(), text.to_string());
    }

    /// Merges `other` into `self`: counters and gauges add, histograms
    /// sketch-merge, events concatenate (bounded by the registry cap at
    /// the source, so growth stays small).
    ///
    /// # Errors
    /// Propagates a histogram shape mismatch; snapshots produced by this
    /// crate always share one histogram shape.
    pub fn merge(&mut self, other: &Self) -> SketchResult<()> {
        for (name, v) in &other.counters {
            self.add_counter(name, *v);
        }
        for (name, v) in &other.gauges {
            self.add_gauge(name, *v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h)?,
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
        self.events.extend(other.events.iter().cloned());
        for (base, text) in &other.help {
            self.help
                .entry(base.clone())
                .or_insert_with(|| text.clone());
        }
        Ok(())
    }

    /// A fixed-width human table: one line per metric.
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "  counter  {name:<44} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "  gauge    {name:<44} {v}");
        }
        for (name, h) in &self.histograms {
            let stats = if h.count() == 0 {
                "count=0".to_string()
            } else {
                let q = |q: f64| fmt_nanos(h.quantile_nanos(q).unwrap_or(0.0));
                format!(
                    "count={} p50={} p90={} p99={} max={}",
                    h.count(),
                    q(0.5),
                    q(0.9),
                    q(0.99),
                    q(1.0),
                )
            };
            let _ = writeln!(out, "  hist     {name:<44} {stats}");
        }
        for e in &self.events {
            let _ = writeln!(
                out,
                "  event    t+{:<42} {}",
                fmt_nanos(e.at_nanos as f64),
                e.message
            );
        }
        out
    }

    /// Prometheus text exposition format (version 0.0.4).
    ///
    /// Counters keep their `_total` names, histograms render as
    /// summaries in seconds with `quantile` labels plus a `_count`.
    /// Every metric family gets a `# HELP` line (registered via
    /// [`set_help`](Self::set_help), with a name-derived fallback) and
    /// one `# TYPE` line; label values are escaped (`\\`, `\"`, `\n`)
    /// so real scrapers parse the output.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_base = String::new();
        let mut header = |out: &mut String, name: &str, kind: &str| {
            let (base, _) = split_series(name);
            if base != last_base {
                let fallback = base.replace('_', " ");
                let text = self
                    .help
                    .get(base)
                    .map_or(fallback.as_str(), String::as_str);
                let _ = writeln!(out, "# HELP {base} {}", escape_help(text));
                let _ = writeln!(out, "# TYPE {base} {kind}");
                last_base = base.to_string();
            }
        };
        for (name, v) in &self.counters {
            header(&mut out, name, "counter");
            let _ = writeln!(out, "{} {v}", series(name, None));
        }
        for (name, v) in &self.gauges {
            header(&mut out, name, "gauge");
            let _ = writeln!(out, "{} {v}", series(name, None));
        }
        for (name, h) in &self.histograms {
            header(&mut out, name, "summary");
            let (base, labels) = split_series(name);
            for (q, label) in REPORT_QUANTILES {
                if let Some(nanos) = h.quantile_nanos(q) {
                    let _ = writeln!(
                        out,
                        "{} {}",
                        series(name, Some(("quantile", label))),
                        nanos / 1e9
                    );
                }
            }
            let count_name = match labels {
                Some(inner) => format!("{base}_count{{{inner}}}"),
                None => format!("{base}_count"),
            };
            let _ = writeln!(out, "{} {}", series(&count_name, None), h.count());
        }
        // Point-quantile gauges (`<family>_p50/_p90/_p99`, seconds) so
        // dashboards can plot a plain series without understanding the
        // summary's quantile labels or the raw KLL. Collected into a
        // sorted map first so every gauge family gets exactly one
        // HELP/TYPE pair even when the source histograms are labeled.
        let mut point_gauges: BTreeMap<String, f64> = BTreeMap::new();
        for (name, h) in &self.histograms {
            let (base, labels) = split_series(name);
            for (q, suffix) in [(0.5, "p50"), (0.9, "p90"), (0.99, "p99")] {
                if let Some(nanos) = h.quantile_nanos(q) {
                    let gauge_name = match labels {
                        Some(inner) => format!("{base}_{suffix}{{{inner}}}"),
                        None => format!("{base}_{suffix}"),
                    };
                    point_gauges.insert(gauge_name, nanos / 1e9);
                }
            }
        }
        for (name, v) in &point_gauges {
            header(&mut out, name, "gauge");
            let _ = writeln!(out, "{} {v}", series(name, None));
        }
        out
    }

    /// A single-line JSON object (hand-rolled: the offline serde shim has
    /// no derive), with histogram quantiles in nanoseconds.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_u64_map(&mut out, &self.counters);
        out.push_str("},\"gauges\":{");
        push_u64_map(&mut out, &self.gauges);
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{{\"count\":{}", json_string(name), h.count());
            for (q, label) in [(0.5, "p50"), (0.9, "p90"), (0.99, "p99"), (1.0, "max")] {
                match h.quantile_nanos(q) {
                    Some(v) => {
                        let _ = write!(out, ",\"{label}_nanos\":{v}");
                    }
                    None => {
                        let _ = write!(out, ",\"{label}_nanos\":null");
                    }
                }
            }
            out.push('}');
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"at_nanos\":{},\"message\":{}}}",
                e.at_nanos,
                json_string(&e.message)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Writes `"name":value` pairs for a counter/gauge map.
fn push_u64_map(out: &mut String, map: &BTreeMap<String, u64>) {
    for (i, (name, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{v}", json_string(name));
    }
}

/// JSON-escapes and quotes a string.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Splits a metric name into its family base and the raw inner label
/// block (the text between `{` and the trailing `}`), if any.
fn split_series(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(open) => {
            let rest = &name[open + 1..];
            (&name[..open], Some(rest.strip_suffix('}').unwrap_or(rest)))
        }
        None => (name, None),
    }
}

/// Renders one series line's name: base, escaped label values, and an
/// optional extra label appended inside the block (used for summary
/// `quantile` labels on possibly-labeled histogram names).
fn series(name: &str, extra: Option<(&str, &str)>) -> String {
    let (base, labels) = split_series(name);
    match (labels, extra) {
        (None, None) => base.to_string(),
        (None, Some((k, v))) => format!("{base}{{{k}=\"{}\"}}", escape_label_value(v)),
        (Some(inner), None) => format!("{base}{{{}}}", escape_label_block(inner)),
        (Some(inner), Some((k, v))) => format!(
            "{base}{{{},{k}=\"{}\"}}",
            escape_label_block(inner),
            escape_label_value(v)
        ),
    }
}

/// Escapes the label values inside one raw `k="v",k2="v2"` block. A
/// value's closing quote is recognized as a `"` followed by `,` or the
/// end of the block (metric names are produced by this workspace, which
/// never emits a `",` sequence *inside* a value).
fn escape_label_block(inner: &str) -> String {
    let chars: Vec<char> = inner.chars().collect();
    let mut out = String::with_capacity(inner.len() + 4);
    let mut i = 0;
    while i < chars.len() {
        // Copy the key and `=` verbatim.
        while i < chars.len() && chars[i] != '=' {
            out.push(chars[i]);
            i += 1;
        }
        if i < chars.len() {
            out.push('=');
            i += 1;
        }
        if i < chars.len() && chars[i] == '"' {
            out.push('"');
            i += 1;
            while i < chars.len() {
                let c = chars[i];
                if c == '"' && (i + 1 == chars.len() || chars[i + 1] == ',') {
                    out.push('"');
                    i += 1;
                    break;
                }
                push_escaped_label_char(&mut out, c);
                i += 1;
            }
        }
        if i < chars.len() && chars[i] == ',' {
            out.push(',');
            i += 1;
        }
    }
    out
}

/// Escapes one already-extracted label value.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        push_escaped_label_char(&mut out, c);
    }
    out
}

/// The label-value escapes the exposition format defines: backslash,
/// double quote, and newline.
fn push_escaped_label_char(out: &mut String, c: char) {
    match c {
        '\\' => out.push_str("\\\\"),
        '"' => out.push_str("\\\""),
        '\n' => out.push_str("\\n"),
        c => out.push(c),
    }
}

/// Escapes a `# HELP` text: backslash and newline (quotes are legal
/// there).
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a nanosecond duration with an adaptive unit.
fn fmt_nanos(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.2}s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.2}ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.2}us", nanos / 1e3)
    } else {
        format!("{nanos:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::LatencyHistogram;

    fn snap_with(counter: u64) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        s.add_counter("rows_ingested_total", counter);
        s.add_gauge("groups", 3);
        let mut h = LatencyHistogram::new();
        for n in 0..100u64 {
            h.record_nanos(n * 1_000);
        }
        s.put_histogram("batch_latency_seconds", h.snapshot());
        s
    }

    #[test]
    fn merge_adds_counters_and_merges_histograms() {
        let mut a = snap_with(10);
        let b = snap_with(32);
        a.merge(&b).unwrap();
        assert_eq!(a.counters["rows_ingested_total"], 42);
        assert_eq!(a.gauges["groups"], 6);
        assert_eq!(a.histograms["batch_latency_seconds"].count(), 200);
    }

    #[test]
    fn merge_into_empty_clones_everything() {
        let mut a = MetricsSnapshot::new();
        a.merge(&snap_with(5)).unwrap();
        assert_eq!(a.counters["rows_ingested_total"], 5);
        assert_eq!(a.histograms["batch_latency_seconds"].count(), 100);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = snap_with(7).to_prometheus();
        assert!(text.contains("# TYPE rows_ingested_total counter"));
        assert!(text.contains("rows_ingested_total 7"));
        assert!(text.contains("# TYPE groups gauge"));
        assert!(text.contains("# TYPE batch_latency_seconds summary"));
        assert!(text.contains("batch_latency_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("batch_latency_seconds_count 100"));
        // Point-quantile gauges ride along for dashboards.
        assert!(text.contains("# TYPE batch_latency_seconds_p50 gauge"));
        assert!(text.contains("# TYPE batch_latency_seconds_p99 gauge"));
        assert!(text.contains("batch_latency_seconds_p90 "));
    }

    #[test]
    fn prometheus_format_contract() {
        // The scraper-facing contract: every family gets HELP + TYPE,
        // label values are escaped, labeled summaries keep the quantile
        // label inside one block and `_count` on the base name.
        let mut s = MetricsSnapshot::new();
        s.add_counter("requests_total{route=\"re\"port\",status=\"200\"}", 3);
        s.set_help("requests_total", "Requests by route and status.");
        s.add_gauge("inflight", 2);
        s.add_gauge("weird{name=\"a\\b\nc\"}", 1);
        let mut h = LatencyHistogram::new();
        h.record_nanos(2_000_000_000);
        s.put_histogram("request_latency_seconds{route=\"ingest\"}", h.snapshot());
        let text = s.to_prometheus();

        assert!(text.contains("# HELP requests_total Requests by route and status.\n"));
        assert!(text.contains("# TYPE requests_total counter\n"));
        // The stray quote inside the route value is escaped.
        assert!(text.contains("requests_total{route=\"re\\\"port\",status=\"200\"} 3\n"));
        // Fallback HELP is derived from the family name.
        assert!(text.contains("# HELP inflight inflight\n"));
        assert!(text.contains("# TYPE inflight gauge\n"));
        // Backslash and newline escapes.
        assert!(text.contains("weird{name=\"a\\\\b\\nc\"} 1\n"));
        // Labeled summary: quantile joins the existing block; _count is
        // on the base name with the labels preserved.
        assert!(text.contains("request_latency_seconds{route=\"ingest\",quantile=\"0.5\"} 2\n"));
        assert!(text.contains("request_latency_seconds_count{route=\"ingest\"} 1\n"));
        // Labeled point-quantile gauges keep the source labels and get
        // one TYPE line per gauge family.
        assert!(text.contains("request_latency_seconds_p99{route=\"ingest\"} 2\n"));
        assert_eq!(
            text.matches("# TYPE request_latency_seconds_p99 gauge")
                .count(),
            1
        );
        // HELP/TYPE come once per family, in order, before its series.
        let help_idx = text.find("# HELP requests_total").unwrap();
        let type_idx = text.find("# TYPE requests_total").unwrap();
        let series_idx = text.find("requests_total{").unwrap();
        assert!(help_idx < type_idx && type_idx < series_idx);
        assert_eq!(text.matches("# TYPE requests_total").count(), 1);
    }

    #[test]
    fn prometheus_labels_share_one_type_line() {
        let mut s = MetricsSnapshot::new();
        s.add_gauge("shard_rows_routed{shard=\"0\"}", 10);
        s.add_gauge("shard_rows_routed{shard=\"1\"}", 20);
        let text = s.to_prometheus();
        assert_eq!(text.matches("# TYPE shard_rows_routed gauge").count(), 1);
        assert!(text.contains("shard_rows_routed{shard=\"0\"} 10"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut s = snap_with(1);
        s.push_event(Event {
            at_nanos: 5,
            message: "torn \"tail\"\n".to_string(),
        });
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rows_ingested_total\":1"));
        assert!(json.contains("\"count\":100"));
        assert!(json.contains("torn \\\"tail\\\"\\n"));
    }

    #[test]
    fn table_renders_every_kind() {
        let mut s = snap_with(9);
        s.push_event(Event {
            at_nanos: 1_500,
            message: "warned".to_string(),
        });
        let t = s.to_table();
        assert!(t.contains("counter"));
        assert!(t.contains("gauge"));
        assert!(t.contains("hist"));
        assert!(t.contains("warned"));
        assert!(t.contains("p99="));
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = LatencyHistogram::new().snapshot();
        assert_eq!(h.quantile_nanos(0.5), None);
        let mut s = MetricsSnapshot::new();
        s.put_histogram("h_seconds", h);
        assert!(s.to_json().contains("\"p50_nanos\":null"));
        assert!(s.to_table().contains("count=0"));
    }
}
