//! Request-scoped tracing: hierarchical spans, deterministic sampling,
//! and a bounded ring-buffer sink for completed traces.
//!
//! The aggregate view (metrics) answers "how slow is the p99"; this
//! module answers "*why* was this request slow" — each request carries a
//! [`TraceContext`] from the socket down to the WAL, and every stage
//! closes a child [`TraceSpan`] naming where the nanoseconds went
//! (admission queue wait, engine apply, epoch publish, WAL append,
//! fsync, checkpoint). Completed traces land in a [`TraceSink`], a
//! fixed-capacity ring that evicts oldest-first and never allocates on
//! the push path after construction.
//!
//! Determinism mirrors the [`Clock`](crate::Clock) discipline: trace and
//! span identifiers come from an injected seeded [`IdGen`] (splitmix64),
//! never from ambient randomness, and head sampling ([`Sampling`]) is a
//! deterministic counter — so tests pin exact span trees with
//! [`ManualClock`](crate::ManualClock) and a fixed seed.
//!
//! ```
//! use sketches_obs::{IdGen, Stage, TraceContext};
//!
//! let mut ids = IdGen::new(7);
//! let ctx = TraceContext::root(ids.trace_id(), ids.span_id(), None);
//! ctx.child(Stage::QueueWait, 10, 25);
//! let trace = ctx.finish(Stage::Request, 0, 100, vec![]).unwrap();
//! assert_eq!(trace.spans.len(), 2);
//! assert_eq!(trace.spans[0].stage, Stage::Request);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sketches_hash::{Rng64, SplitMix64};

use crate::snapshot::json_string;

/// A 128-bit trace identifier (rendered as 32 lowercase hex digits, the
/// `traceparent` wire shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u128);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A 64-bit span identifier (rendered as 16 lowercase hex digits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Deterministic trace/span identifier generator.
///
/// Injected exactly like [`Clock`](crate::Clock): binaries seed it once
/// at startup, tests pass a fixed seed and get byte-identical
/// identifiers on every run. Identifiers are never all-zero (the
/// `traceparent` spec reserves zero to mean "absent").
#[derive(Debug, Clone)]
pub struct IdGen {
    rng: SplitMix64,
}

impl IdGen {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
        }
    }

    fn next_nonzero(&mut self) -> u64 {
        loop {
            let v = self.rng.next_u64();
            if v != 0 {
                return v;
            }
        }
    }

    /// A fresh, non-zero trace identifier.
    pub fn trace_id(&mut self) -> TraceId {
        let hi = self.next_nonzero();
        let lo = self.next_nonzero();
        TraceId((u128::from(hi) << 64) | u128::from(lo))
    }

    /// A fresh, non-zero span identifier.
    pub fn span_id(&mut self) -> SpanId {
        SpanId(self.next_nonzero())
    }
}

/// The closed vocabulary of traced stages. Shared with the metric names
/// (`stage_latency{stage=...}`) so the aggregate histograms and the
/// per-request spans always speak the same language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// The request root: socket accept to response written.
    Request,
    /// Reading and parsing the HTTP request off the socket.
    Parse,
    /// Routing and handling (everything between parse and write).
    Handle,
    /// Writing the response back to the socket.
    Write,
    /// Submit-queue wait: batch submitted to coordinator dequeue.
    QueueWait,
    /// Shard workers applying the batch (route + ingest + collect).
    EngineApply,
    /// Commit broadcast and epoch snapshot publish.
    Publish,
    /// Appending the encoded record to the WAL.
    WalAppend,
    /// Flushing the WAL append to disk.
    Fsync,
    /// Writing an atomic checkpoint (when the lag bound trips).
    Checkpoint,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 10] = [
        Stage::Request,
        Stage::Parse,
        Stage::Handle,
        Stage::Write,
        Stage::QueueWait,
        Stage::EngineApply,
        Stage::Publish,
        Stage::WalAppend,
        Stage::Fsync,
        Stage::Checkpoint,
    ];

    /// The stable lowercase label (metric label value and JSON field).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Stage::Request => "request",
            Stage::Parse => "parse",
            Stage::Handle => "handle",
            Stage::Write => "write",
            Stage::QueueWait => "queue_wait",
            Stage::EngineApply => "engine_apply",
            Stage::Publish => "publish",
            Stage::WalAppend => "wal_append",
            Stage::Fsync => "fsync",
            Stage::Checkpoint => "checkpoint",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Deterministic head-sampling policy: the decision is a pure function
/// of the request sequence number, so a replayed workload samples the
/// same requests every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sampling {
    /// Trace nothing (zero collection cost).
    Off,
    /// Trace request `seq` when `seq % n == 0` (`n == 0` behaves as Off).
    SampleEvery(u64),
    /// Trace every request.
    Always,
}

impl Sampling {
    /// Whether request number `seq` (0-based) is head-sampled.
    #[must_use]
    pub fn sample(self, seq: u64) -> bool {
        match self {
            Sampling::Off => false,
            Sampling::SampleEvery(n) => n != 0 && seq % n == 0,
            Sampling::Always => true,
        }
    }
}

/// A thread-safe sampling counter over a [`Sampling`] policy.
#[derive(Debug)]
pub struct Sampler {
    policy: Sampling,
    seq: AtomicU64,
}

impl Sampler {
    /// Creates a sampler with its sequence counter at zero.
    #[must_use]
    pub fn new(policy: Sampling) -> Self {
        Self {
            policy,
            seq: AtomicU64::new(0),
        }
    }

    /// The configured policy.
    #[must_use]
    pub fn policy(&self) -> Sampling {
        self.policy
    }

    /// Draws the next sequence number and returns its head decision.
    pub fn decide(&self) -> bool {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.policy.sample(seq)
    }
}

/// One completed span: a named stage with start/end clock readings and
/// key=value attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// This span's identifier.
    pub span_id: SpanId,
    /// The parent span (`None` only for a root with no remote parent).
    pub parent: Option<SpanId>,
    /// Which pipeline stage this span covers.
    pub stage: Stage,
    /// Clock reading when the stage began (nanoseconds).
    pub start_nanos: u64,
    /// Clock reading when the stage ended (nanoseconds).
    pub end_nanos: u64,
    /// Key=value annotations (row counts, routes, statuses, ...).
    pub attrs: Vec<(String, String)>,
}

impl TraceSpan {
    /// The span's duration in nanoseconds.
    #[must_use]
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }
}

/// One completed trace: the root span first, child spans after it in
/// completion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The trace identifier shared by every span.
    pub trace_id: TraceId,
    /// Root first, then children in the order their stages completed.
    pub spans: Vec<TraceSpan>,
}

impl Trace {
    /// The root span.
    #[must_use]
    pub fn root(&self) -> &TraceSpan {
        // lint: panic-ok(finish() always places the root span at index 0, and Trace values are only built there)
        &self.spans[0]
    }

    /// End-to-end duration (the root span's duration), nanoseconds.
    #[must_use]
    pub fn duration_nanos(&self) -> u64 {
        self.root().duration_nanos()
    }

    /// Sum of the child spans' durations, nanoseconds. For a well-formed
    /// trace this never exceeds [`Trace::duration_nanos`] by more than
    /// clock-read jitter.
    #[must_use]
    pub fn child_duration_nanos(&self) -> u64 {
        self.spans[1..].iter().map(TraceSpan::duration_nanos).sum()
    }

    /// Renders the trace as one JSON object (hand-rolled; the offline
    /// serde shim has no derive). Keys and span order are deterministic,
    /// so a fixed clock + seed yields byte-identical output.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"trace_id\":\"{}\",", self.trace_id);
        out.push_str(&format!(
            "\"duration_nanos\":{},\"spans\":[",
            self.duration_nanos()
        ));
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"span_id\":\"{}\",\"parent\":", s.span_id));
            match s.parent {
                Some(p) => out.push_str(&format!("\"{p}\"")),
                None => out.push_str("null"),
            }
            out.push_str(&format!(
                ",\"stage\":\"{}\",\"start_nanos\":{},\"end_nanos\":{},\"attrs\":{{",
                s.stage, s.start_nanos, s.end_nanos
            ));
            for (j, (k, v)) in s.attrs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{}", json_string(k), json_string(v)));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// The per-request trace handle threaded from the front door down to the
/// WAL. Cloning is cheap (one `Arc`); a disabled context is a no-op at
/// every call site, so untraced requests pay only an `Option` check.
#[derive(Debug, Clone, Default)]
pub struct TraceContext {
    inner: Option<Arc<ActiveTrace>>,
}

#[derive(Debug)]
struct ActiveTrace {
    trace_id: TraceId,
    root_span: SpanId,
    remote_parent: Option<SpanId>,
    state: Mutex<ActiveState>,
}

#[derive(Debug)]
struct ActiveState {
    ids: IdGen,
    children: Vec<TraceSpan>,
}

impl TraceContext {
    /// A context that collects nothing (the unsampled fast path).
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Starts collecting a new trace rooted at `root_span`. Child span
    /// identifiers derive deterministically from the root identifier, so
    /// a fixed [`IdGen`] seed pins the whole tree.
    #[must_use]
    pub fn root(trace_id: TraceId, root_span: SpanId, remote_parent: Option<SpanId>) -> Self {
        Self {
            inner: Some(Arc::new(ActiveTrace {
                trace_id,
                root_span,
                remote_parent,
                state: Mutex::new(ActiveState {
                    ids: IdGen::new(root_span.0),
                    children: Vec::with_capacity(8),
                }),
            })),
        }
    }

    /// Whether this request is being collected.
    #[must_use]
    pub fn is_sampled(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace identifier (when sampled).
    #[must_use]
    pub fn trace_id(&self) -> Option<TraceId> {
        self.inner.as_ref().map(|t| t.trace_id)
    }

    /// The root span identifier (when sampled).
    #[must_use]
    pub fn root_span(&self) -> Option<SpanId> {
        self.inner.as_ref().map(|t| t.root_span)
    }

    /// Closes a child span under the root. No-op when unsampled.
    pub fn child(&self, stage: Stage, start_nanos: u64, end_nanos: u64) {
        self.child_with(stage, start_nanos, end_nanos, Vec::new());
    }

    /// Closes an annotated child span under the root. No-op when
    /// unsampled.
    pub fn child_with(
        &self,
        stage: Stage,
        start_nanos: u64,
        end_nanos: u64,
        attrs: Vec<(String, String)>,
    ) {
        let Some(t) = &self.inner else { return };
        // lint: panic-ok(the trace mutex guards plain Vec pushes and an integer PRNG step; nothing inside can panic and poison it)
        let mut st = t.state.lock().expect("trace state lock");
        let span_id = st.ids.span_id();
        st.children.push(TraceSpan {
            span_id,
            parent: Some(t.root_span),
            stage,
            start_nanos,
            end_nanos,
            attrs,
        });
    }

    /// The `traceparent` header value announcing this trace
    /// (`00-<trace_id>-<root_span>-01`), when sampled.
    #[must_use]
    pub fn traceparent(&self) -> Option<String> {
        self.inner
            .as_ref()
            .map(|t| format!("00-{}-{}-01", t.trace_id, t.root_span))
    }

    /// Parses an incoming `traceparent` header: version 00, a non-zero
    /// 32-hex trace id, a non-zero 16-hex parent span id. Returns `None`
    /// (caller mints fresh ids) on any malformation.
    #[must_use]
    pub fn parse_traceparent(header: &str) -> Option<(TraceId, SpanId)> {
        let mut parts = header.trim().split('-');
        let version = parts.next()?;
        let trace_hex = parts.next()?;
        let span_hex = parts.next()?;
        let _flags = parts.next()?;
        if parts.next().is_some() || version != "00" {
            return None;
        }
        if trace_hex.len() != 32 || span_hex.len() != 16 {
            return None;
        }
        let trace = u128::from_str_radix(trace_hex, 16).ok()?;
        let span = u64::from_str_radix(span_hex, 16).ok()?;
        if trace == 0 || span == 0 {
            return None;
        }
        Some((TraceId(trace), SpanId(span)))
    }

    /// Closes the root span and assembles the completed [`Trace`]: root
    /// first, then children in completion order. Returns `None` when
    /// unsampled. Children recorded after `finish` are discarded.
    #[must_use]
    pub fn finish(
        &self,
        stage: Stage,
        start_nanos: u64,
        end_nanos: u64,
        attrs: Vec<(String, String)>,
    ) -> Option<Trace> {
        let t = self.inner.as_ref()?;
        let children = {
            // lint: panic-ok(the trace mutex guards plain Vec pushes and an integer PRNG step; nothing inside can panic and poison it)
            let mut st = t.state.lock().expect("trace state lock");
            std::mem::take(&mut st.children)
        };
        let mut spans = Vec::with_capacity(children.len() + 1);
        spans.push(TraceSpan {
            span_id: t.root_span,
            parent: t.remote_parent,
            stage,
            start_nanos,
            end_nanos,
            attrs,
        });
        spans.extend(children);
        Some(Trace {
            trace_id: t.trace_id,
            spans,
        })
    }
}

/// A bounded ring buffer of completed traces: fixed capacity, oldest
/// evicted first. Slots are allocated once at construction; `push` only
/// moves the trace into a slot, so the hot path never allocates.
#[derive(Debug)]
pub struct TraceSink {
    ring: Mutex<Ring>,
    capacity: usize,
}

#[derive(Debug)]
struct Ring {
    slots: Vec<Option<Trace>>,
    next: usize,
    len: usize,
}

impl TraceSink {
    /// Creates a sink holding at most `capacity` traces (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        Self {
            ring: Mutex::new(Ring {
                slots,
                next: 0,
                len: 0,
            }),
            capacity,
        }
    }

    /// Maximum traces retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Traces currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        // lint: panic-ok(the ring mutex guards index arithmetic and slot moves only; nothing inside can panic and poison it)
        self.ring.lock().expect("trace ring lock").len
    }

    /// Whether the sink holds no traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Retains `trace`, evicting the oldest when full.
    pub fn push(&self, trace: Trace) {
        // lint: panic-ok(the ring mutex guards index arithmetic and slot moves only; nothing inside can panic and poison it)
        let mut r = self.ring.lock().expect("trace ring lock");
        let next = r.next;
        r.slots[next] = Some(trace);
        r.next = (next + 1) % self.capacity;
        r.len = (r.len + 1).min(self.capacity);
    }

    /// Up to `max` retained traces, newest first.
    #[must_use]
    pub fn recent(&self, max: usize) -> Vec<Trace> {
        // lint: panic-ok(the ring mutex guards index arithmetic and slot moves only; nothing inside can panic and poison it)
        // lint: lock-order-ok(the `push` under this guard is Vec::push on a local buffer, not TraceSink::push; the ring lock is taken exactly once)
        let r = self.ring.lock().expect("trace ring lock");
        let take = max.min(r.len);
        let mut out = Vec::with_capacity(take);
        for back in 1..=take {
            let idx = (r.next + self.capacity - back) % self.capacity;
            if let Some(t) = &r.slots[idx] {
                out.push(t.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idgen_is_deterministic_and_nonzero() {
        let mut a = IdGen::new(42);
        let mut b = IdGen::new(42);
        assert_eq!(a.trace_id(), b.trace_id());
        assert_eq!(a.span_id(), b.span_id());
        let mut c = IdGen::new(43);
        assert_ne!(IdGen::new(42).trace_id(), c.trace_id());
        for _ in 0..1_000 {
            assert_ne!(c.span_id().0, 0);
        }
    }

    #[test]
    fn id_display_is_fixed_width_hex() {
        assert_eq!(TraceId(1).to_string().len(), 32);
        assert_eq!(SpanId(1).to_string().len(), 16);
        assert_eq!(SpanId(0xabc).to_string(), "0000000000000abc");
    }

    #[test]
    fn sampling_policies() {
        assert!(!Sampling::Off.sample(0));
        assert!(Sampling::Always.sample(7));
        let every4 = Sampling::SampleEvery(4);
        let hits: Vec<u64> = (0..12).filter(|&s| every4.sample(s)).collect();
        assert_eq!(hits, vec![0, 4, 8]);
        assert!(!Sampling::SampleEvery(0).sample(0), "n=0 behaves as Off");
    }

    #[test]
    fn sampler_counts_deterministically() {
        let s = Sampler::new(Sampling::SampleEvery(3));
        let decisions: Vec<bool> = (0..6).map(|_| s.decide()).collect();
        assert_eq!(decisions, vec![true, false, false, true, false, false]);
    }

    #[test]
    fn traceparent_roundtrip_and_rejection() {
        let mut ids = IdGen::new(9);
        let ctx = TraceContext::root(ids.trace_id(), ids.span_id(), None);
        let header = ctx.traceparent().unwrap();
        let (tid, sid) = TraceContext::parse_traceparent(&header).unwrap();
        assert_eq!(Some(tid), ctx.trace_id());
        assert_eq!(Some(sid), ctx.root_span());

        for bad in [
            "",
            "00",
            "01-0123456789abcdef0123456789abcdef-0123456789abcdef-01",
            "00-0123456789abcdef0123456789abcde-0123456789abcdef-01",
            "00-00000000000000000000000000000000-0123456789abcdef-01",
            "00-0123456789abcdef0123456789abcdef-0000000000000000-01",
            "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01-xx",
            "00-zzzz56789abcdef0123456789abcdef0-0123456789abcdef-01",
        ] {
            assert!(
                TraceContext::parse_traceparent(bad).is_none(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn disabled_context_is_a_noop() {
        let ctx = TraceContext::disabled();
        assert!(!ctx.is_sampled());
        ctx.child(Stage::QueueWait, 0, 5);
        assert!(ctx.traceparent().is_none());
        assert!(ctx.finish(Stage::Request, 0, 10, vec![]).is_none());
    }

    #[test]
    fn finish_assembles_root_first_with_children_in_order() {
        let mut ids = IdGen::new(1);
        let remote = SpanId(0xdead);
        let ctx = TraceContext::root(ids.trace_id(), ids.span_id(), Some(remote));
        ctx.child(Stage::QueueWait, 10, 20);
        ctx.child_with(
            Stage::EngineApply,
            20,
            70,
            vec![("rows".to_string(), "5".to_string())],
        );
        let trace = ctx
            .finish(
                Stage::Request,
                0,
                100,
                vec![("route".to_string(), "ingest".to_string())],
            )
            .unwrap();
        assert_eq!(trace.spans.len(), 3);
        assert_eq!(trace.root().stage, Stage::Request);
        assert_eq!(trace.root().parent, Some(remote));
        assert_eq!(trace.spans[1].stage, Stage::QueueWait);
        assert_eq!(trace.spans[2].stage, Stage::EngineApply);
        assert_eq!(trace.spans[1].parent, ctx.root_span());
        assert_eq!(trace.duration_nanos(), 100);
        assert_eq!(trace.child_duration_nanos(), 60);
    }

    #[test]
    fn trace_json_is_deterministic_for_a_fixed_seed() {
        let build = || {
            let mut ids = IdGen::new(0x5EED);
            let ctx = TraceContext::root(ids.trace_id(), ids.span_id(), None);
            ctx.child(Stage::WalAppend, 3, 9);
            ctx.finish(
                Stage::Request,
                0,
                12,
                vec![("status".to_string(), "200".to_string())],
            )
            .unwrap()
            .to_json()
        };
        let first = build();
        assert!(first.contains("\"stage\":\"wal_append\""));
        assert!(first.contains("\"duration_nanos\":12"));
        assert!(first.contains("\"status\":\"200\""));
        for _ in 0..20 {
            assert_eq!(build(), first, "trace JSON must be rebuild-stable");
        }
    }

    #[test]
    fn sink_is_bounded_and_evicts_oldest() {
        let sink = TraceSink::new(3);
        assert!(sink.is_empty());
        let mut ids = IdGen::new(2);
        let traces: Vec<Trace> = (0..5)
            .map(|i| {
                let ctx = TraceContext::root(ids.trace_id(), ids.span_id(), None);
                ctx.finish(Stage::Request, 0, i, vec![]).unwrap()
            })
            .collect();
        for t in &traces {
            sink.push(t.clone());
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.capacity(), 3);
        let recent = sink.recent(10);
        assert_eq!(recent.len(), 3);
        // Newest first; the two oldest were evicted.
        assert_eq!(recent[0].trace_id, traces[4].trace_id);
        assert_eq!(recent[1].trace_id, traces[3].trace_id);
        assert_eq!(recent[2].trace_id, traces[2].trace_id);
        assert_eq!(sink.recent(1).len(), 1);
    }

    #[test]
    fn stage_labels_are_stable() {
        let labels: Vec<&str> = Stage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec![
                "request",
                "parse",
                "handle",
                "write",
                "queue_wait",
                "engine_apply",
                "publish",
                "wal_append",
                "fsync",
                "checkpoint"
            ]
        );
    }
}
