//! Pluggable time sources.
//!
//! Lint rule L4 bans ambient time reads in library crates because sketch
//! behavior must be a pure function of `(input, seed)`. Telemetry still
//! needs wall time, so the workspace routes every time read through the
//! [`Clock`] trait: binaries install [`MonotonicClock`] (the single
//! sanctioned `Instant::now` call site, tagged `lint: clock-impl`), and
//! tests install [`ManualClock`], which only moves when advanced by hand.
//! Clock readings feed *metrics only* — never sketch state — so replicas
//! fed the same stream still produce identical summaries.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A monotonic nanosecond time source.
///
/// Implementations must be monotone (readings never decrease) and cheap —
/// the engines read the clock a couple of times per *batch*, never per
/// row.
pub trait Clock: std::fmt::Debug + Send + Sync {
    /// Nanoseconds since an arbitrary fixed origin (e.g. first read).
    fn now_nanos(&self) -> u64;
}

/// Real monotonic time, anchored at the first reading.
///
/// The anchor lives inside the first `now_nanos` call rather than the
/// constructor so that *every* `Instant::now` in the workspace sits
/// lexically inside this `Clock` impl — the shape lint rule L4's
/// `clock-impl` carve-out recognizes.
#[derive(Debug, Default)]
pub struct MonotonicClock {
    origin: OnceLock<Instant>,
}

impl MonotonicClock {
    /// Creates an unanchored clock; the origin is fixed at the first read.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // lint: clock-impl(the one sanctioned ambient-time read; feeds latency metrics only, never sketch state)
        let now = Instant::now();
        let origin = self.origin.get_or_init(|| now);
        // u64 nanos covers ~584 years of process uptime.
        now.saturating_duration_since(*origin).as_nanos() as u64
    }
}

/// A deterministic clock for tests: reads only change via [`advance`]
/// (or [`set`]), so timing-derived metrics are reproducible bit-for-bit.
///
/// [`advance`]: ManualClock::advance
/// [`set`]: ManualClock::set
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// Creates a clock reading zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock reading `nanos`.
    #[must_use]
    pub fn starting_at(nanos: u64) -> Self {
        Self {
            nanos: AtomicU64::new(nanos),
        }
    }

    /// Moves the clock forward by `delta_nanos`.
    pub fn advance(&self, delta_nanos: u64) {
        self.nanos.fetch_add(delta_nanos, Ordering::Relaxed);
    }

    /// Sets the absolute reading. Callers are responsible for keeping it
    /// monotone.
    pub fn set(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let c = ManualClock::new();
        assert_eq!(c.now_nanos(), 0);
        assert_eq!(c.now_nanos(), 0);
        c.advance(250);
        assert_eq!(c.now_nanos(), 250);
        c.set(1_000);
        assert_eq!(c.now_nanos(), 1_000);
    }

    #[test]
    fn monotonic_clock_is_monotone_and_starts_near_zero() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
        // The first read anchors the origin, so it is exactly zero.
        assert_eq!(a, 0);
    }

    #[test]
    fn clock_trait_objects_are_shareable() {
        let c: std::sync::Arc<dyn Clock> = std::sync::Arc::new(ManualClock::starting_at(7));
        assert_eq!(c.now_nanos(), 7);
    }
}
