//! The Boyer–Moore majority-vote algorithm (1981).
//!
//! Finds the majority element of a sequence — if one exists — using a single
//! candidate and a single counter: matching items increment, mismatches
//! decrement, and a zero counter adopts the next item as candidate. The
//! survey cites it as the seed from which Misra–Gries generalized to all
//! frequent items.

use sketches_core::{Clear, MergeSketch, SketchResult, SpaceUsage, Update};

/// The Boyer–Moore majority-vote state: one candidate, one counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BoyerMoore<T> {
    candidate: Option<T>,
    count: u64,
    items_seen: u64,
}

impl<T: Eq + Clone> BoyerMoore<T> {
    /// Creates an empty majority tracker.
    #[must_use]
    pub fn new() -> Self {
        Self {
            candidate: None,
            count: 0,
            items_seen: 0,
        }
    }

    /// The current candidate. If the stream has a strict majority element,
    /// this *is* it; otherwise the candidate is arbitrary and a second
    /// verification pass is required.
    #[must_use]
    pub fn candidate(&self) -> Option<&T> {
        self.candidate.as_ref()
    }

    /// Number of items absorbed.
    #[must_use]
    pub fn items_seen(&self) -> u64 {
        self.items_seen
    }

    /// The surplus vote count for the candidate.
    #[must_use]
    pub fn surplus(&self) -> u64 {
        self.count
    }
}

impl<T: Eq + Clone> Update<T> for BoyerMoore<T> {
    fn update(&mut self, item: &T) {
        self.items_seen += 1;
        match &self.candidate {
            Some(c) if c == item => self.count += 1,
            _ if self.count == 0 => {
                self.candidate = Some(item.clone());
                self.count = 1;
            }
            _ => self.count -= 1,
        }
    }
}

impl<T> Clear for BoyerMoore<T> {
    fn clear(&mut self) {
        self.candidate = None;
        self.count = 0;
        self.items_seen = 0;
    }
}

impl<T> SpaceUsage for BoyerMoore<T> {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

impl<T: Eq + Clone> MergeSketch for BoyerMoore<T> {
    /// Merges two majority states by cancelling opposing surpluses — the
    /// same weighted vote the streaming algorithm performs.
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        self.items_seen += other.items_seen;
        match (&self.candidate, &other.candidate) {
            (Some(a), Some(b)) if a == b => self.count += other.count,
            (_, Some(b)) => {
                if other.count > self.count {
                    self.candidate = Some(b.clone());
                    self.count = other.count - self.count;
                } else {
                    self.count -= other.count;
                    if self.count == 0 {
                        self.candidate = None;
                    }
                }
            }
            (_, None) => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_strict_majority() {
        let mut bm = BoyerMoore::new();
        let stream = [1, 2, 1, 3, 1, 1, 2, 1];
        for x in &stream {
            bm.update(x);
        }
        assert_eq!(bm.candidate(), Some(&1));
        assert_eq!(bm.items_seen(), 8);
    }

    #[test]
    fn majority_at_exactly_half_plus_one() {
        let mut bm = BoyerMoore::new();
        for _ in 0..51 {
            bm.update(&"a");
        }
        for i in 0..50 {
            let s: &str = format!("x{i}").leak();
            bm.update(&s);
        }
        assert_eq!(bm.candidate(), Some(&"a"));
    }

    #[test]
    fn adversarial_order_still_finds_majority() {
        // Alternate minority/majority to exercise the cancel logic.
        let mut bm = BoyerMoore::new();
        for i in 0..100u32 {
            bm.update(&i); // 100 distinct minorities
            bm.update(&u32::MAX);
            bm.update(&u32::MAX); // 200 majority votes
        }
        assert_eq!(bm.candidate(), Some(&u32::MAX));
    }

    #[test]
    fn merge_agrees_with_single_stream() {
        let stream: Vec<u32> = (0..300)
            .map(|i| if i % 3 == 0 { 7 } else { i })
            .chain(std::iter::repeat_n(7, 200))
            .collect();
        let mut whole = BoyerMoore::new();
        for x in &stream {
            whole.update(x);
        }
        let mut left = BoyerMoore::new();
        let mut right = BoyerMoore::new();
        for x in &stream[..250] {
            left.update(x);
        }
        for x in &stream[250..] {
            right.update(x);
        }
        left.merge(&right).unwrap();
        // 7 appears 100 + 200 = 300 of 500 items: a strict majority, so both
        // must report it.
        assert_eq!(whole.candidate(), Some(&7));
        assert_eq!(left.candidate(), Some(&7));
        assert_eq!(left.items_seen(), 500);
    }

    #[test]
    fn clear_resets() {
        let mut bm = BoyerMoore::new();
        bm.update(&5);
        bm.clear();
        assert_eq!(bm.candidate(), None);
        assert_eq!(bm.items_seen(), 0);
    }

    #[test]
    fn empty_merge_is_noop() {
        let mut a: BoyerMoore<u32> = BoyerMoore::new();
        a.update(&1);
        let b = BoyerMoore::new();
        a.merge(&b).unwrap();
        assert_eq!(a.candidate(), Some(&1));
    }
}
