//! The Count-Min sketch (Cormode & Muthukrishnan, J. Algorithms 2005).
//!
//! A `d × w` grid of counters; each row hashes every item to one counter.
//! Point queries take the minimum over rows, giving estimates with one-sided
//! error: `f̂ ≥ f` always, and `f̂ ≤ f + ε·‖f‖₁` with probability `1 − δ`
//! for `w = ⌈e/ε⌉`, `d = ⌈ln(1/δ)⌉`. The survey's Twitter view-counting and
//! Apple private-telemetry examples are both Count-Min instances.
//!
//! Also provided:
//! * **conservative update** — only raise the counters that determine the
//!   current minimum, a standard industrial accuracy boost;
//! * [`CmRangeSketch`] — dyadic decomposition over an integer domain for
//!   range counts, approximate ranks, and quantiles.

use std::hash::Hash;

use sketches_core::{
    check_open_unit, Clear, FrequencyEstimator, MergeSketch, SketchError, SketchResult, SpaceUsage,
    Update,
};
use sketches_hash::hash_item;
use sketches_hash::mix::{fastrange64, mix64_seeded};

/// Per-row domain-separation constants (any fixed distinct values work).
#[inline]
fn row_seed(seed: u64, row: usize) -> u64 {
    seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(row as u64 + 1))
}

/// A Count-Min sketch with `depth` rows of `width` counters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CountMinSketch {
    counters: Vec<u64>,
    width: usize,
    depth: usize,
    seed: u64,
    total: u64,
}

impl CountMinSketch {
    /// Creates a sketch with explicit dimensions.
    ///
    /// # Errors
    /// Returns an error if `width < 2` or `depth` outside `1..=32`.
    pub fn new(width: usize, depth: usize, seed: u64) -> SketchResult<Self> {
        if width < 2 {
            return Err(SketchError::invalid("width", "need width >= 2"));
        }
        sketches_core::check_range("depth", depth, 1, 32)?;
        Ok(Self {
            counters: vec![0u64; width * depth],
            width,
            depth,
            seed,
            total: 0,
        })
    }

    /// Creates a sketch guaranteeing error at most `epsilon·‖f‖₁` with
    /// probability `1 − delta`: `w = ⌈e/ε⌉`, `d = ⌈ln(1/δ)⌉`.
    ///
    /// # Errors
    /// Returns an error unless `epsilon, delta ∈ (0, 1)`, or if `delta` is
    /// so small that the required depth exceeds the supported maximum of 32
    /// rows (δ < e⁻³² ≈ 1.3e-14) — the guarantee is never silently weakened.
    pub fn from_error_bounds(epsilon: f64, delta: f64, seed: u64) -> SketchResult<Self> {
        check_open_unit("epsilon", epsilon, 0.0, 1.0)?;
        check_open_unit("delta", delta, 0.0, 1.0)?;
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        if depth > 32 {
            return Err(SketchError::invalid(
                "delta",
                format!("requires depth {depth} > 32 supported rows; use delta >= 1.3e-14"),
            ));
        }
        Self::new(width, depth, seed)
    }

    #[inline]
    fn cell(&self, hash: u64, row: usize) -> usize {
        let h = mix64_seeded(hash, row_seed(self.seed, row));
        row * self.width + fastrange64(h, self.width as u64) as usize
    }

    /// Adds `weight` occurrences of a pre-hashed item.
    pub fn update_hash(&mut self, hash: u64, weight: u64) {
        for row in 0..self.depth {
            let c = self.cell(hash, row);
            self.counters[c] += weight;
        }
        self.total += weight;
    }

    /// Conservative update: raise only the counters below `min + weight`,
    /// never increasing any counter beyond what the point query needs.
    pub fn update_hash_conservative(&mut self, hash: u64, weight: u64) {
        let est = self.estimate_hash(hash);
        let target = est + weight;
        for row in 0..self.depth {
            let c = self.cell(hash, row);
            if self.counters[c] < target {
                self.counters[c] = target;
            }
        }
        self.total += weight;
    }

    /// Point query for a pre-hashed item: the minimum over rows.
    #[must_use]
    pub fn estimate_hash(&self, hash: u64) -> u64 {
        (0..self.depth)
            .map(|row| self.counters[self.cell(hash, row)])
            .min()
            .unwrap_or(0)
    }

    /// Adds `weight` occurrences of `item`.
    pub fn update_weighted<T: Hash + ?Sized>(&mut self, item: &T, weight: u64) {
        self.update_hash(hash_item(item, 0xC033_7311), weight);
    }

    /// Conservative-update version of [`Self::update_weighted`].
    pub fn update_conservative<T: Hash + ?Sized>(&mut self, item: &T, weight: u64) {
        self.update_hash_conservative(hash_item(item, 0xC033_7311), weight);
    }

    /// Estimated inner product `⟨f, g⟩` of the two sketched frequency
    /// vectors: the minimum over rows of the row dot products.
    ///
    /// # Errors
    /// Returns an error if the sketches are incompatible.
    pub fn inner_product(&self, other: &Self) -> SketchResult<u64> {
        self.check_compatible(other)?;
        let ip = (0..self.depth)
            .map(|row| {
                let a = &self.counters[row * self.width..(row + 1) * self.width];
                let b = &other.counters[row * self.width..(row + 1) * self.width];
                // Accumulate in u128: counters near 2^32 would overflow a
                // u64 product.
                a.iter()
                    .zip(b)
                    .map(|(&x, &y)| u128::from(x) * u128::from(y))
                    .sum::<u128>()
            })
            .min()
            .unwrap_or(0);
        Ok(u64::try_from(ip).unwrap_or(u64::MAX))
    }

    fn check_compatible(&self, other: &Self) -> SketchResult<()> {
        if self.width != other.width || self.depth != other.depth {
            return Err(SketchError::incompatible("dimensions differ"));
        }
        if self.seed != other.seed {
            return Err(SketchError::incompatible("seeds differ"));
        }
        Ok(())
    }

    /// Total weight absorbed (`‖f‖₁`).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Width `w` (counters per row).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Depth `d` (number of rows).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Per-row `(column, counter value)` pairs for `item` — the raw
    /// measurements behind the min-query. Used by wrappers that
    /// post-process counters (e.g. the differentially-private sketch,
    /// which adds per-counter noise before taking the min).
    #[must_use]
    pub fn row_values<T: Hash + ?Sized>(&self, item: &T) -> Vec<(usize, u64)> {
        let hash = hash_item(item, 0xC033_7311);
        (0..self.depth)
            .map(|row| {
                let cell = self.cell(hash, row);
                (cell - row * self.width, self.counters[cell])
            })
            .collect()
    }

    /// The guaranteed error bound `(e/w)·‖f‖₁` at the current total.
    #[must_use]
    pub fn error_bound(&self) -> f64 {
        std::f64::consts::E / self.width as f64 * self.total as f64
    }
}

impl<T: Hash + ?Sized> Update<T> for CountMinSketch {
    fn update(&mut self, item: &T) {
        self.update_weighted(item, 1);
    }
}

impl<T: Hash + ?Sized> FrequencyEstimator<T> for CountMinSketch {
    fn estimate(&self, item: &T) -> u64 {
        self.estimate_hash(hash_item(item, 0xC033_7311))
    }
}

impl Clear for CountMinSketch {
    fn clear(&mut self) {
        self.counters.fill(0);
        self.total = 0;
    }
}

impl SpaceUsage for CountMinSketch {
    fn space_bytes(&self) -> usize {
        self.counters.len() * std::mem::size_of::<u64>()
    }
}

impl MergeSketch for CountMinSketch {
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        self.check_compatible(other)?;
        for (a, &b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        self.total += other.total;
        Ok(())
    }
}

/// A dyadic Count-Min structure over the integer domain `[0, 2^domain_bits)`
/// supporting range counts, ranks, and quantiles.
///
/// Level `l` sketches the prefixes `x >> l`; a range decomposes into at most
/// `2·domain_bits` dyadic intervals, each answered by one sketch.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CmRangeSketch {
    levels: Vec<CountMinSketch>,
    domain_bits: u32,
    total: u64,
}

impl CmRangeSketch {
    /// Creates a range sketch over `[0, 2^domain_bits)` with per-level
    /// Count-Min dimensions `(width, depth)`.
    ///
    /// # Errors
    /// Returns an error for `domain_bits` outside `1..=63` or bad CM
    /// dimensions.
    pub fn new(domain_bits: u32, width: usize, depth: usize, seed: u64) -> SketchResult<Self> {
        sketches_core::check_range("domain_bits", domain_bits, 1, 63)?;
        let levels = (0..=domain_bits)
            .map(|l| CountMinSketch::new(width, depth, seed ^ (u64::from(l) << 32)))
            .collect::<SketchResult<Vec<_>>>()?;
        Ok(Self {
            levels,
            domain_bits,
            total: 0,
        })
    }

    /// Adds `weight` occurrences of the value `x`.
    ///
    /// # Errors
    /// Returns an error if `x` is outside `[0, 2^domain_bits)` — silently
    /// accepting it would inflate `total` with mass that no range query
    /// can see, corrupting ranks and quantiles.
    pub fn update(&mut self, x: u64, weight: u64) -> SketchResult<()> {
        if x >= (1u64 << self.domain_bits) {
            return Err(SketchError::invalid("x", "value outside domain"));
        }
        for (l, sketch) in self.levels.iter_mut().enumerate() {
            sketch.update_weighted(&(x >> l), weight);
        }
        self.total += weight;
        Ok(())
    }

    /// Estimated total weight of values in `[lo, hi]` (inclusive).
    #[must_use]
    pub fn range_count(&self, lo: u64, hi: u64) -> u64 {
        if lo > hi {
            return 0;
        }
        let mut sum = 0u64;
        let mut lo = lo;
        let mut hi = hi.min((1u64 << self.domain_bits) - 1);
        let mut level = 0usize;
        // Standard dyadic walk: peel misaligned endpoints, then climb.
        while lo <= hi {
            if lo & 1 == 1 {
                sum += self.levels[level].estimate(&lo);
                lo += 1;
            }
            if hi & 1 == 0 {
                sum += self.levels[level].estimate(&hi);
                if hi == 0 {
                    break;
                }
                hi -= 1;
            }
            if lo > hi {
                break;
            }
            lo >>= 1;
            hi >>= 1;
            level += 1;
        }
        sum
    }

    /// Approximate rank: estimated weight of values `<= x`.
    #[must_use]
    pub fn rank(&self, x: u64) -> u64 {
        self.range_count(0, x)
    }

    /// Approximate `q`-quantile (`q ∈ [0, 1]`) by binary search on rank.
    ///
    /// # Errors
    /// Returns [`SketchError::EmptySketch`] when nothing was absorbed, or an
    /// invalid-parameter error for `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SketchResult<u64> {
        if self.total == 0 {
            return Err(SketchError::EmptySketch);
        }
        if !(0.0..=1.0).contains(&q) {
            return Err(SketchError::invalid("q", "must be in [0, 1]"));
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let (mut lo, mut hi) = (0u64, (1u64 << self.domain_bits) - 1);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.rank(mid) >= target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Ok(lo)
    }

    /// Total weight absorbed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }
}

impl SpaceUsage for CmRangeSketch {
    fn space_bytes(&self) -> usize {
        self.levels.iter().map(SpaceUsage::space_bytes).sum()
    }
}

impl MergeSketch for CmRangeSketch {
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.domain_bits != other.domain_bits {
            return Err(SketchError::incompatible("domain sizes differ"));
        }
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            a.merge(b)?;
        }
        self.total += other.total;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn rejects_bad_params() {
        assert!(CountMinSketch::new(1, 4, 0).is_err());
        assert!(CountMinSketch::new(16, 0, 0).is_err());
        assert!(CountMinSketch::new(16, 33, 0).is_err());
        assert!(CountMinSketch::from_error_bounds(0.0, 0.1, 0).is_err());
        assert!(CountMinSketch::from_error_bounds(0.1, 1.0, 0).is_err());
    }

    #[test]
    fn error_bound_sizing() {
        let cm = CountMinSketch::from_error_bounds(0.01, 0.01, 0).unwrap();
        assert!(cm.width() >= 272); // e/0.01 ≈ 271.8
        assert!(cm.depth() >= 5); // ln(100) ≈ 4.6
    }

    #[test]
    fn never_underestimates() {
        let mut cm = CountMinSketch::new(64, 4, 1).unwrap();
        let mut exact: HashMap<u32, u64> = HashMap::new();
        for i in 0..5_000u32 {
            let item = i % 200;
            cm.update(&item);
            *exact.entry(item).or_insert(0) += 1;
        }
        for (item, &truth) in &exact {
            assert!(
                FrequencyEstimator::estimate(&cm, item) >= truth,
                "underestimate for {item}"
            );
        }
    }

    #[test]
    fn error_within_epsilon_l1() {
        let mut cm = CountMinSketch::from_error_bounds(0.005, 0.01, 2).unwrap();
        let mut exact: HashMap<u32, u64> = HashMap::new();
        // Skewed stream.
        for i in 0..200u32 {
            let weight = 10_000 / u64::from(i + 1);
            cm.update_weighted(&i, weight);
            *exact.entry(i).or_insert(0) += weight;
        }
        let bound = cm.error_bound().ceil() as u64;
        let mut violations = 0;
        for (item, &truth) in &exact {
            let est = FrequencyEstimator::estimate(&cm, item);
            if est - truth > bound {
                violations += 1;
            }
        }
        // δ = 1% per item; allow a few.
        assert!(
            violations <= 4,
            "{violations} items exceeded the ε‖f‖₁ bound"
        );
    }

    #[test]
    fn conservative_update_never_worse() {
        let mut plain = CountMinSketch::new(32, 4, 3).unwrap();
        let mut cons = CountMinSketch::new(32, 4, 3).unwrap();
        let mut exact: HashMap<u32, u64> = HashMap::new();
        for i in 0..20_000u32 {
            let item = i % 500;
            plain.update(&item);
            cons.update_conservative(&item, 1);
            *exact.entry(item).or_insert(0) += 1;
        }
        let mut plain_err = 0u64;
        let mut cons_err = 0u64;
        for (item, &truth) in &exact {
            let pe = FrequencyEstimator::estimate(&plain, item);
            let ce = FrequencyEstimator::estimate(&cons, item);
            assert!(ce >= truth, "conservative underestimated");
            plain_err += pe - truth;
            cons_err += ce - truth;
        }
        assert!(
            cons_err <= plain_err,
            "conservative ({cons_err}) should not exceed plain ({plain_err})"
        );
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = CountMinSketch::new(128, 5, 4).unwrap();
        let mut b = CountMinSketch::new(128, 5, 4).unwrap();
        let mut whole = CountMinSketch::new(128, 5, 4).unwrap();
        for i in 0..1000u32 {
            a.update(&(i % 50));
            whole.update(&(i % 50));
        }
        for i in 0..1000u32 {
            b.update(&(i % 70));
            whole.update(&(i % 70));
        }
        a.merge(&b).unwrap();
        assert_eq!(a, whole);
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = CountMinSketch::new(32, 4, 0).unwrap();
        assert!(a.merge(&CountMinSketch::new(64, 4, 0).unwrap()).is_err());
        assert!(a.merge(&CountMinSketch::new(32, 5, 0).unwrap()).is_err());
        assert!(a.merge(&CountMinSketch::new(32, 4, 1).unwrap()).is_err());
    }

    #[test]
    fn inner_product_estimate() {
        let mut a = CountMinSketch::new(512, 5, 5).unwrap();
        let mut b = CountMinSketch::new(512, 5, 5).unwrap();
        // f = {1: 100, 2: 50}; g = {1: 10, 3: 7} → ⟨f,g⟩ = 1000.
        a.update_weighted(&1u32, 100);
        a.update_weighted(&2u32, 50);
        b.update_weighted(&1u32, 10);
        b.update_weighted(&3u32, 7);
        let ip = a.inner_product(&b).unwrap();
        assert!(ip >= 1000, "inner product never underestimates");
        assert!(ip <= 1100, "inner product {ip} too loose");
    }

    #[test]
    fn weighted_equals_repeated() {
        let mut a = CountMinSketch::new(64, 3, 6).unwrap();
        let mut b = CountMinSketch::new(64, 3, 6).unwrap();
        for _ in 0..9 {
            a.update(&42u32);
        }
        b.update_weighted(&42u32, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn clear_and_space() {
        let mut cm = CountMinSketch::new(100, 4, 0).unwrap();
        cm.update(&1u8);
        cm.clear();
        assert_eq!(FrequencyEstimator::estimate(&cm, &1u8), 0);
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.space_bytes(), 100 * 4 * 8);
    }

    // ---- dyadic range sketch ----

    #[test]
    fn range_count_accuracy() {
        let mut rs = CmRangeSketch::new(16, 2048, 5, 7).unwrap();
        // Uniform weights on 0..1000.
        for x in 0..1000u64 {
            rs.update(x, 1).unwrap();
        }
        let est = rs.range_count(100, 199);
        assert!(est >= 100, "range never underestimates");
        assert!(est <= 130, "range estimate {est} too loose");
        assert_eq!(rs.range_count(500, 499), 0, "inverted range is empty");
        assert!(
            rs.update(1 << 16, 1).is_err(),
            "out-of-domain update must be rejected"
        );
    }

    #[test]
    fn range_covers_whole_domain() {
        let mut rs = CmRangeSketch::new(10, 512, 4, 8).unwrap();
        for x in 0..500u64 {
            rs.update(x, 2).unwrap();
        }
        let est = rs.range_count(0, 1023);
        assert!(est >= 1000);
        assert!(est <= 1100);
    }

    #[test]
    fn quantiles_from_ranks() {
        let mut rs = CmRangeSketch::new(16, 4096, 5, 9).unwrap();
        for x in 0..10_000u64 {
            rs.update(x, 1).unwrap();
        }
        let median = rs.quantile(0.5).unwrap();
        assert!(
            (4_500..=5_500).contains(&median),
            "median estimate {median}"
        );
        let p99 = rs.quantile(0.99).unwrap();
        assert!((9_700..=10_000).contains(&p99), "p99 estimate {p99}");
        assert!(rs.quantile(1.5).is_err());
        assert!(CmRangeSketch::new(8, 64, 3, 0)
            .unwrap()
            .quantile(0.5)
            .is_err());
    }

    #[test]
    fn range_merge() {
        let mut a = CmRangeSketch::new(8, 256, 4, 10).unwrap();
        let mut b = CmRangeSketch::new(8, 256, 4, 10).unwrap();
        for x in 0..100u64 {
            a.update(x, 1).unwrap();
            b.update(x + 100, 1).unwrap();
        }
        a.merge(&b).unwrap();
        let est = a.range_count(0, 255);
        assert!((200..=220).contains(&est), "merged range {est}");
        assert!(a
            .merge(&CmRangeSketch::new(9, 256, 4, 10).unwrap())
            .is_err());
    }
}
