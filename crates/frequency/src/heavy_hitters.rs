//! A heavy-hitters tracker combining a linear sketch with a candidate set.
//!
//! A Count-Min sketch alone estimates frequencies but cannot *enumerate*
//! the frequent items. The standard fix — used by Twitter-style view
//! counters and most production deployments — is to keep the sketch for
//! counting plus a small heap of the current top candidates, refreshed on
//! every update. This module implements that composition generically.

use std::collections::HashMap;
use std::hash::Hash;

use sketches_core::{
    Clear, FrequencyEstimator, MergeSketch, SketchError, SketchResult, SpaceUsage, Update,
};

use crate::count_min::CountMinSketch;

/// A Count-Min-backed tracker reporting items above a `φ·n` threshold.
#[derive(Debug, Clone)]
pub struct HeavyHittersTracker<T> {
    sketch: CountMinSketch,
    /// Current candidates with their sketch estimates.
    candidates: HashMap<T, u64>,
    /// Maximum number of candidates retained.
    capacity: usize,
    phi: f64,
}

impl<T: Hash + Eq + Ord + Clone> HeavyHittersTracker<T> {
    /// Creates a tracker reporting items above `phi · n`, keeping at most
    /// `capacity` candidates, over a `(width, depth)` Count-Min sketch.
    ///
    /// # Errors
    /// Returns an error for `phi` outside `(0, 1)`, zero capacity, or bad
    /// sketch dimensions.
    pub fn new(
        phi: f64,
        capacity: usize,
        width: usize,
        depth: usize,
        seed: u64,
    ) -> SketchResult<Self> {
        sketches_core::check_open_unit("phi", phi, 0.0, 1.0)?;
        if capacity == 0 {
            return Err(SketchError::invalid("capacity", "must be positive"));
        }
        Ok(Self {
            sketch: CountMinSketch::new(width, depth, seed)?,
            candidates: HashMap::with_capacity(capacity + 1),
            capacity,
            phi,
        })
    }

    /// Absorbs `weight` occurrences of `item`, refreshing the candidates.
    pub fn update_weighted(&mut self, item: &T, weight: u64) {
        self.sketch.update_weighted(item, weight);
        let est = FrequencyEstimator::estimate(&self.sketch, item);
        let threshold = (self.phi * self.sketch.total() as f64).floor() as u64;
        if est >= threshold.max(1) {
            self.candidates.insert(item.clone(), est);
            if self.candidates.len() > self.capacity {
                self.evict_below_threshold();
            }
        }
    }

    /// Drops candidates that have fallen below the (growing) threshold; if
    /// still over capacity, drops the smallest — ties broken by item order,
    /// so the surviving set never depends on hash order.
    fn evict_below_threshold(&mut self) {
        let threshold = (self.phi * self.sketch.total() as f64).floor().max(1.0) as u64;
        self.candidates.retain(|_, &mut est| est >= threshold);
        while self.candidates.len() > self.capacity {
            let weakest = self
                .candidates
                // lint: sorted-iteration-ok(min over the total order (estimate, item) is independent of iteration order)
                .iter()
                .min_by(|a, b| a.1.cmp(b.1).then_with(|| a.0.cmp(b.0)))
                .map(|(t, _)| t.clone());
            match weakest {
                Some(w) => self.candidates.remove(&w),
                // Unreachable (len > capacity >= 1), but a clean exit beats
                // a panic on an impossible state.
                None => break,
            };
        }
    }

    /// All current heavy hitters `(item, estimate)`, sorted by descending
    /// estimate with ties broken by ascending item — a total order, so the
    /// report is identical across runs regardless of hash-map state.
    ///
    /// Estimates are re-read from the sketch (they may have grown since the
    /// candidate was recorded) and items below `φ·n` are filtered out.
    #[must_use]
    pub fn heavy_hitters(&self) -> Vec<(T, u64)> {
        let threshold = ((self.phi * self.sketch.total() as f64).floor() as u64).max(1);
        let mut out: Vec<(T, u64)> = self
            .candidates
            // lint: sorted-iteration-ok(collected then fully sorted by the (count, item) total order below)
            .keys()
            .map(|t| (t.clone(), FrequencyEstimator::estimate(&self.sketch, t)))
            .filter(|(_, est)| *est >= threshold)
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Point estimate for any item (from the backing sketch).
    #[must_use]
    pub fn estimate(&self, item: &T) -> u64 {
        FrequencyEstimator::estimate(&self.sketch, item)
    }

    /// Total stream weight absorbed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.sketch.total()
    }

    /// The reporting threshold fraction φ.
    #[must_use]
    pub fn phi(&self) -> f64 {
        self.phi
    }
}

impl<T: Hash + Eq + Ord + Clone> Update<T> for HeavyHittersTracker<T> {
    fn update(&mut self, item: &T) {
        self.update_weighted(item, 1);
    }
}

impl<T> Clear for HeavyHittersTracker<T> {
    fn clear(&mut self) {
        self.sketch.clear();
        self.candidates.clear();
    }
}

impl<T> SpaceUsage for HeavyHittersTracker<T> {
    fn space_bytes(&self) -> usize {
        self.sketch.space_bytes()
            + self.capacity * (std::mem::size_of::<T>() + std::mem::size_of::<u64>())
    }
}

impl<T: Hash + Eq + Ord + Clone> MergeSketch for HeavyHittersTracker<T> {
    /// Merges the backing sketches, unions the candidate sets, and
    /// re-filters against the combined threshold.
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if (self.phi - other.phi).abs() > f64::EPSILON || self.capacity != other.capacity {
            return Err(SketchError::incompatible("phi or capacity differs"));
        }
        self.sketch.merge(&other.sketch)?;
        // lint: sorted-iteration-ok(each key is inserted into a map keyed by itself; the result is iteration-order independent)
        for item in other.candidates.keys() {
            let est = FrequencyEstimator::estimate(&self.sketch, item);
            self.candidates.insert(item.clone(), est);
        }
        self.evict_below_threshold();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zipf_like(n: usize, universe: u32) -> Vec<u32> {
        // Deterministic: item i appears proportional to 1/(i+1).
        let mut v = Vec::with_capacity(n);
        let weights: Vec<f64> = (0..universe).map(|i| 1.0 / f64::from(i + 1)).collect();
        let total: f64 = weights.iter().sum();
        for (i, w) in weights.iter().enumerate() {
            let reps = ((w / total) * n as f64).round() as usize;
            v.extend(std::iter::repeat_n(i as u32, reps));
        }
        v
    }

    #[test]
    fn rejects_bad_params() {
        assert!(HeavyHittersTracker::<u32>::new(0.0, 10, 64, 4, 0).is_err());
        assert!(HeavyHittersTracker::<u32>::new(1.0, 10, 64, 4, 0).is_err());
        assert!(HeavyHittersTracker::<u32>::new(0.1, 0, 64, 4, 0).is_err());
    }

    #[test]
    fn finds_all_true_heavy_hitters() {
        let stream = zipf_like(100_000, 1000);
        let n = stream.len() as u64;
        let phi = 0.02;
        let mut hh = HeavyHittersTracker::new(phi, 100, 2048, 5, 1).unwrap();
        let mut exact: HashMap<u32, u64> = HashMap::new();
        for x in &stream {
            hh.update(x);
            *exact.entry(*x).or_insert(0) += 1;
        }
        let reported: Vec<u32> = hh.heavy_hitters().into_iter().map(|(t, _)| t).collect();
        for (item, &truth) in &exact {
            if truth as f64 >= phi * n as f64 {
                assert!(reported.contains(item), "missed heavy hitter {item}");
            }
        }
    }

    #[test]
    fn few_false_positives_with_wide_sketch() {
        let stream = zipf_like(50_000, 500);
        let n = stream.len() as u64;
        let phi = 0.02;
        let mut hh = HeavyHittersTracker::new(phi, 64, 4096, 5, 2).unwrap();
        let mut exact: HashMap<u32, u64> = HashMap::new();
        for x in &stream {
            hh.update(x);
            *exact.entry(*x).or_insert(0) += 1;
        }
        // No reported item should be below (φ/2)·n in truth.
        for (item, _) in hh.heavy_hitters() {
            let truth = exact.get(&item).copied().unwrap_or(0);
            assert!(
                (truth as f64) >= 0.5 * phi * n as f64,
                "false positive {item} with true count {truth}"
            );
        }
    }

    #[test]
    fn candidate_set_stays_bounded() {
        let mut hh = HeavyHittersTracker::new(0.001, 16, 256, 4, 3).unwrap();
        for i in 0..50_000u32 {
            hh.update(&(i % 2000));
        }
        assert!(hh.heavy_hitters().len() <= 16);
    }

    #[test]
    fn merge_finds_cross_partition_hitters() {
        let phi = 0.05;
        let mut a = HeavyHittersTracker::new(phi, 32, 1024, 5, 4).unwrap();
        let mut b = HeavyHittersTracker::new(phi, 32, 1024, 5, 4).unwrap();
        // "split" is heavy only when both halves are combined.
        for _ in 0..400 {
            a.update(&"split");
            b.update(&"split");
        }
        for i in 0..10_000u32 {
            let s: &str = format!("noise-{i}").leak();
            if i % 2 == 0 {
                a.update(&s);
            } else {
                b.update(&s);
            }
        }
        a.merge(&b).unwrap();
        let reported: Vec<&str> = a.heavy_hitters().into_iter().map(|(t, _)| t).collect();
        assert!(reported.contains(&"split"), "missed cross-partition hitter");
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = HeavyHittersTracker::<u32>::new(0.1, 8, 64, 3, 0).unwrap();
        let b = HeavyHittersTracker::<u32>::new(0.2, 8, 64, 3, 0).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn clear_resets() {
        let mut hh = HeavyHittersTracker::new(0.01, 8, 64, 3, 0).unwrap();
        for _ in 0..100 {
            hh.update(&7u32);
        }
        assert!(!hh.heavy_hitters().is_empty());
        hh.clear();
        assert!(hh.heavy_hitters().is_empty());
        assert_eq!(hh.total(), 0);
    }
}
