//! The Misra–Gries frequent-items summary (1982).
//!
//! Generalizes Boyer–Moore to `k − 1` counters: every item with frequency
//! above `n/k` is guaranteed to be present, and each reported count
//! underestimates the true count by at most `n/k` (tracked exactly here as
//! the *decrement total*). The merge rule — pointwise sum, then subtract
//! the (k)-th largest counter — is the one analyzed in "Mergeable
//! Summaries" (Agarwal et al., PODS 2012 test-of-time winner).

use std::collections::HashMap;
use std::hash::Hash;

use sketches_core::{Clear, MergeSketch, SketchError, SketchResult, SpaceUsage, Update};

/// A Misra–Gries summary with at most `k − 1` counters.
#[derive(Debug, Clone)]
pub struct MisraGries<T> {
    counters: HashMap<T, u64>,
    k: usize,
    items_seen: u64,
    /// Total amount subtracted from every counter so far; the estimation
    /// error of any item is at most this.
    decrement_total: u64,
}

impl<T: Hash + Eq + Clone> MisraGries<T> {
    /// Creates a summary with capacity `k − 1` counters (`k >= 2`).
    ///
    /// # Errors
    /// Returns an error if `k < 2`.
    pub fn new(k: usize) -> SketchResult<Self> {
        if k < 2 {
            return Err(SketchError::invalid("k", "need k >= 2"));
        }
        Ok(Self {
            counters: HashMap::with_capacity(k),
            k,
            items_seen: 0,
            decrement_total: 0,
        })
    }

    /// Absorbs `weight` occurrences of `item` at once.
    pub fn update_weighted(&mut self, item: &T, weight: u64) {
        if weight == 0 {
            return;
        }
        self.items_seen += weight;
        if let Some(c) = self.counters.get_mut(item) {
            *c += weight;
            return;
        }
        if self.counters.len() < self.k - 1 {
            self.counters.insert(item.clone(), weight);
            return;
        }
        // Full: decrement everyone by the smallest amount that frees a slot
        // (batch version of the classic decrement-all step).
        let min = self.counters.values().copied().min().unwrap_or(0);
        let delta = min.min(weight);
        if delta > 0 {
            self.decrement_total += delta;
            self.counters.retain(|_, c| {
                *c -= delta;
                *c > 0
            });
        }
        let remaining = weight - delta;
        if remaining > 0 {
            // remaining > 0 means delta == min, so at least the minimum
            // counter reached zero and was retained out above — a slot is
            // guaranteed to be free.
            debug_assert!(self.counters.len() < self.k - 1);
            self.counters.insert(item.clone(), remaining);
        }
    }

    /// Lower-bound estimate of `item`'s frequency (0 if untracked).
    /// The true count lies in `[estimate, estimate + error_bound()]`.
    #[must_use]
    pub fn estimate(&self, item: &T) -> u64 {
        self.counters.get(item).copied().unwrap_or(0)
    }

    /// Maximum underestimation of any reported count.
    #[must_use]
    pub fn error_bound(&self) -> u64 {
        self.decrement_total
    }

    /// Number of items absorbed (with weights).
    #[must_use]
    pub fn items_seen(&self) -> u64 {
        self.items_seen
    }

    /// All tracked `(item, lower-bound count)` pairs, sorted by descending
    /// count with ties broken by ascending item — deterministic across runs
    /// regardless of hash-map state.
    pub fn entries(&self) -> impl Iterator<Item = (&T, u64)>
    where
        T: Ord,
    {
        let mut out: Vec<(&T, u64)> = self
            .counters
            // lint: sorted-iteration-ok(collected then fully sorted by the (count, item) total order below)
            .iter()
            .map(|(t, &c)| (t, c))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        out.into_iter()
    }

    /// Items whose estimated frequency is at least `phi · n` — guaranteed to
    /// include every true heavy hitter above `(phi + 1/k) · n`. Sorted by
    /// descending count, ties by ascending item (a total order, so the
    /// report never depends on hash order).
    #[must_use]
    pub fn heavy_hitters(&self, phi: f64) -> Vec<(T, u64)>
    where
        T: Ord,
    {
        let threshold = (phi * self.items_seen as f64).ceil() as u64;
        let mut out: Vec<(T, u64)> = self
            .counters
            // lint: sorted-iteration-ok(collected then fully sorted by the (count, item) total order below)
            .iter()
            .filter(|(_, &c)| c + self.decrement_total >= threshold.max(1))
            .map(|(t, &c)| (t.clone(), c))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// The capacity parameter `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }
}

impl<T: Hash + Eq + Clone> Update<T> for MisraGries<T> {
    fn update(&mut self, item: &T) {
        self.update_weighted(item, 1);
    }
}

impl<T> Clear for MisraGries<T> {
    fn clear(&mut self) {
        self.counters.clear();
        self.items_seen = 0;
        self.decrement_total = 0;
    }
}

impl<T> SpaceUsage for MisraGries<T> {
    fn space_bytes(&self) -> usize {
        self.counters.capacity() * (std::mem::size_of::<T>() + std::mem::size_of::<u64>())
    }
}

impl<T: Hash + Eq + Clone> MergeSketch for MisraGries<T> {
    /// The Agarwal et al. merge: sum counters pointwise, then subtract the
    /// `k`-th largest value and drop non-positive counters. The combined
    /// error stays at most `(n₁ + n₂)/k`.
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.k != other.k {
            return Err(SketchError::incompatible(format!(
                "k differs: {} vs {}",
                self.k, other.k
            )));
        }
        // lint: sorted-iteration-ok(pointwise entry-add into a map keyed by the iterated item is iteration-order independent)
        for (item, &c) in &other.counters {
            *self.counters.entry(item.clone()).or_insert(0) += c;
        }
        self.items_seen += other.items_seen;
        self.decrement_total += other.decrement_total;
        if self.counters.len() > self.k - 1 {
            // lint: sorted-iteration-ok(values are fully sorted below; only the order-free k-th largest is used)
            let mut counts: Vec<u64> = self.counters.values().copied().collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            // Subtract the k-th largest (0-indexed k-1) so at most k-1 stay
            // positive.
            let delta = counts[self.k - 1];
            self.decrement_total += delta;
            self.counters.retain(|_, c| {
                *c = c.saturating_sub(delta);
                *c > 0
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zipfish_stream() -> Vec<u32> {
        // Item i appears 1000/(i+1) times, i in 0..50.
        let mut v = Vec::new();
        for i in 0..50u32 {
            for _ in 0..(1000 / (i + 1)) {
                v.push(i);
            }
        }
        v
    }

    #[test]
    fn rejects_k_below_two() {
        assert!(MisraGries::<u32>::new(1).is_err());
        assert!(MisraGries::<u32>::new(2).is_ok());
    }

    #[test]
    fn exact_when_under_capacity() {
        let mut mg = MisraGries::new(100).unwrap();
        for i in 0..20u32 {
            for _ in 0..=i {
                mg.update(&i);
            }
        }
        for i in 0..20u32 {
            assert_eq!(mg.estimate(&i), u64::from(i) + 1);
        }
        assert_eq!(mg.error_bound(), 0);
    }

    #[test]
    fn estimates_are_lower_bounds_within_n_over_k() {
        let stream = zipfish_stream();
        let n = stream.len() as u64;
        let k = 20;
        let mut mg = MisraGries::new(k).unwrap();
        let mut exact: HashMap<u32, u64> = HashMap::new();
        for x in &stream {
            mg.update(x);
            *exact.entry(*x).or_insert(0) += 1;
        }
        assert!(mg.error_bound() <= n / k as u64);
        for (item, &true_count) in &exact {
            let est = mg.estimate(item);
            assert!(est <= true_count, "overestimate for {item}");
            assert!(
                true_count - est <= mg.error_bound(),
                "item {item}: true {true_count}, est {est}, bound {}",
                mg.error_bound()
            );
        }
    }

    #[test]
    fn heavy_hitters_include_all_frequent() {
        let stream = zipfish_stream();
        let n = stream.len() as u64;
        let mut mg = MisraGries::new(40).unwrap();
        for x in &stream {
            mg.update(x);
        }
        let phi = 0.05;
        let hh = mg.heavy_hitters(phi);
        // Items 0 (1000) and 1 (500) are above 5% of n≈4500.
        let reported: Vec<u32> = hh.iter().map(|(t, _)| *t).collect();
        for heavy in [0u32, 1] {
            let true_count = 1000 / (u64::from(heavy) + 1);
            if true_count as f64 >= phi * n as f64 {
                assert!(reported.contains(&heavy), "missing heavy hitter {heavy}");
            }
        }
    }

    #[test]
    fn weighted_updates_match_repeated() {
        let mut a = MisraGries::new(10).unwrap();
        let mut b = MisraGries::new(10).unwrap();
        for x in [1u32, 2, 1, 3, 1] {
            a.update(&x);
        }
        b.update_weighted(&1, 3);
        b.update(&2);
        b.update(&3);
        assert_eq!(a.estimate(&1), b.estimate(&1));
        assert_eq!(a.items_seen(), b.items_seen());
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut mg = MisraGries::new(5).unwrap();
        for i in 0..10_000u32 {
            mg.update(&(i % 100));
        }
        assert!(mg.entries().count() <= 4);
    }

    #[test]
    fn merge_preserves_error_bound() {
        let stream = zipfish_stream();
        let n = stream.len() as u64;
        let k = 16;
        let half = stream.len() / 2;
        let mut left = MisraGries::new(k).unwrap();
        let mut right = MisraGries::new(k).unwrap();
        let mut exact: HashMap<u32, u64> = HashMap::new();
        for x in &stream[..half] {
            left.update(x);
            *exact.entry(*x).or_insert(0) += 1;
        }
        for x in &stream[half..] {
            right.update(x);
            *exact.entry(*x).or_insert(0) += 1;
        }
        left.merge(&right).unwrap();
        assert_eq!(left.items_seen(), n);
        assert!(
            left.error_bound() <= n / k as u64,
            "merged error {} exceeds n/k = {}",
            left.error_bound(),
            n / k as u64
        );
        for (item, &true_count) in &exact {
            let est = left.estimate(item);
            assert!(est <= true_count);
            assert!(true_count - est <= left.error_bound());
        }
    }

    #[test]
    fn merge_rejects_k_mismatch() {
        let mut a = MisraGries::<u32>::new(8).unwrap();
        let b = MisraGries::<u32>::new(9).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn clear_resets() {
        let mut mg = MisraGries::new(4).unwrap();
        mg.update(&1u8);
        mg.clear();
        assert_eq!(mg.estimate(&1u8), 0);
        assert_eq!(mg.items_seen(), 0);
    }

    #[test]
    fn string_items() {
        let mut mg: MisraGries<String> = MisraGries::new(8).unwrap();
        for _ in 0..10 {
            mg.update(&"hot".to_string());
        }
        mg.update(&"cold".to_string());
        assert!(mg.estimate(&"hot".to_string()) >= 9);
    }
}
