//! Frequency-estimation sketches and heavy-hitter trackers.
//!
//! The survey traces two families of frequency summaries, both implemented
//! here:
//!
//! **Counter-based (deterministic)** — keep a small set of candidate items
//! with counters:
//! * [`majority::BoyerMoore`] — the 1981 majority-vote algorithm.
//! * [`misra_gries::MisraGries`] — its k-counter generalization (1982),
//!   estimating every frequency within `n/k` using `k − 1` counters.
//! * [`space_saving::SpaceSaving`] — the 2005 always-overestimate variant,
//!   later shown equivalent to Misra–Gries.
//!
//! **Linear sketches (randomized)** — hash counts into a small matrix:
//! * [`count_min::CountMinSketch`] — `ε‖f‖₁` error in `O((1/ε)·log(1/δ))`
//!   counters, plus conservative update and dyadic range queries.
//! * [`count_sketch::CountSketch`] — the Charikar–Chen–Farach-Colton
//!   sketch with `ε‖f‖₂` error, the stronger guarantee on flat streams.
//!
//! Experiments E4/E5 reproduce the survey's claim that skew decides the
//! winner between the `L1` and `L2` guarantees.
//!
//! [`heavy_hitters::HeavyHittersTracker`] combines a linear sketch with a
//! candidate heap to report all items above a `φ·n` threshold.
//!
//! [`sf::SfSketch`] is the two-stage (read/write-split) frequency sketch:
//! a fat Count-Min update side maintains a far smaller slim query side
//! that ships across shards and the wire via
//! [`sketches_core::QueryView`].
//!
//! # Quick example
//!
//! ```
//! use sketches_frequency::{CountMinSketch, SpaceSaving};
//! use sketches_core::{FrequencyEstimator, Update};
//!
//! let mut cm = CountMinSketch::new(1024, 5, 42).unwrap();
//! let mut top: SpaceSaving<&str> = SpaceSaving::new(8).unwrap();
//! for _ in 0..1_000 {
//!     cm.update("popular");
//!     top.update(&"popular");
//! }
//! cm.update("rare");
//! assert!(FrequencyEstimator::estimate(&cm, "popular") >= 1_000);
//! assert_eq!(top.top_k(1)[0].0, "popular");
//! ```

#![forbid(unsafe_code)]

pub mod count_min;
pub mod count_sketch;
pub mod heavy_hitters;
pub mod majority;
pub mod misra_gries;
pub mod sf;
pub mod space_saving;

pub use count_min::{CmRangeSketch, CountMinSketch};
pub use count_sketch::CountSketch;
pub use heavy_hitters::HeavyHittersTracker;
pub use majority::BoyerMoore;
pub use misra_gries::MisraGries;
pub use sf::{SfSketch, SlimSketch};
pub use space_saving::SpaceSaving;
