//! The Count sketch (Charikar, Chen & Farach-Colton, ICALP 2002).
//!
//! Each of `d` rows hashes items into `w` buckets *with a ±1 sign*, and a
//! point query returns the **median** over rows of `sign(i) · counter`.
//! The estimate is unbiased with error `O(‖f‖₂/√w)` — an `L2` guarantee that
//! beats Count-Min's `L1` bound on flat (low-skew) streams, the trade-off
//! experiment E4 reproduces. The survey notes the Count sketch "was proposed
//! by academic visitors to Google" and later became the basis of sparse
//! Johnson–Lindenstrauss transforms (see `sketches-linalg`).

use std::hash::Hash;

use sketches_core::{Clear, MergeSketch, SketchError, SketchResult, SpaceUsage, Update};
use sketches_hash::family::{KWiseHash, SignHash};
use sketches_hash::hash_item;
use sketches_hash::rng::SplitMix64;

/// A Count sketch with `depth` rows of `width` signed counters.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CountSketch {
    counters: Vec<i64>,
    width: usize,
    depth: usize,
    seed: u64,
    bucket_hashes: Vec<KWiseHash>,
    sign_hashes: Vec<SignHash>,
    total_weight: i64,
}

impl CountSketch {
    /// Creates a sketch with `depth` rows (odd recommended, for the median)
    /// of `width` counters.
    ///
    /// # Errors
    /// Returns an error if `width < 2` or `depth` outside `1..=32`.
    pub fn new(width: usize, depth: usize, seed: u64) -> SketchResult<Self> {
        if width < 2 {
            return Err(SketchError::invalid("width", "need width >= 2"));
        }
        sketches_core::check_range("depth", depth, 1, 32)?;
        let mut rng = SplitMix64::new(seed ^ 0xC0C7_5CE7);
        let bucket_hashes = (0..depth).map(|_| KWiseHash::random(2, &mut rng)).collect();
        let sign_hashes = (0..depth).map(|_| SignHash::random(&mut rng)).collect();
        Ok(Self {
            counters: vec![0i64; width * depth],
            width,
            depth,
            seed,
            bucket_hashes,
            sign_hashes,
            total_weight: 0,
        })
    }

    /// Adds `weight` (possibly negative — deletions are supported, this is
    /// a linear sketch) occurrences of a pre-hashed item.
    pub fn update_hash(&mut self, hash: u64, weight: i64) {
        for row in 0..self.depth {
            let bucket = self.bucket_hashes[row].hash_range(hash, self.width as u64) as usize;
            let sign = self.sign_hashes[row].sign(hash);
            self.counters[row * self.width + bucket] += sign * weight;
        }
        self.total_weight += weight;
    }

    /// Unbiased point estimate for a pre-hashed item: median over rows.
    #[must_use]
    pub fn estimate_hash(&self, hash: u64) -> i64 {
        let mut row_estimates: Vec<i64> = (0..self.depth)
            .map(|row| {
                let bucket = self.bucket_hashes[row].hash_range(hash, self.width as u64) as usize;
                self.sign_hashes[row].sign(hash) * self.counters[row * self.width + bucket]
            })
            .collect();
        sketches_core::median_i64(&mut row_estimates)
    }

    /// Adds `weight` occurrences of `item`.
    pub fn update_weighted<T: Hash + ?Sized>(&mut self, item: &T, weight: i64) {
        self.update_hash(hash_item(item, 0xC057_0311), weight);
    }

    /// Signed point estimate for `item`.
    #[must_use]
    pub fn estimate<T: Hash + ?Sized>(&self, item: &T) -> i64 {
        self.estimate_hash(hash_item(item, 0xC057_0311))
    }

    /// Per-row `(column, counter value, sign)` triples for `item` — the raw
    /// measurements behind the median-query. Used by wrappers that
    /// post-process counters (e.g. the differentially-private sketch).
    #[must_use]
    pub fn row_components<T: Hash + ?Sized>(&self, item: &T) -> Vec<(usize, i64, i64)> {
        let hash = hash_item(item, 0xC057_0311);
        (0..self.depth)
            .map(|row| {
                let col = self.bucket_hashes[row].hash_range(hash, self.width as u64) as usize;
                (
                    col,
                    self.counters[row * self.width + col],
                    self.sign_hashes[row].sign(hash),
                )
            })
            .collect()
    }

    /// Estimate of the second frequency moment `F₂ = ‖f‖₂²`: the median
    /// over rows of the row's sum of squared counters (each row is an AMS
    /// estimator).
    #[must_use]
    pub fn f2_estimate(&self) -> f64 {
        let mut row_f2: Vec<f64> = (0..self.depth)
            .map(|row| {
                self.counters[row * self.width..(row + 1) * self.width]
                    .iter()
                    .map(|&c| (c as f64) * (c as f64))
                    .sum()
            })
            .collect();
        sketches_core::median_f64(&mut row_f2)
    }

    /// Width `w`.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Depth `d`.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Net weight absorbed.
    #[must_use]
    pub fn total_weight(&self) -> i64 {
        self.total_weight
    }
}

impl<T: Hash + ?Sized> Update<T> for CountSketch {
    fn update(&mut self, item: &T) {
        self.update_weighted(item, 1);
    }
}

impl Clear for CountSketch {
    fn clear(&mut self) {
        self.counters.fill(0);
        self.total_weight = 0;
    }
}

impl SpaceUsage for CountSketch {
    fn space_bytes(&self) -> usize {
        self.counters.len() * std::mem::size_of::<i64>()
    }
}

impl MergeSketch for CountSketch {
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.width != other.width || self.depth != other.depth {
            return Err(SketchError::incompatible("dimensions differ"));
        }
        if self.seed != other.seed {
            return Err(SketchError::incompatible("seeds differ"));
        }
        for (a, &b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        self.total_weight += other.total_weight;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn rejects_bad_params() {
        assert!(CountSketch::new(1, 5, 0).is_err());
        assert!(CountSketch::new(64, 0, 0).is_err());
    }

    #[test]
    fn unbiased_on_average() {
        // Estimate a mid-frequency item many times with independent seeds;
        // the mean error should be near zero (Count-Min would always be +).
        let mut errors = Vec::new();
        for seed in 0..24u64 {
            let mut cs = CountSketch::new(128, 1, seed).unwrap();
            for i in 0..2_000u32 {
                cs.update(&(i % 100));
            }
            errors.push(cs.estimate(&5u32) - 20);
        }
        let mean: f64 = errors.iter().map(|&e| e as f64).sum::<f64>() / errors.len() as f64;
        assert!(mean.abs() < 10.0, "mean error {mean} suggests bias");
    }

    #[test]
    fn accurate_for_heavy_items() {
        let mut cs = CountSketch::new(1024, 5, 1).unwrap();
        let mut exact: HashMap<u32, i64> = HashMap::new();
        for i in 0..200u32 {
            let w = i64::from(5_000 / (i + 1));
            cs.update_weighted(&i, w);
            *exact.entry(i).or_insert(0) += w;
        }
        // ‖f‖₂ ≈ sqrt(Σ w²); heaviest items should be within a few percent.
        for item in 0..5u32 {
            let truth = exact[&item];
            let est = cs.estimate(&item);
            let rel = (est - truth).abs() as f64 / truth as f64;
            assert!(rel < 0.15, "item {item}: est {est} vs {truth}");
        }
    }

    #[test]
    fn supports_deletions() {
        let mut cs = CountSketch::new(256, 5, 2).unwrap();
        cs.update_weighted(&"x", 10);
        cs.update_weighted(&"x", -10);
        cs.update_weighted(&"y", 7);
        assert_eq!(cs.estimate(&"x"), 0);
        assert_eq!(cs.estimate(&"y"), 7);
        assert_eq!(cs.total_weight(), 7);
    }

    #[test]
    fn f2_estimate_close() {
        let mut cs = CountSketch::new(2048, 7, 3).unwrap();
        let mut true_f2 = 0f64;
        for i in 0..500u32 {
            let w = i64::from(1000 / (i + 1));
            cs.update_weighted(&i, w);
            true_f2 += (w as f64) * (w as f64);
        }
        let est = cs.f2_estimate();
        let rel = (est - true_f2).abs() / true_f2;
        assert!(rel < 0.1, "F2 est {est} vs {true_f2} (rel {rel:.3})");
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = CountSketch::new(64, 5, 4).unwrap();
        let mut b = CountSketch::new(64, 5, 4).unwrap();
        let mut whole = CountSketch::new(64, 5, 4).unwrap();
        for i in 0..500u32 {
            a.update(&(i % 40));
            whole.update(&(i % 40));
            b.update(&(i % 60));
            whole.update(&(i % 60));
        }
        a.merge(&b).unwrap();
        assert_eq!(a.counters, whole.counters);
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = CountSketch::new(32, 3, 0).unwrap();
        assert!(a.merge(&CountSketch::new(64, 3, 0).unwrap()).is_err());
        assert!(a.merge(&CountSketch::new(32, 4, 0).unwrap()).is_err());
        assert!(a.merge(&CountSketch::new(32, 3, 9).unwrap()).is_err());
    }

    #[test]
    fn even_depth_median_works() {
        let mut cs = CountSketch::new(128, 4, 5).unwrap();
        cs.update_weighted(&1u32, 100);
        let est = cs.estimate(&1u32);
        assert!((est - 100).abs() <= 5, "even-depth estimate {est}");
    }

    #[test]
    fn clear_and_space() {
        let mut cs = CountSketch::new(64, 3, 0).unwrap();
        cs.update(&1u8);
        cs.clear();
        assert_eq!(cs.estimate(&1u8), 0);
        assert_eq!(cs.space_bytes(), 64 * 3 * 8);
    }
}
