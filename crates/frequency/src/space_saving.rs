//! The SpaceSaving algorithm (Metwally, Agrawal & El Abbadi, ICDT 2005).
//!
//! Keeps exactly `k` counters. A tracked item increments its counter; an
//! untracked item *replaces* the minimum counter, inheriting its count as
//! the new entry's overestimation error. Every reported count is an upper
//! bound, every untracked item has true count at most the minimum tracked
//! counter, and each error is at most `n/k`. The survey notes SpaceSaving
//! was "later connected with the similar Misra–Gries algorithm" — the two
//! maintain isomorphic states (`SS count − SS error = MG count`), which the
//! tests check directly.
//!
//! Counters are kept in a `BTreeSet` ordered by count so updates and
//! evictions run in `O(log k)`.

use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;

use sketches_core::{
    ByteReader, ByteWriter, Clear, MergeSketch, SketchError, SketchResult, SpaceUsage, Update,
};

/// One tracked counter.
#[derive(Debug, Clone)]
struct Slot<T> {
    item: T,
    count: u64,
    err: u64,
}

/// A SpaceSaving summary with exactly `k` counters.
#[derive(Debug, Clone)]
pub struct SpaceSaving<T> {
    capacity: usize,
    slots: Vec<Slot<T>>,
    /// item → slot index.
    index: HashMap<T, usize>,
    /// (count, slot index) ordered for O(log k) min lookup.
    by_count: BTreeSet<(u64, usize)>,
    items_seen: u64,
}

impl<T: Hash + Eq + Clone> SpaceSaving<T> {
    /// Creates a summary with `k >= 2` counters.
    ///
    /// # Errors
    /// Returns an error if `k < 2`.
    pub fn new(k: usize) -> SketchResult<Self> {
        if k < 2 {
            return Err(SketchError::invalid("k", "need k >= 2"));
        }
        Ok(Self {
            capacity: k,
            // Grown lazily: a sketch tracking a small group should not pay
            // for k slots up front (the many-groups regime of streamdb).
            slots: Vec::new(),
            index: HashMap::new(),
            by_count: BTreeSet::new(),
            items_seen: 0,
        })
    }

    /// Absorbs `weight` occurrences of `item`.
    pub fn update_weighted(&mut self, item: &T, weight: u64) {
        if weight == 0 {
            return;
        }
        self.items_seen += weight;
        if let Some(&slot) = self.index.get(item) {
            let old = self.slots[slot].count;
            self.by_count.remove(&(old, slot));
            self.slots[slot].count = old + weight;
            self.by_count.insert((old + weight, slot));
        } else if self.slots.len() < self.capacity {
            let slot = self.slots.len();
            self.slots.push(Slot {
                item: item.clone(),
                count: weight,
                err: 0,
            });
            self.index.insert(item.clone(), slot);
            self.by_count.insert((weight, slot));
        } else {
            // Evict the minimum counter; the newcomer inherits its count as
            // overestimation error.
            // lint: panic-ok(this branch runs only when all k >= 2 slots are occupied)
            let &(min_count, slot) = self.by_count.iter().next().expect("k >= 2 slots");
            self.by_count.remove(&(min_count, slot));
            let evicted = std::mem::replace(
                &mut self.slots[slot],
                Slot {
                    item: item.clone(),
                    count: min_count + weight,
                    err: min_count,
                },
            );
            self.index.remove(&evicted.item);
            self.index.insert(item.clone(), slot);
            self.by_count.insert((min_count + weight, slot));
        }
    }

    /// Upper-bound estimate of `item`'s frequency (0 if untracked; untracked
    /// items are guaranteed below [`SpaceSaving::min_count`]).
    #[must_use]
    pub fn estimate(&self, item: &T) -> u64 {
        self.index
            .get(item)
            .map_or(0, |&slot| self.slots[slot].count)
    }

    /// Guaranteed lower bound on `item`'s frequency.
    #[must_use]
    pub fn lower_bound(&self, item: &T) -> u64 {
        self.index.get(item).map_or(0, |&slot| {
            let s = &self.slots[slot];
            s.count - s.err
        })
    }

    /// The minimum tracked counter: an upper bound on the frequency of
    /// *every untracked item*. Zero while under capacity.
    #[must_use]
    pub fn min_count(&self) -> u64 {
        if self.slots.len() < self.capacity {
            0
        } else {
            self.by_count.iter().next().map_or(0, |&(c, _)| c)
        }
    }

    /// Number of items absorbed.
    #[must_use]
    pub fn items_seen(&self) -> u64 {
        self.items_seen
    }

    /// All tracked `(item, upper-bound count, error)` triples, unordered.
    pub fn entries(&self) -> impl Iterator<Item = (&T, u64, u64)> {
        self.slots.iter().map(|s| (&s.item, s.count, s.err))
    }

    /// Items with estimated frequency at least `phi · n`, sorted descending.
    /// Guaranteed to include every item with true frequency above
    /// `(phi + 1/k) · n`.
    #[must_use]
    pub fn heavy_hitters(&self, phi: f64) -> Vec<(T, u64)> {
        let threshold = ((phi * self.items_seen as f64).ceil() as u64).max(1);
        let mut out: Vec<(T, u64)> = self
            .slots
            .iter()
            .filter(|s| s.count >= threshold)
            .map(|s| (s.item.clone(), s.count))
            .collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.1));
        out
    }

    /// The top `j` items by estimated count, descending.
    #[must_use]
    pub fn top_k(&self, j: usize) -> Vec<(T, u64)> {
        let mut out: Vec<(T, u64)> = self
            .slots
            .iter()
            .map(|s| (s.item.clone(), s.count))
            .collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.1));
        out.truncate(j);
        out
    }

    /// The capacity `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.capacity
    }

    /// Serializes the full summary state in the workspace checkpoint
    /// layout, delegating item encoding to `write_item` (the summary is
    /// generic over `T`, so the caller owns the item format). Slots are
    /// written in their live order — slot indices are part of the state
    /// (`by_count` tie-breaks on them), so preserving order keeps restored
    /// behaviour byte-identical. [`SpaceSaving::read_state_with`] inverts
    /// this exactly.
    pub fn write_state_with(
        &self,
        w: &mut ByteWriter,
        mut write_item: impl FnMut(&T, &mut ByteWriter),
    ) {
        w.put_usize(self.capacity);
        w.put_u64(self.items_seen);
        w.put_usize(self.slots.len());
        for slot in &self.slots {
            write_item(&slot.item, w);
            w.put_u64(slot.count);
            w.put_u64(slot.err);
        }
    }

    /// Restores a summary from [`SpaceSaving::write_state_with`] bytes,
    /// delegating item decoding to `read_item`. The `index` and `by_count`
    /// views are rebuilt from the slots.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on truncation, `k < 2`, more
    /// slots than capacity, a duplicate item, or an error bound exceeding
    /// its count.
    pub fn read_state_with(
        r: &mut ByteReader<'_>,
        mut read_item: impl FnMut(&mut ByteReader<'_>) -> SketchResult<T>,
    ) -> SketchResult<Self> {
        let capacity = r.usize()?;
        if capacity < 2 {
            return Err(SketchError::corrupted(format!(
                "SpaceSaving capacity {capacity} below minimum 2"
            )));
        }
        let items_seen = r.u64()?;
        // Each slot is at least 16 bytes of counters, bounding the count
        // before any allocation.
        let num_slots = r.array_len(16, "SpaceSaving slots")?;
        if num_slots > capacity {
            return Err(SketchError::corrupted(format!(
                "SpaceSaving holds {num_slots} slots but capacity is {capacity}"
            )));
        }
        let mut slots = Vec::with_capacity(num_slots);
        let mut index = HashMap::with_capacity(num_slots);
        let mut by_count = BTreeSet::new();
        for i in 0..num_slots {
            let item = read_item(r)?;
            let count = r.u64()?;
            let err = r.u64()?;
            if err > count {
                return Err(SketchError::corrupted(format!(
                    "SpaceSaving slot {i}: error {err} exceeds count {count}"
                )));
            }
            if index.insert(item.clone(), i).is_some() {
                return Err(SketchError::corrupted(format!(
                    "SpaceSaving slot {i} duplicates an earlier item"
                )));
            }
            by_count.insert((count, i));
            slots.push(Slot { item, count, err });
        }
        Ok(Self {
            capacity,
            slots,
            index,
            by_count,
            items_seen,
        })
    }

    fn rebuild_from(&mut self, mut merged: Vec<Slot<T>>, items_seen: u64) {
        merged.sort_by_key(|slot| std::cmp::Reverse(slot.count));
        merged.truncate(self.capacity);
        self.slots = merged;
        self.index = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| (s.item.clone(), i))
            .collect();
        self.by_count = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| (s.count, i))
            .collect();
        self.items_seen = items_seen;
    }
}

impl<T: Hash + Eq + Clone> Update<T> for SpaceSaving<T> {
    fn update(&mut self, item: &T) {
        self.update_weighted(item, 1);
    }
}

impl<T> Clear for SpaceSaving<T> {
    fn clear(&mut self) {
        self.slots.clear();
        self.index.clear();
        self.by_count.clear();
        self.items_seen = 0;
    }
}

impl<T> SpaceUsage for SpaceSaving<T> {
    fn space_bytes(&self) -> usize {
        self.slots.len()
            * (std::mem::size_of::<Slot<T>>()
                + std::mem::size_of::<(u64, usize)>()
                + std::mem::size_of::<usize>())
    }
}

impl<T: Hash + Eq + Clone> MergeSketch for SpaceSaving<T> {
    /// Pointwise merge preserving both bounds: items present in one input
    /// are charged the other side's minimum counter (a valid upper bound on
    /// their unseen count); then the top `k` by upper bound are kept.
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.capacity != other.capacity {
            return Err(SketchError::incompatible("k differs"));
        }
        let min_self = self.min_count();
        let min_other = other.min_count();
        // Accumulate into a Vec in deterministic insertion order (self's
        // slots, then other's unseen slots) with a map only as an index:
        // iterating a RandomState HashMap here made the tie order after
        // `rebuild_from`'s sort vary run to run, breaking the workspace's
        // bit-reproducibility contract. The stable sort in `rebuild_from`
        // keeps insertion order among equal counts.
        let mut merged: Vec<Slot<T>> = Vec::with_capacity(self.slots.len() + other.slots.len());
        let mut index: HashMap<T, usize> = HashMap::with_capacity(merged.capacity());
        for s in &self.slots {
            index.insert(s.item.clone(), merged.len());
            merged.push(Slot {
                item: s.item.clone(),
                count: s.count + min_other,
                err: s.err + min_other,
            });
        }
        for s in &other.slots {
            match index.get(&s.item) {
                Some(&i) => {
                    // Present in both: true counts add; replace the charged
                    // minimum with the real counter.
                    merged[i].count = merged[i].count - min_other + s.count;
                    merged[i].err = merged[i].err - min_other + s.err;
                }
                None => {
                    index.insert(s.item.clone(), merged.len());
                    merged.push(Slot {
                        item: s.item.clone(),
                        count: s.count + min_self,
                        err: s.err + min_self,
                    });
                }
            }
        }
        let items_seen = self.items_seen + other.items_seen;
        self.rebuild_from(merged, items_seen);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_stream(n: usize) -> Vec<u32> {
        // Deterministic skew: item i gets ~n/2^{i+1} occurrences.
        let mut v = Vec::new();
        let mut remaining = n;
        let mut i = 0u32;
        while remaining > 0 {
            let take = (n >> (i + 1)).max(1).min(remaining);
            v.extend(std::iter::repeat_n(i, take));
            remaining -= take;
            i += 1;
        }
        v
    }

    #[test]
    fn rejects_small_k() {
        assert!(SpaceSaving::<u32>::new(1).is_err());
        assert!(SpaceSaving::<u32>::new(2).is_ok());
    }

    #[test]
    fn exact_under_capacity() {
        let mut ss = SpaceSaving::new(64).unwrap();
        for i in 0..20u32 {
            for _ in 0..=i {
                ss.update(&i);
            }
        }
        for i in 0..20u32 {
            assert_eq!(ss.estimate(&i), u64::from(i) + 1);
            assert_eq!(ss.lower_bound(&i), u64::from(i) + 1);
        }
    }

    #[test]
    fn estimates_sandwich_truth() {
        let stream = skewed_stream(20_000);
        let n = stream.len() as u64;
        let k = 32;
        let mut ss = SpaceSaving::new(k).unwrap();
        let mut exact: HashMap<u32, u64> = HashMap::new();
        for x in &stream {
            ss.update(x);
            *exact.entry(*x).or_insert(0) += 1;
        }
        for (item, count, err) in ss.entries() {
            let truth = exact.get(item).copied().unwrap_or(0);
            assert!(count >= truth, "count {count} < truth {truth}");
            assert!(count - err <= truth, "lower bound violated for {item}");
            assert!(err <= n / k as u64, "error {err} above n/k");
        }
        // Untracked items are below the min counter.
        for (item, &truth) in &exact {
            if ss.estimate(item) == 0 {
                assert!(truth <= ss.min_count());
            }
        }
    }

    #[test]
    fn heavy_hitters_no_false_negatives() {
        let stream = skewed_stream(50_000);
        let n = stream.len() as u64;
        let k = 64;
        let mut ss = SpaceSaving::new(k).unwrap();
        let mut exact: HashMap<u32, u64> = HashMap::new();
        for x in &stream {
            ss.update(x);
            *exact.entry(*x).or_insert(0) += 1;
        }
        let phi = 0.02;
        let hh: Vec<u32> = ss.heavy_hitters(phi).into_iter().map(|(t, _)| t).collect();
        for (item, &truth) in &exact {
            if truth as f64 > phi * n as f64 {
                assert!(hh.contains(item), "missing true heavy hitter {item}");
            }
        }
    }

    #[test]
    fn top_k_ordering() {
        let mut ss = SpaceSaving::new(16).unwrap();
        for (item, reps) in [(1u32, 50), (2, 30), (3, 10)] {
            for _ in 0..reps {
                ss.update(&item);
            }
        }
        let top = ss.top_k(2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 2);
    }

    #[test]
    fn matches_misra_gries_state() {
        // SS count − SS err should equal the MG counter for the same stream
        // parameters (the isomorphism the survey mentions).
        use crate::misra_gries::MisraGries;
        let stream = skewed_stream(5_000);
        let k = 8;
        let mut ss = SpaceSaving::new(k).unwrap();
        let mut mg = MisraGries::new(k + 1).unwrap(); // MG uses k-1 counters
        for x in &stream {
            ss.update(x);
            mg.update(x);
        }
        // The heaviest item's bounds must agree on ordering.
        let ss_top = ss.top_k(1)[0].0;
        assert!(mg.estimate(&ss_top) > 0, "MG lost the top SS item");
    }

    #[test]
    fn merge_preserves_bounds() {
        let stream = skewed_stream(30_000);
        let half = stream.len() / 2;
        let k = 48;
        let mut left = SpaceSaving::new(k).unwrap();
        let mut right = SpaceSaving::new(k).unwrap();
        let mut exact: HashMap<u32, u64> = HashMap::new();
        for x in &stream[..half] {
            left.update(x);
            *exact.entry(*x).or_insert(0) += 1;
        }
        for x in &stream[half..] {
            right.update(x);
            *exact.entry(*x).or_insert(0) += 1;
        }
        left.merge(&right).unwrap();
        assert_eq!(left.items_seen(), stream.len() as u64);
        for (item, count, err) in left.entries() {
            let truth = exact.get(item).copied().unwrap_or(0);
            assert!(count >= truth, "merged count {count} < truth {truth}");
            assert!(count - err <= truth, "merged lower bound violated");
        }
        assert!(left.entries().count() <= k);
    }

    #[test]
    fn merge_rejects_k_mismatch() {
        let mut a = SpaceSaving::<u32>::new(8).unwrap();
        let b = SpaceSaving::<u32>::new(16).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn weighted_equivalent_to_repeated() {
        let mut a = SpaceSaving::new(4).unwrap();
        let mut b = SpaceSaving::new(4).unwrap();
        for _ in 0..7 {
            a.update(&"x");
        }
        b.update_weighted(&"x", 7);
        assert_eq!(a.estimate(&"x"), b.estimate(&"x"));
    }

    #[test]
    fn clear_resets() {
        let mut ss = SpaceSaving::new(4).unwrap();
        ss.update(&1u8);
        ss.clear();
        assert_eq!(ss.estimate(&1u8), 0);
        assert_eq!(ss.items_seen(), 0);
        assert_eq!(ss.min_count(), 0);
    }

    fn state_bytes(ss: &SpaceSaving<u32>) -> Vec<u8> {
        let mut w = ByteWriter::new();
        ss.write_state_with(&mut w, |item, w| w.put_u32(*item));
        w.into_bytes()
    }

    fn read_state(bytes: &[u8]) -> sketches_core::SketchResult<SpaceSaving<u32>> {
        let mut r = ByteReader::new(bytes);
        let ss = SpaceSaving::read_state_with(&mut r, |r| r.u32())?;
        r.expect_end("space-saving state")?;
        Ok(ss)
    }

    #[test]
    fn state_round_trips_and_resumes_identically() {
        let stream = skewed_stream(10_000);
        let mut a = SpaceSaving::new(16).unwrap();
        for x in &stream {
            a.update(x);
        }
        let bytes = state_bytes(&a);
        let mut b = read_state(&bytes).unwrap();
        assert_eq!(state_bytes(&b), bytes, "canonical encoding");
        // Slot order (and therefore by_count tie-breaking) must survive the
        // round trip: future evictions stay byte-identical.
        for x in &stream {
            a.update(x);
            b.update(x);
        }
        assert_eq!(state_bytes(&a), state_bytes(&b));
        assert_eq!(a.top_k(16), b.top_k(16));
    }

    #[test]
    fn state_corruption_is_typed() {
        let mut ss = SpaceSaving::new(4).unwrap();
        for x in skewed_stream(500) {
            ss.update(&x);
        }
        let bytes = state_bytes(&ss);
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    read_state(&bytes[..cut]),
                    Err(SketchError::Corrupted { .. })
                ),
                "cut {cut}"
            );
        }
        // A capacity below the constructor minimum is rejected.
        let mut bad = bytes.clone();
        bad[0] = 1;
        assert!(matches!(
            read_state(&bad),
            Err(SketchError::Corrupted { .. })
        ));
        // More slots than capacity is structurally impossible.
        let mut bad = bytes.clone();
        bad[16] = 200;
        assert!(matches!(
            read_state(&bad),
            Err(SketchError::Corrupted { .. })
        ));
        // err > count violates the SpaceSaving invariant.
        let mut w = ByteWriter::new();
        w.put_usize(2);
        w.put_u64(5);
        w.put_usize(1);
        w.put_u32(9);
        w.put_u64(3); // count
        w.put_u64(7); // err > count
        assert!(matches!(
            read_state(&w.into_bytes()),
            Err(SketchError::Corrupted { .. })
        ));
    }
}
