//! The SF-sketch: a two-stage frequency sketch with a read/write split
//! (Yang et al., "SF-sketch: A Two-stage Sketch for Data Streams").
//!
//! One logical summary, two physical sketches:
//!
//! * the **fat** side — a plain Count-Min grid sized for *update*
//!   accuracy, which absorbs every insertion and deletion;
//! * the **slim** side — a much smaller grid maintained *incrementally*
//!   from fat-side counter changes, which is the only part worth moving:
//!   it is what [`query_view`](sketches_core::QueryView::query_view)
//!   returns, what shards merge, and what the serving layer ships.
//!
//! The insert rule is the paper's: after the fat side absorbs `w`
//! occurrences of `e`, let `n̂` be the fat point estimate of `e`; every
//! slim counter of `e` moves to `max(c, min(c + w, n̂))`. Capping at `n̂`
//! is why the slim side beats a same-size Count-Min: a colliding item can
//! only pollute a slim cell up to the *fat* estimate of the inserted item,
//! not by the full collided mass.
//!
//! **Accuracy guarantees** (one-sided bound `estimate ≥ true count`):
//!
//! * the fat side preserves it always, insertions and deletions alike
//!   (it is a plain CM grid under strict-turnstile updates);
//! * the slim side preserves it for **insert-only** streams (induction on
//!   the insert rule), and for the *deleted item itself* under deletions
//!   (its slim counters never drop below its fat estimate). A deletion can
//!   transiently push a slim cell below the count of a *colliding* item —
//!   the price of slimness; local callers needing the hard bound under
//!   deletions query the fat side, which is exactly what
//!   [`FrequencyEstimator::estimate`] does here.
//!
//! The deletion rule is guarded accordingly: after the fat side
//! decrements, each slim counter of `e` is lowered by at most `w` and
//! never below the new fat estimate `n̂`.

use std::hash::Hash;

use sketches_core::{
    ByteReader, ByteWriter, Clear, FrequencyEstimator, MergeSketch, QueryView, SketchError,
    SketchResult, SpaceUsage, Update,
};
use sketches_hash::hash_item;
use sketches_hash::mix::{fastrange64, mix64_seeded};

/// Item-hash domain of the SF-sketch (distinct from the Count-Min seed so
/// the two families never share collision patterns).
const ITEM_SEED: u64 = 0x05F5_3C17;

/// Domain separation between the fat and slim rows: the slim grid hashes
/// with `seed ^ SLIM_DOMAIN`, so its collisions are independent of the
/// fat side's.
const SLIM_DOMAIN: u64 = 0xA5A5_5A5A_0F0F_F0F0;

/// Per-row domain-separation constants (same scheme as Count-Min).
#[inline]
fn row_seed(seed: u64, row: usize) -> u64 {
    seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(row as u64 + 1))
}

/// The slim query-side half of an [`SfSketch`] — a standalone mergeable
/// frequency summary, cheap to clone and serialize.
///
/// Cut one with [`SfSketch::query_view`]; merge views from disjoint
/// substreams counter-wise (one-sidedness is preserved under merge for
/// insert-only substreams). Estimates take the minimum over rows, exactly
/// like Count-Min — but the counters were capped by fat-side estimates on
/// the way in, so at equal size the slim side is tighter.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SlimSketch {
    counters: Vec<u64>,
    width: usize,
    depth: usize,
    seed: u64,
    total: u64,
}

impl SlimSketch {
    #[inline]
    fn cell(&self, hash: u64, row: usize) -> usize {
        let h = mix64_seeded(hash, row_seed(self.seed, row));
        row * self.width + fastrange64(h, self.width as u64) as usize
    }

    /// Point query for a pre-hashed item (hash with the SF item domain —
    /// see [`SfSketch::slim_estimate`] for the item-level entry point).
    #[must_use]
    pub fn estimate_hash(&self, hash: u64) -> u64 {
        (0..self.depth)
            .map(|row| self.counters[self.cell(hash, row)])
            .min()
            .unwrap_or(0)
    }

    /// Width `w` (counters per row).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Depth `d` (number of rows).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total weight absorbed by the sketch this view was cut from.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    fn check_compatible(&self, other: &Self) -> SketchResult<()> {
        if self.width != other.width || self.depth != other.depth {
            return Err(SketchError::incompatible("slim dimensions differ"));
        }
        if self.seed != other.seed {
            return Err(SketchError::incompatible("slim seeds differ"));
        }
        Ok(())
    }

    /// Serializes the view — seed, dimensions, total, counters — in the
    /// workspace checkpoint layout ([`SlimSketch::read_state`] inverts it
    /// exactly; the counter count is implied by the dimensions).
    pub fn write_state(&self, w: &mut ByteWriter) {
        w.put_u64(self.seed);
        w.put_u32(self.width as u32);
        w.put_u32(self.depth as u32);
        w.put_u64(self.total);
        for &c in &self.counters {
            w.put_u64(c);
        }
    }

    /// Restores a view from [`SlimSketch::write_state`] bytes.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on truncation or dimensions
    /// outside the constructible range. (Bit-level integrity is the
    /// enclosing envelope checksum's job; this validates structure.)
    pub fn read_state(r: &mut ByteReader<'_>) -> SketchResult<Self> {
        let seed = r.u64()?;
        let width = r.u32()? as usize;
        let depth = r.u32()? as usize;
        if width < 2 {
            return Err(SketchError::corrupted(format!(
                "slim width {width} below minimum 2"
            )));
        }
        if !(1..=32).contains(&depth) {
            return Err(SketchError::corrupted(format!(
                "slim depth {depth} outside 1..=32"
            )));
        }
        let total = r.u64()?;
        let mut counters = Vec::with_capacity(width * depth);
        for _ in 0..width * depth {
            counters.push(r.u64()?);
        }
        Ok(Self {
            counters,
            width,
            depth,
            seed,
            total,
        })
    }
}

impl<T: Hash + ?Sized> FrequencyEstimator<T> for SlimSketch {
    fn estimate(&self, item: &T) -> u64 {
        self.estimate_hash(hash_item(item, ITEM_SEED))
    }
}

impl MergeSketch for SlimSketch {
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        self.check_compatible(other)?;
        for (a, &b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        self.total += other.total;
        Ok(())
    }
}

impl SpaceUsage for SlimSketch {
    fn space_bytes(&self) -> usize {
        self.counters.len() * std::mem::size_of::<u64>()
    }
}

impl Clear for SlimSketch {
    fn clear(&mut self) {
        self.counters.fill(0);
        self.total = 0;
    }
}

/// The full two-stage sketch: fat Count-Min update side plus the slim
/// query side it maintains incrementally. See the module docs for the
/// update/delete rules and the scope of the one-sided guarantee.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SfSketch {
    fat: Vec<u64>,
    fat_width: usize,
    depth: usize,
    seed: u64,
    total: u64,
    slim: SlimSketch,
}

impl SfSketch {
    /// Creates a sketch with a `depth × fat_width` fat grid and a
    /// `depth × slim_width` slim grid.
    ///
    /// # Errors
    /// Returns an error if `fat_width < 2`, `slim_width < 2`,
    /// `slim_width > fat_width` (the slim side must actually be slim), or
    /// `depth` outside `1..=32`.
    pub fn new(fat_width: usize, slim_width: usize, depth: usize, seed: u64) -> SketchResult<Self> {
        if fat_width < 2 {
            return Err(SketchError::invalid("fat_width", "need fat_width >= 2"));
        }
        if slim_width < 2 {
            return Err(SketchError::invalid("slim_width", "need slim_width >= 2"));
        }
        if slim_width > fat_width {
            return Err(SketchError::invalid(
                "slim_width",
                "slim side must not be wider than the fat side",
            ));
        }
        sketches_core::check_range("depth", depth, 1, 32)?;
        Ok(Self {
            fat: vec![0u64; fat_width * depth],
            fat_width,
            depth,
            seed,
            total: 0,
            slim: SlimSketch {
                counters: vec![0u64; slim_width * depth],
                width: slim_width,
                depth,
                seed: seed ^ SLIM_DOMAIN,
                total: 0,
            },
        })
    }

    #[inline]
    fn fat_cell(&self, hash: u64, row: usize) -> usize {
        let h = mix64_seeded(hash, row_seed(self.seed, row));
        row * self.fat_width + fastrange64(h, self.fat_width as u64) as usize
    }

    #[inline]
    fn fat_estimate_hash(&self, hash: u64) -> u64 {
        (0..self.depth)
            .map(|row| self.fat[self.fat_cell(hash, row)])
            .min()
            .unwrap_or(0)
    }

    /// Adds `weight` occurrences of `item`: fat side first, then the slim
    /// counters move to `max(c, min(c + weight, n̂))` where `n̂` is the
    /// post-update fat estimate.
    pub fn update_weighted<T: Hash + ?Sized>(&mut self, item: &T, weight: u64) {
        let hash = hash_item(item, ITEM_SEED);
        for row in 0..self.depth {
            let cell = self.fat_cell(hash, row);
            self.fat[cell] += weight;
        }
        self.total += weight;
        self.slim.total += weight;
        let fat_est = self.fat_estimate_hash(hash);
        for row in 0..self.depth {
            let cell = self.slim.cell(hash, row);
            let c = self.slim.counters[cell];
            let raised = (c + weight).min(fat_est);
            if raised > c {
                self.slim.counters[cell] = raised;
            }
        }
    }

    /// Removes `weight` occurrences of `item` (strict turnstile: the
    /// caller guarantees `item` was inserted at least `weight` times). The
    /// fat side decrements exactly; each slim counter of `item` is lowered
    /// by at most `weight` and never below the new fat estimate, so the
    /// deleted item's own one-sided bound survives.
    ///
    /// # Errors
    /// Returns an error when `weight` exceeds the fat estimate of `item` —
    /// a detectable strict-turnstile violation. (An overdraw within the
    /// fat overestimate is undetectable; the contract is the caller's.)
    pub fn delete_weighted<T: Hash + ?Sized>(&mut self, item: &T, weight: u64) -> SketchResult<()> {
        let hash = hash_item(item, ITEM_SEED);
        let before = self.fat_estimate_hash(hash);
        if weight > before {
            return Err(SketchError::invalid(
                "weight",
                format!("deleting {weight} but the item's recorded count is {before}"),
            ));
        }
        for row in 0..self.depth {
            let cell = self.fat_cell(hash, row);
            // Every fat cell on the item's path is >= the fat estimate
            // >= weight, so this cannot underflow.
            self.fat[cell] -= weight;
        }
        self.total -= weight;
        self.slim.total -= weight;
        let after = self.fat_estimate_hash(hash);
        for row in 0..self.depth {
            let cell = self.slim.cell(hash, row);
            let c = self.slim.counters[cell];
            if c > after {
                self.slim.counters[cell] = c.saturating_sub(weight).max(after);
            }
        }
        Ok(())
    }

    /// Point query on the **slim** side — the estimate a remote reader
    /// holding only the [`SlimSketch`] view would produce.
    #[must_use]
    pub fn slim_estimate<T: Hash + ?Sized>(&self, item: &T) -> u64 {
        self.slim.estimate_hash(hash_item(item, ITEM_SEED))
    }

    /// Total weight absorbed (`‖f‖₁`).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fat width (counters per fat row).
    #[must_use]
    pub fn fat_width(&self) -> usize {
        self.fat_width
    }

    /// Slim width (counters per slim row).
    #[must_use]
    pub fn slim_width(&self) -> usize {
        self.slim.width
    }

    /// Depth `d` (rows in both grids).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Seed the sketch was constructed with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn check_compatible(&self, other: &Self) -> SketchResult<()> {
        if self.fat_width != other.fat_width
            || self.depth != other.depth
            || self.slim.width != other.slim.width
        {
            return Err(SketchError::incompatible("dimensions differ"));
        }
        if self.seed != other.seed {
            return Err(SketchError::incompatible("seeds differ"));
        }
        Ok(())
    }

    /// Serializes the full state — seed, dimensions, total, both grids —
    /// in the workspace checkpoint layout ([`SfSketch::read_state`]
    /// inverts it exactly).
    pub fn write_state(&self, w: &mut ByteWriter) {
        w.put_u64(self.seed);
        w.put_u32(self.fat_width as u32);
        w.put_u32(self.slim.width as u32);
        w.put_u32(self.depth as u32);
        w.put_u64(self.total);
        for &c in &self.fat {
            w.put_u64(c);
        }
        for &c in &self.slim.counters {
            w.put_u64(c);
        }
    }

    /// Restores a sketch from [`SfSketch::write_state`] bytes.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on truncation or dimensions
    /// outside the constructible range.
    pub fn read_state(r: &mut ByteReader<'_>) -> SketchResult<Self> {
        let seed = r.u64()?;
        let fat_width = r.u32()? as usize;
        let slim_width = r.u32()? as usize;
        let depth = r.u32()? as usize;
        if fat_width < 2 || slim_width < 2 || slim_width > fat_width {
            return Err(SketchError::corrupted(format!(
                "SF widths (fat {fat_width}, slim {slim_width}) outside the constructible range"
            )));
        }
        if !(1..=32).contains(&depth) {
            return Err(SketchError::corrupted(format!(
                "SF depth {depth} outside 1..=32"
            )));
        }
        let total = r.u64()?;
        let mut fat = Vec::with_capacity(fat_width * depth);
        for _ in 0..fat_width * depth {
            fat.push(r.u64()?);
        }
        let mut slim_counters = Vec::with_capacity(slim_width * depth);
        for _ in 0..slim_width * depth {
            slim_counters.push(r.u64()?);
        }
        Ok(Self {
            fat,
            fat_width,
            depth,
            seed,
            total,
            slim: SlimSketch {
                counters: slim_counters,
                width: slim_width,
                depth,
                seed: seed ^ SLIM_DOMAIN,
                total,
            },
        })
    }
}

impl<T: Hash + ?Sized> Update<T> for SfSketch {
    fn update(&mut self, item: &T) {
        self.update_weighted(item, 1);
    }
}

impl<T: Hash + ?Sized> FrequencyEstimator<T> for SfSketch {
    /// The **fat**-side estimate: the local authority, preserving the
    /// one-sided bound under deletions. Remote readers use the slim view
    /// ([`SfSketch::slim_estimate`] shows what they would see).
    fn estimate(&self, item: &T) -> u64 {
        self.fat_estimate_hash(hash_item(item, ITEM_SEED))
    }
}

impl Clear for SfSketch {
    fn clear(&mut self) {
        self.fat.fill(0);
        self.total = 0;
        self.slim.clear();
    }
}

impl SpaceUsage for SfSketch {
    fn space_bytes(&self) -> usize {
        self.fat.len() * std::mem::size_of::<u64>() + self.slim.space_bytes()
    }
}

impl MergeSketch for SfSketch {
    /// Counter-wise merge of both sides. The slim merge is plain addition
    /// — identical to [`SlimSketch::merge`] — so cutting a view commutes
    /// with merging: `merge(a, b).query_view()` equals
    /// `merge(a.query_view(), b.query_view())` exactly.
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        self.check_compatible(other)?;
        for (a, &b) in self.fat.iter_mut().zip(&other.fat) {
            *a += b;
        }
        self.total += other.total;
        self.slim.merge(&other.slim)
    }
}

impl QueryView for SfSketch {
    type View = SlimSketch;

    /// Cuts the slim query-side view: a clone of the incrementally
    /// maintained slim grid, `slim_width / fat_width` the size of the fat
    /// state.
    fn query_view(&self) -> SlimSketch {
        self.slim.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_min::CountMinSketch;
    use std::collections::HashMap;

    fn skewed_stream(n: u32, modulo: u32) -> Vec<u32> {
        // Zipf-ish: item i appears roughly n/(i+1) times.
        let mut out = Vec::new();
        let mut i = 0u32;
        while out.len() < n as usize {
            let item = i % modulo;
            let copies = (modulo / (item + 1)).max(1);
            for _ in 0..copies {
                out.push(item);
            }
            i += 1;
        }
        out.truncate(n as usize);
        out
    }

    fn exact(stream: &[u32]) -> HashMap<u32, u64> {
        let mut m = HashMap::new();
        for &x in stream {
            *m.entry(x).or_insert(0u64) += 1;
        }
        m
    }

    #[test]
    fn rejects_bad_params() {
        assert!(SfSketch::new(1, 2, 4, 0).is_err());
        assert!(SfSketch::new(64, 1, 4, 0).is_err());
        assert!(SfSketch::new(64, 128, 4, 0).is_err(), "slim wider than fat");
        assert!(SfSketch::new(64, 16, 0, 0).is_err());
        assert!(SfSketch::new(64, 16, 33, 0).is_err());
    }

    #[test]
    fn fat_and_slim_never_underestimate_insert_only() {
        let mut sf = SfSketch::new(1024, 64, 4, 1).unwrap();
        let stream = skewed_stream(20_000, 400);
        for &x in &stream {
            sf.update(&x);
        }
        for (item, &truth) in &exact(&stream) {
            assert!(
                FrequencyEstimator::estimate(&sf, item) >= truth,
                "fat underestimated {item}"
            );
            assert!(
                sf.slim_estimate(item) >= truth,
                "slim underestimated {item}"
            );
        }
        assert_eq!(sf.total(), 20_000);
    }

    #[test]
    fn slim_beats_same_size_count_min() {
        // The paper's core claim: at equal query-side size, the slim half
        // (backed by a fat update side) is tighter than a plain CM.
        let mut sf = SfSketch::new(2048, 64, 4, 7).unwrap();
        let mut cm = CountMinSketch::new(64, 4, 7).unwrap();
        let stream = skewed_stream(50_000, 1_000);
        for &x in &stream {
            sf.update(&x);
            cm.update(&x);
        }
        let mut slim_err = 0u64;
        let mut cm_err = 0u64;
        for (item, &truth) in &exact(&stream) {
            slim_err += sf.slim_estimate(item) - truth;
            cm_err += FrequencyEstimator::estimate(&cm, item) - truth;
        }
        assert!(
            slim_err <= cm_err,
            "slim total error {slim_err} exceeds same-size CM {cm_err}"
        );
    }

    #[test]
    fn weighted_equals_repeated() {
        let mut a = SfSketch::new(128, 16, 3, 6).unwrap();
        let mut b = SfSketch::new(128, 16, 3, 6).unwrap();
        for _ in 0..9 {
            a.update(&42u32);
        }
        b.update_weighted(&42u32, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn deletion_keeps_deleted_items_bound() {
        let mut sf = SfSketch::new(256, 32, 4, 3).unwrap();
        for i in 0..2_000u32 {
            sf.update(&(i % 100));
        }
        // Delete 15 of item 7's 20 occurrences.
        sf.delete_weighted(&7u32, 15).unwrap();
        assert_eq!(sf.total(), 1_985);
        assert!(FrequencyEstimator::estimate(&sf, &7u32) >= 5, "fat bound");
        assert!(sf.slim_estimate(&7u32) >= 5, "slim bound for deleted item");
        // Untouched items keep the fat-side bound.
        assert!(FrequencyEstimator::estimate(&sf, &8u32) >= 20);
    }

    #[test]
    fn deletion_overdraw_is_typed() {
        let mut sf = SfSketch::new(256, 32, 4, 3).unwrap();
        sf.update_weighted(&1u32, 5);
        assert!(sf.delete_weighted(&1u32, 6).is_err());
        // The failed delete left state untouched.
        assert_eq!(sf.total(), 5);
        assert_eq!(FrequencyEstimator::estimate(&sf, &1u32), 5);
        sf.delete_weighted(&1u32, 5).unwrap();
        assert_eq!(sf.total(), 0);
    }

    #[test]
    fn merge_preserves_bound_and_commutes_with_views() {
        let mut a = SfSketch::new(512, 32, 4, 9).unwrap();
        let mut b = SfSketch::new(512, 32, 4, 9).unwrap();
        let sa = skewed_stream(5_000, 200);
        let sb = skewed_stream(5_000, 300);
        for &x in &sa {
            a.update(&x);
        }
        for &x in &sb {
            b.update(&x);
        }
        let mut view_merge = a.query_view();
        view_merge.merge(&b.query_view()).unwrap();

        a.merge(&b).unwrap();
        assert_eq!(a.total(), 10_000);
        // Merging then viewing equals viewing then merging, byte for byte.
        assert_eq!(a.query_view(), view_merge);

        let mut combined = sa.clone();
        combined.extend_from_slice(&sb);
        for (item, &truth) in &exact(&combined) {
            assert!(FrequencyEstimator::estimate(&a, item) >= truth);
            assert!(a.slim_estimate(item) >= truth, "slim after merge");
        }
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = SfSketch::new(128, 16, 4, 0).unwrap();
        assert!(a.merge(&SfSketch::new(256, 16, 4, 0).unwrap()).is_err());
        assert!(a.merge(&SfSketch::new(128, 32, 4, 0).unwrap()).is_err());
        assert!(a.merge(&SfSketch::new(128, 16, 5, 0).unwrap()).is_err());
        assert!(a.merge(&SfSketch::new(128, 16, 4, 1).unwrap()).is_err());
    }

    #[test]
    fn clear_space_and_view_size() {
        let mut sf = SfSketch::new(1024, 64, 4, 0).unwrap();
        sf.update(&1u8);
        let view = sf.query_view();
        assert_eq!(view.space_bytes(), 64 * 4 * 8);
        assert_eq!(sf.space_bytes(), (1024 + 64) * 4 * 8);
        assert!(view.space_bytes() * 8 <= sf.space_bytes());
        sf.clear();
        assert_eq!(FrequencyEstimator::estimate(&sf, &1u8), 0);
        assert_eq!(sf.slim_estimate(&1u8), 0);
        assert_eq!(sf.total(), 0);
        assert_eq!(sf.query_view().total(), 0);
    }

    #[test]
    fn state_round_trips_and_corruption_is_typed() {
        let mut sf = SfSketch::new(128, 16, 3, 11).unwrap();
        for i in 0..1_000u32 {
            sf.update(&(i % 50));
        }
        sf.delete_weighted(&3u32, 4).unwrap();
        let mut w = ByteWriter::new();
        sf.write_state(&mut w);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        let restored = SfSketch::read_state(&mut r).unwrap();
        assert_eq!(restored, sf);
        assert_eq!(restored.query_view(), sf.query_view());

        for cut in [0, 8, 16, bytes.len() - 1] {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(matches!(
                SfSketch::read_state(&mut r),
                Err(SketchError::Corrupted { .. })
            ));
        }
        // Zero the fat width (bytes 8..12): structurally invalid.
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&0u32.to_le_bytes());
        let mut r = ByteReader::new(&bad);
        assert!(matches!(
            SfSketch::read_state(&mut r),
            Err(SketchError::Corrupted { .. })
        ));
    }

    #[test]
    fn slim_view_round_trips() {
        let mut sf = SfSketch::new(128, 16, 3, 13).unwrap();
        for i in 0..500u32 {
            sf.update(&(i % 40));
        }
        let view = sf.query_view();
        let mut w = ByteWriter::new();
        view.write_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let restored = SlimSketch::read_state(&mut r).unwrap();
        assert_eq!(restored, view);
        assert_eq!(
            FrequencyEstimator::<u32>::estimate(&restored, &0),
            sf.slim_estimate(&0u32)
        );
        let mut r = ByteReader::new(&bytes[..bytes.len() - 2]);
        assert!(matches!(
            SlimSketch::read_state(&mut r),
            Err(SketchError::Corrupted { .. })
        ));
    }
}
