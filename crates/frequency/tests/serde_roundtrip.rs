//! Serde round-trips for the linear frequency sketches (`--features serde`).

#![cfg(feature = "serde")]

use sketches_core::{FrequencyEstimator, MergeSketch, Update};
use sketches_frequency::{CmRangeSketch, CountMinSketch, CountSketch};

#[test]
fn count_min_roundtrip() {
    let mut cm = CountMinSketch::new(128, 5, 9).unwrap();
    for i in 0..5_000u32 {
        cm.update(&(i % 100));
    }
    let back: CountMinSketch = serde_json::from_str(&serde_json::to_string(&cm).unwrap()).unwrap();
    assert_eq!(back, cm);
    for item in 0..100u32 {
        assert_eq!(
            FrequencyEstimator::estimate(&back, &item),
            FrequencyEstimator::estimate(&cm, &item)
        );
    }
    // Merge compatibility survives the trip.
    let mut merged = back.clone();
    merged.merge(&cm).unwrap();
    assert_eq!(merged.total(), 2 * cm.total());
}

#[test]
fn count_sketch_roundtrip() {
    let mut cs = CountSketch::new(128, 5, 9).unwrap();
    for i in 0..3_000u32 {
        cs.update(&(i % 64));
    }
    let back: CountSketch = serde_json::from_str(&serde_json::to_string(&cs).unwrap()).unwrap();
    for item in 0..64u32 {
        assert_eq!(back.estimate(&item), cs.estimate(&item));
    }
}

#[test]
fn range_sketch_roundtrip() {
    let mut rs = CmRangeSketch::new(10, 256, 4, 1).unwrap();
    for x in 0..500u64 {
        rs.update(x, 2).unwrap();
    }
    let back: CmRangeSketch = serde_json::from_str(&serde_json::to_string(&rs).unwrap()).unwrap();
    assert_eq!(back.range_count(100, 200), rs.range_count(100, 200));
    assert_eq!(back.quantile(0.5).unwrap(), rs.quantile(0.5).unwrap());
}
