//! Serde round-trips (enabled with `--features serde`): a sketch shipped
//! across the wire must deserialize into an equivalent sketch — same
//! estimates, still updatable, still mergeable with its peers.

#![cfg(feature = "serde")]

use sketches_cardinality::{HyperLogLog, LinearCounter, LogLog, MorrisCounter, Pcsa};
use sketches_core::{CardinalityEstimator, MergeSketch, Update};

#[test]
fn hll_roundtrip_preserves_state_and_mergeability() {
    let mut h = HyperLogLog::new(10, 7).unwrap();
    for i in 0..10_000u64 {
        h.update(&i);
    }
    let json = serde_json::to_string(&h).unwrap();
    let mut back: HyperLogLog = serde_json::from_str(&json).unwrap();
    assert_eq!(back, h);
    assert_eq!(back.estimate(), h.estimate());
    // Still updatable and mergeable after the trip.
    back.update(&99_999_999u64);
    let mut other = HyperLogLog::new(10, 7).unwrap();
    other.update(&1u64);
    back.merge(&other).unwrap();
}

#[test]
fn loglog_and_pcsa_roundtrip() {
    let mut ll = LogLog::new(8, 3).unwrap();
    let mut fm = Pcsa::new(6, 3).unwrap();
    for i in 0..5_000u64 {
        ll.update(&i);
        fm.update(&i);
    }
    let ll2: LogLog = serde_json::from_str(&serde_json::to_string(&ll).unwrap()).unwrap();
    let fm2: Pcsa = serde_json::from_str(&serde_json::to_string(&fm).unwrap()).unwrap();
    assert_eq!(ll2.estimate(), ll.estimate());
    assert_eq!(fm2.estimate(), fm.estimate());
}

#[test]
fn morris_and_linear_counter_roundtrip() {
    let mut m = MorrisCounter::new(64.0, 5).unwrap();
    m.observe_many(10_000);
    let m2: MorrisCounter = serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
    assert_eq!(m2.estimate(), m.estimate());
    assert_eq!(m2.register(), m.register());

    let mut lc = LinearCounter::new(1024, 5).unwrap();
    for i in 0..300u64 {
        lc.update(&i);
    }
    let lc2: LinearCounter = serde_json::from_str(&serde_json::to_string(&lc).unwrap()).unwrap();
    assert_eq!(lc2.estimate(), lc.estimate());
}
