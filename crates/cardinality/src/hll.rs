//! HyperLogLog (Flajolet, Fusy, Gandouet & Meunier, AOFA 2007).
//!
//! The survey calls HyperLogLog "very simple to implement" with a "highly
//! sophisticated" analysis — the structure is `m = 2^p` registers holding
//! the max leading-zero count among hashes routed to each register, and the
//! estimator is the *harmonic* mean `α_m · m² / Σ 2^{-M_j}` with standard
//! error `≈ 1.04/√m` (verified by experiment E1).
//!
//! This implementation follows the original paper: 64-bit hashing (which
//! removes the large-range correction needed with 32-bit hashes, per Heule
//! et al.) and the linear-counting fallback for small cardinalities.
//! The bias-corrected HLL++ variant lives in [`crate::hllpp`].

use sketches_core::{
    ByteReader, ByteWriter, CardinalityEstimator, Clear, MergeSketch, SketchError, SketchResult,
    SpaceUsage, Update,
};
use sketches_hash::bits::rho_leading;
use sketches_hash::hash_item;
use sketches_hash::mix::mix64_seeded;
use std::hash::Hash;

/// Hash seed for item-level updates, shared with [`crate::hllpp`] so both
/// sketches fingerprint items identically before domain separation.
pub(crate) const ITEM_SEED: u64 = 0x5EED_BA5E;

/// Returns the HyperLogLog bias-correction constant `α_m`.
#[must_use]
pub fn alpha(m: usize) -> f64 {
    match m {
        16 => 0.673,
        32 => 0.697,
        64 => 0.709,
        _ => 0.7213 / (1.0 + 1.079 / m as f64),
    }
}

/// A HyperLogLog sketch with `2^p` 8-bit registers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HyperLogLog {
    registers: Vec<u8>,
    precision: u32,
    seed: u64,
}

impl HyperLogLog {
    /// Creates a sketch with `2^precision` registers (`precision` in
    /// `4..=18`).
    ///
    /// # Errors
    /// Returns an error for precision outside `4..=18`.
    pub fn new(precision: u32, seed: u64) -> SketchResult<Self> {
        sketches_core::check_range("precision", precision, 4, 18)?;
        Ok(Self {
            registers: vec![0u8; 1 << precision],
            precision,
            seed,
        })
    }

    /// Absorbs a pre-hashed item (use when the caller already has a good
    /// 64-bit fingerprint; [`Update::update`] handles arbitrary keys).
    #[inline]
    pub fn update_hash(&mut self, hash: u64) {
        let h = mix64_seeded(hash, self.seed);
        let idx = (h >> (64 - self.precision)) as usize;
        let r = rho_leading(h, 64 - self.precision);
        if r > self.registers[idx] {
            self.registers[idx] = r;
        }
    }

    /// Number of registers `m`.
    #[must_use]
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Precision `p` (so `m = 2^p`).
    #[must_use]
    pub fn precision(&self) -> u32 {
        self.precision
    }

    /// Read-only view of the registers (used by HLL++ and by tests).
    #[must_use]
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// The seed this sketch hashes with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets register `idx` to `max(current, value)`; used by the sparse
    /// HLL++ representation when upgrading to dense.
    pub(crate) fn offer_register(&mut self, idx: usize, value: u8) {
        if value > self.registers[idx] {
            self.registers[idx] = value;
        }
    }

    /// Creates an HLL that expects callers to pre-mix hashes themselves
    /// (used by HLL++, which applies its own seeding before routing).
    pub(crate) fn with_seed_raw(precision: u32, seed: u64) -> Self {
        Self {
            registers: vec![0u8; 1 << precision],
            precision,
            seed,
        }
    }

    /// Absorbs an already-mixed 64-bit hash without further seeding.
    #[inline]
    pub(crate) fn insert_mixed(&mut self, h: u64) {
        let idx = (h >> (64 - self.precision)) as usize;
        let r = rho_leading(h, 64 - self.precision);
        if r > self.registers[idx] {
            self.registers[idx] = r;
        }
    }

    /// Serializes the full sketch state — precision, seed, registers — in
    /// the workspace checkpoint layout ([`HyperLogLog::read_state`] inverts
    /// it exactly). The register count is implied by the precision, so no
    /// separate length field is stored.
    pub fn write_state(&self, w: &mut ByteWriter) {
        w.put_u32(self.precision);
        w.put_u64(self.seed);
        w.put_bytes(&self.registers);
    }

    /// Restores a sketch from [`HyperLogLog::write_state`] bytes.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on truncation or a precision
    /// outside `4..=18`. (Bit-level integrity is the enclosing snapshot
    /// checksum's job; this validates structure.)
    pub fn read_state(r: &mut ByteReader<'_>) -> SketchResult<Self> {
        let precision = r.u32()?;
        if !(4..=18).contains(&precision) {
            return Err(SketchError::corrupted(format!(
                "HLL precision {precision} outside 4..=18"
            )));
        }
        let seed = r.u64()?;
        let registers = r.bytes(1 << precision)?.to_vec();
        Ok(Self {
            registers,
            precision,
            seed,
        })
    }

    /// Theoretical relative standard error `1.04/√m`.
    #[must_use]
    pub fn theoretical_rse(&self) -> f64 {
        1.04 / (self.registers.len() as f64).sqrt()
    }

    /// The raw (uncorrected) harmonic-mean estimate.
    #[must_use]
    pub fn raw_estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let inv_sum: f64 = self
            .registers
            .iter()
            .map(|&r| 2f64.powi(-i32::from(r)))
            .sum();
        alpha(self.registers.len()) * m * m / inv_sum
    }

    /// Number of registers still zero.
    #[must_use]
    pub fn zero_registers(&self) -> usize {
        self.registers.iter().filter(|&&r| r == 0).count()
    }
}

impl<T: Hash + ?Sized> Update<T> for HyperLogLog {
    fn update(&mut self, item: &T) {
        self.update_hash(hash_item(item, ITEM_SEED));
    }

    /// Batched ingest: hoists the register-shift and seed out of the loop
    /// and writes registers directly, skipping the per-call setup of
    /// [`HyperLogLog::update_hash`]. Register-max updates commute, so the
    /// result is identical to per-item updates in any order.
    fn update_slice(&mut self, items: &[T])
    where
        T: Sized,
    {
        let shift = 64 - self.precision;
        for item in items {
            let h = mix64_seeded(hash_item(item, ITEM_SEED), self.seed);
            let idx = (h >> shift) as usize;
            let r = rho_leading(h, shift);
            if r > self.registers[idx] {
                self.registers[idx] = r;
            }
        }
    }
}

impl CardinalityEstimator for HyperLogLog {
    fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let raw = self.raw_estimate();
        if raw <= 2.5 * m {
            let zeros = self.zero_registers();
            if zeros > 0 {
                // Small-range correction: linear counting on the registers.
                return m * (m / zeros as f64).ln();
            }
        }
        // With a 64-bit hash the large-range correction is unnecessary.
        raw
    }
}

impl Clear for HyperLogLog {
    fn clear(&mut self) {
        self.registers.fill(0);
    }
}

impl SpaceUsage for HyperLogLog {
    fn space_bytes(&self) -> usize {
        self.registers.len()
    }
}

impl MergeSketch for HyperLogLog {
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.precision != other.precision {
            return Err(SketchError::incompatible(format!(
                "precisions differ: {} vs {}",
                self.precision, other.precision
            )));
        }
        if self.seed != other.seed {
            return Err(SketchError::incompatible("seeds differ"));
        }
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(b);
        }
        Ok(())
    }
}

/// Estimates `|A ∩ B|` from HLL sketches by inclusion–exclusion:
/// `|A| + |B| − |A ∪ B|`. The result can be negative for small overlaps —
/// it is clamped at zero — and its error grows with `|A ∪ B|`, which is the
/// documented weakness of slice-and-dice reach analytics (experiment E8).
///
/// # Errors
/// Returns an error if the sketches are incompatible.
pub fn intersection_estimate(a: &HyperLogLog, b: &HyperLogLog) -> SketchResult<f64> {
    let mut union = a.clone();
    union.merge(b)?;
    Ok((a.estimate() + b.estimate() - union.estimate()).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_precision() {
        assert!(HyperLogLog::new(3, 0).is_err());
        assert!(HyperLogLog::new(19, 0).is_err());
        assert!(HyperLogLog::new(4, 0).is_ok());
        assert!(HyperLogLog::new(18, 0).is_ok());
    }

    #[test]
    fn alpha_values() {
        assert!((alpha(16) - 0.673).abs() < 1e-12);
        assert!((alpha(4096) - 0.7213 / (1.0 + 1.079 / 4096.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_estimates_zero() {
        let h = HyperLogLog::new(10, 0).unwrap();
        assert_eq!(h.estimate(), 0.0);
    }

    #[test]
    fn estimate_within_four_sigma_across_scales() {
        let p = 12; // m = 4096, stderr ≈ 1.63%
        for (n, seed) in [(1_000u64, 1u64), (10_000, 2), (100_000, 3), (1_000_000, 4)] {
            let mut h = HyperLogLog::new(p, seed).unwrap();
            for i in 0..n {
                h.update(&i);
            }
            let rel = (h.estimate() - n as f64).abs() / n as f64;
            assert!(rel < 4.0 * h.theoretical_rse(), "n={n}: rel err {rel:.4}");
        }
    }

    #[test]
    fn small_range_uses_linear_counting() {
        let mut h = HyperLogLog::new(12, 9).unwrap();
        for i in 0..100u64 {
            h.update(&i);
        }
        // At n=100 with m=4096 almost all registers are zero; the linear
        // counting path should be nearly exact.
        let rel = (h.estimate() - 100.0).abs() / 100.0;
        assert!(rel < 0.05, "small-range estimate off by {rel:.4}");
    }

    #[test]
    fn duplicates_ignored() {
        let mut a = HyperLogLog::new(10, 1).unwrap();
        let mut b = HyperLogLog::new(10, 1).unwrap();
        for i in 0..10_000u64 {
            a.update(&i);
            b.update(&i);
            b.update(&i);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn update_slice_matches_per_item_exactly() {
        let data: Vec<u64> = (0..40_000).collect();
        let mut per_item = HyperLogLog::new(11, 6).unwrap();
        for x in &data {
            per_item.update(x);
        }
        for chunk in [data.len(), 1, 7, 613] {
            let mut sliced = HyperLogLog::new(11, 6).unwrap();
            for part in data.chunks(chunk) {
                sliced.update_slice(part);
            }
            assert_eq!(sliced, per_item, "chunk size {chunk}");
        }
    }

    #[test]
    fn merge_is_exactly_union() {
        let mut a = HyperLogLog::new(11, 3).unwrap();
        let mut b = HyperLogLog::new(11, 3).unwrap();
        let mut u = HyperLogLog::new(11, 3).unwrap();
        for i in 0..50_000u64 {
            a.update(&i);
            u.update(&i);
        }
        for i in 25_000..75_000u64 {
            b.update(&i);
            u.update(&i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, u, "merged sketch must equal union-stream sketch");
    }

    #[test]
    fn merge_is_commutative_and_idempotent() {
        let mut a = HyperLogLog::new(8, 5).unwrap();
        let mut b = HyperLogLog::new(8, 5).unwrap();
        for i in 0..1000u64 {
            a.update(&i);
        }
        for i in 500..1500u64 {
            b.update(&i);
        }
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        assert_eq!(ab, ba);
        let mut aa = ab.clone();
        aa.merge(&ab).unwrap();
        assert_eq!(aa, ab, "self-merge must be a no-op");
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = HyperLogLog::new(8, 0).unwrap();
        assert!(a.merge(&HyperLogLog::new(9, 0).unwrap()).is_err());
        assert!(a.merge(&HyperLogLog::new(8, 1).unwrap()).is_err());
    }

    #[test]
    fn intersection_estimate_reasonable() {
        let mut a = HyperLogLog::new(12, 7).unwrap();
        let mut b = HyperLogLog::new(12, 7).unwrap();
        // |A| = 60k, |B| = 60k, overlap 20k.
        for i in 0..60_000u64 {
            a.update(&i);
        }
        for i in 40_000..100_000u64 {
            b.update(&i);
        }
        let inter = intersection_estimate(&a, &b).unwrap();
        let rel = (inter - 20_000.0).abs() / 20_000.0;
        assert!(rel < 0.25, "intersection {inter} off by {rel:.3}");
    }

    #[test]
    fn string_keys_work() {
        let mut h = HyperLogLog::new(10, 2).unwrap();
        for i in 0..5_000u32 {
            h.update(&format!("user-{i}"));
        }
        let rel = (h.estimate() - 5_000.0).abs() / 5_000.0;
        assert!(rel < 0.15, "rel {rel}");
    }

    #[test]
    fn clear_and_space() {
        let mut h = HyperLogLog::new(10, 0).unwrap();
        h.update(&1u8);
        assert!(h.estimate() > 0.0);
        h.clear();
        assert_eq!(h.estimate(), 0.0);
        assert_eq!(h.space_bytes(), 1024);
    }

    #[test]
    fn state_round_trips_exactly() {
        let mut h = HyperLogLog::new(7, 0xFACE).unwrap();
        for i in 0..5_000u64 {
            h.update(&i);
        }
        let mut w = ByteWriter::new();
        h.write_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let restored = HyperLogLog::read_state(&mut r).unwrap();
        r.expect_end("hll state").unwrap();
        assert_eq!(restored, h);
        // Canonical encoding: re-serializing yields identical bytes.
        let mut w2 = ByteWriter::new();
        restored.write_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn state_corruption_is_typed() {
        let mut h = HyperLogLog::new(4, 1).unwrap();
        h.update(&42u64);
        let mut w = ByteWriter::new();
        h.write_state(&mut w);
        let bytes = w.into_bytes();
        // Every truncation fails with Corrupted, never a panic.
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            let got = HyperLogLog::read_state(&mut r);
            assert!(
                matches!(got, Err(SketchError::Corrupted { .. })),
                "cut {cut}"
            );
        }
        // An impossible precision is structurally rejected.
        let mut bad = bytes.clone();
        bad[0] = 200;
        let mut r = ByteReader::new(&bad);
        assert!(matches!(
            HyperLogLog::read_state(&mut r),
            Err(SketchError::Corrupted { .. })
        ));
    }
}
