//! The Morris approximate counter (1977).
//!
//! Counts `n` events in `O(log log n)` bits by storing only the exponent of
//! the count. The counter holds a small register `x` and on each event
//! increments it with probability `(1 + 1/a)^{-x}`; the estimate is
//! `a · ((1 + 1/a)^x − 1)`, which is exactly unbiased.
//!
//! The base parameter `a` trades space for accuracy: the relative standard
//! error is roughly `1/√(2a)` while the register value only reaches
//! `log_{1+1/a}(n/a)`, so doubling `a` halves the variance at the cost of
//! ~1 extra bit. This is the accuracy/space frontier the PODS 2022 best
//! paper (Nelson–Yu, "Optimal Bounds for Approximate Counting") pinned down,
//! reproduced by experiment E20.

use sketches_core::{check_range, Clear, MergeSketch, SketchError, SketchResult, SpaceUsage};
use sketches_hash::rng::{Rng64, SplitMix64};

/// A Morris approximate counter with base parameter `a`.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MorrisCounter {
    /// Base parameter: larger is more accurate but needs more bits.
    a: f64,
    /// The stored exponent register.
    register: u32,
    /// Probability of incrementing at the current register value,
    /// maintained incrementally to avoid a `powf` per event.
    increment_prob: f64,
    rng: SplitMix64,
}

impl MorrisCounter {
    /// Creates a counter with base parameter `a >= 1` and a PRNG seed.
    ///
    /// # Errors
    /// Returns an error if `a` is not finite or `< 1`.
    pub fn new(a: f64, seed: u64) -> SketchResult<Self> {
        if !a.is_finite() {
            return Err(SketchError::invalid("a", "must be finite"));
        }
        check_range("a", a, 1.0, 1e12)?;
        Ok(Self {
            a,
            register: 0,
            increment_prob: 1.0,
            rng: SplitMix64::new(seed),
        })
    }

    /// Registers one event.
    pub fn observe(&mut self) {
        if self.rng.next_f64() < self.increment_prob {
            self.register += 1;
            self.increment_prob /= 1.0 + 1.0 / self.a;
        }
    }

    /// Registers `n` events.
    pub fn observe_many(&mut self, n: u64) {
        for _ in 0..n {
            self.observe();
        }
    }

    /// Unbiased estimate of the number of events observed.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        self.a * ((1.0 + 1.0 / self.a).powi(self.register as i32) - 1.0)
    }

    /// Current register value (the quantity that needs storing).
    #[must_use]
    pub fn register(&self) -> u32 {
        self.register
    }

    /// Number of bits needed to store the current register value.
    #[must_use]
    pub fn register_bits(&self) -> u32 {
        32 - self.register.leading_zeros().min(31)
    }

    /// The base parameter.
    #[must_use]
    pub fn base(&self) -> f64 {
        self.a
    }

    /// Theoretical relative standard error for this base, `≈ 1/√(2a)`.
    #[must_use]
    pub fn theoretical_rse(&self) -> f64 {
        1.0 / (2.0 * self.a).sqrt()
    }
}

impl Clear for MorrisCounter {
    fn clear(&mut self) {
        self.register = 0;
        self.increment_prob = 1.0;
    }
}

impl SpaceUsage for MorrisCounter {
    fn space_bytes(&self) -> usize {
        // The information-theoretic payload is just the register; report the
        // struct for honesty about this implementation.
        std::mem::size_of::<Self>()
    }
}

impl MergeSketch for MorrisCounter {
    /// Merges by summing the two unbiased estimates and re-encoding into a
    /// register value. Unlike register-max sketches this is approximate
    /// (it preserves expectation but not the exact distribution), which is
    /// the standard practical treatment for Morris counters.
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if (self.a - other.a).abs() > f64::EPSILON {
            return Err(SketchError::incompatible(format!(
                "base mismatch: {} vs {}",
                self.a, other.a
            )));
        }
        let combined = self.estimate() + other.estimate();
        // Invert estimate(): x = log_{1+1/a}(combined/a + 1), rounded to
        // nearest with an unbiasing coin flip on the fractional part.
        let exact_x = (combined / self.a + 1.0).ln() / (1.0 + 1.0 / self.a).ln();
        let floor = exact_x.floor();
        let frac = exact_x - floor;
        let x = if self.rng.next_f64() < frac {
            floor as u32 + 1
        } else {
            floor as u32
        };
        self.register = x;
        self.increment_prob = (1.0 + 1.0 / self.a).powi(-(x as i32));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_base() {
        assert!(MorrisCounter::new(0.5, 0).is_err());
        assert!(MorrisCounter::new(f64::NAN, 0).is_err());
        assert!(MorrisCounter::new(f64::INFINITY, 0).is_err());
        assert!(MorrisCounter::new(1.0, 0).is_ok());
    }

    #[test]
    fn empty_estimates_zero() {
        let c = MorrisCounter::new(16.0, 1).unwrap();
        assert_eq!(c.estimate(), 0.0);
        assert_eq!(c.register(), 0);
    }

    #[test]
    fn estimate_tracks_count_within_theory() {
        // With a = 256, RSE ≈ 1/√512 ≈ 4.4%; average 32 independent
        // counters to tighten the test.
        let n = 100_000u64;
        let trials = 32;
        let mut sum = 0.0;
        for t in 0..trials {
            let mut c = MorrisCounter::new(256.0, 1000 + t).unwrap();
            c.observe_many(n);
            sum += c.estimate();
        }
        let mean = sum / trials as f64;
        let rel = (mean - n as f64).abs() / n as f64;
        assert!(rel < 0.03, "mean estimate {mean} off by {rel:.3}");
    }

    #[test]
    fn register_grows_double_logarithmically() {
        let mut c = MorrisCounter::new(1.0, 7).unwrap();
        c.observe_many(1_000_000);
        // With a=1 the register is ~log2(n) ≈ 20, storable in ~5 bits.
        assert!(c.register() > 10 && c.register() < 30, "{}", c.register());
        assert!(c.register_bits() <= 5 + 1);
    }

    #[test]
    fn larger_base_means_lower_variance() {
        let n = 50_000u64;
        let var = |a: f64| -> f64 {
            let trials = 48;
            let mut sq = 0.0;
            for t in 0..trials {
                let mut c = MorrisCounter::new(a, 31 * t + 5).unwrap();
                c.observe_many(n);
                let rel = (c.estimate() - n as f64) / n as f64;
                sq += rel * rel;
            }
            sq / trials as f64
        };
        let v_small = var(4.0);
        let v_large = var(256.0);
        assert!(
            v_large < v_small / 4.0,
            "variance should drop sharply with base: {v_small} vs {v_large}"
        );
    }

    #[test]
    fn clear_resets() {
        let mut c = MorrisCounter::new(8.0, 3).unwrap();
        c.observe_many(1000);
        assert!(c.estimate() > 0.0);
        c.clear();
        assert_eq!(c.estimate(), 0.0);
        assert_eq!(c.register(), 0);
    }

    #[test]
    fn merge_requires_same_base() {
        let mut a = MorrisCounter::new(8.0, 1).unwrap();
        let b = MorrisCounter::new(16.0, 2).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn merge_approximates_sum() {
        let trials = 48;
        let mut sum = 0.0;
        for t in 0..trials {
            let mut a = MorrisCounter::new(128.0, 2 * t).unwrap();
            let mut b = MorrisCounter::new(128.0, 2 * t + 1).unwrap();
            a.observe_many(30_000);
            b.observe_many(50_000);
            a.merge(&b).unwrap();
            sum += a.estimate();
        }
        let mean = sum / trials as f64;
        let rel = (mean - 80_000.0).abs() / 80_000.0;
        assert!(rel < 0.05, "merged mean {mean} off by {rel:.3}");
    }

    #[test]
    fn theoretical_rse_formula() {
        let c = MorrisCounter::new(2.0, 0).unwrap();
        assert!((c.theoretical_rse() - 0.5).abs() < 1e-12);
        let c = MorrisCounter::new(50.0, 0).unwrap();
        assert!((c.theoretical_rse() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed| {
            let mut c = MorrisCounter::new(8.0, seed).unwrap();
            c.observe_many(10_000);
            c.register()
        };
        assert_eq!(run(5), run(5));
    }
}
