//! Flajolet–Martin probabilistic counting with stochastic averaging (PCSA,
//! 1983/1985).
//!
//! The first sublinear distinct counter: each item is hashed, the position
//! of its lowest set bit updates one of `m` bitmaps chosen by other hash
//! bits ("stochastic averaging"), and the estimate is
//! `(m / φ) · 2^{R̄}` where `R̄` is the mean position of the lowest *unset*
//! bit across bitmaps and `φ ≈ 0.77351` is the Flajolet–Martin magic
//! constant. Standard error is about `0.78/√m`.

use sketches_core::{
    CardinalityEstimator, Clear, MergeSketch, SketchError, SketchResult, SpaceUsage, Update,
};
use sketches_hash::bits::rho;
use sketches_hash::hash_item;
use sketches_hash::mix::mix64_seeded;
use std::hash::Hash;

/// The Flajolet–Martin correction constant φ.
const PHI: f64 = 0.77351;

/// PCSA: `m` Flajolet–Martin bitmaps with stochastic averaging.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pcsa {
    /// One 64-bit bitmap per stochastic-averaging bucket.
    bitmaps: Vec<u64>,
    /// log2 of the number of bitmaps.
    bucket_bits: u32,
    seed: u64,
}

impl Pcsa {
    /// Creates a PCSA sketch with `2^bucket_bits` bitmaps (`bucket_bits`
    /// in `1..=16`).
    ///
    /// # Errors
    /// Returns an error for `bucket_bits` outside `1..=16`.
    pub fn new(bucket_bits: u32, seed: u64) -> SketchResult<Self> {
        sketches_core::check_range("bucket_bits", bucket_bits, 1, 16)?;
        Ok(Self {
            bitmaps: vec![0u64; 1 << bucket_bits],
            bucket_bits,
            seed,
        })
    }

    /// Absorbs a pre-hashed item.
    #[inline]
    pub fn update_hash(&mut self, hash: u64) {
        let h = mix64_seeded(hash, self.seed);
        let bucket = (h >> (64 - self.bucket_bits)) as usize;
        let r = rho(h, 64 - self.bucket_bits);
        // rho is in 1..=width+1; bit positions are 0-based.
        let bit = u32::from(r - 1).min(63);
        self.bitmaps[bucket] |= 1u64 << bit;
    }

    /// Number of bitmaps.
    #[must_use]
    pub fn num_bitmaps(&self) -> usize {
        self.bitmaps.len()
    }

    /// Position of the lowest unset bit in bitmap `i` (the FM `R` value).
    fn lowest_zero(bitmap: u64) -> u32 {
        (!bitmap).trailing_zeros()
    }
}

impl<T: Hash + ?Sized> Update<T> for Pcsa {
    fn update(&mut self, item: &T) {
        self.update_hash(hash_item(item, 0xF1A7_013E));
    }
}

impl CardinalityEstimator for Pcsa {
    fn estimate(&self) -> f64 {
        let m = self.bitmaps.len() as f64;
        let mean_r: f64 = self
            .bitmaps
            .iter()
            .map(|&b| f64::from(Self::lowest_zero(b)))
            .sum::<f64>()
            / m;
        (m / PHI) * 2f64.powf(mean_r)
    }
}

impl Clear for Pcsa {
    fn clear(&mut self) {
        self.bitmaps.fill(0);
    }
}

impl SpaceUsage for Pcsa {
    fn space_bytes(&self) -> usize {
        self.bitmaps.len() * std::mem::size_of::<u64>()
    }
}

impl MergeSketch for Pcsa {
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.bucket_bits != other.bucket_bits {
            return Err(SketchError::incompatible("bitmap counts differ"));
        }
        if self.seed != other.seed {
            return Err(SketchError::incompatible("seeds differ"));
        }
        for (a, b) in self.bitmaps.iter_mut().zip(&other.bitmaps) {
            *a |= b;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Pcsa::new(0, 0).is_err());
        assert!(Pcsa::new(17, 0).is_err());
        assert!(Pcsa::new(6, 0).is_ok());
    }

    #[test]
    fn lowest_zero_logic() {
        assert_eq!(Pcsa::lowest_zero(0b0), 0);
        assert_eq!(Pcsa::lowest_zero(0b1), 1);
        assert_eq!(Pcsa::lowest_zero(0b1011), 2);
        assert_eq!(Pcsa::lowest_zero(u64::MAX), 64);
    }

    #[test]
    fn estimate_within_theory() {
        // m = 256 bitmaps gives stderr ~0.78/16 ≈ 4.9%.
        let mut fm = Pcsa::new(8, 11).unwrap();
        let n = 200_000u64;
        for i in 0..n {
            fm.update(&i);
        }
        let est = fm.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.15, "estimate {est} off by {rel:.3}");
    }

    #[test]
    fn duplicates_ignored() {
        let mut a = Pcsa::new(6, 1).unwrap();
        let mut b = Pcsa::new(6, 1).unwrap();
        for i in 0..5_000u64 {
            a.update(&i);
            b.update(&i);
            b.update(&i);
            b.update(&i);
        }
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Pcsa::new(7, 3).unwrap();
        let mut b = Pcsa::new(7, 3).unwrap();
        let mut u = Pcsa::new(7, 3).unwrap();
        for i in 0..10_000u64 {
            a.update(&i);
            u.update(&i);
        }
        for i in 5_000..15_000u64 {
            b.update(&i);
            u.update(&i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.estimate(), u.estimate());
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = Pcsa::new(6, 0).unwrap();
        assert!(a.merge(&Pcsa::new(7, 0).unwrap()).is_err());
        assert!(a.merge(&Pcsa::new(6, 1).unwrap()).is_err());
    }

    #[test]
    fn clear_and_space() {
        let mut fm = Pcsa::new(5, 0).unwrap();
        fm.update(&1u8);
        fm.clear();
        assert_eq!(fm.bitmaps.iter().sum::<u64>(), 0);
        assert_eq!(fm.space_bytes(), 32 * 8);
    }
}
