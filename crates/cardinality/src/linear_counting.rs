//! Linear Counting (Whang, Vander-Zanden & Taylor, 1990).
//!
//! Hashes each item to one of `m` bits and estimates the distinct count from
//! the fraction of bits still zero: `n̂ = −m · ln(V)` where `V` is the empty
//! fraction. Space is linear in the cardinality (hence the name) but the
//! constant is tiny, and at low *load factors* the estimator is extremely
//! accurate — which is exactly why HyperLogLog falls back to Linear Counting
//! for small cardinalities (see [`crate::hll`]).

use sketches_core::{
    CardinalityEstimator, Clear, MergeSketch, SketchError, SketchResult, SpaceUsage, Update,
};
use sketches_hash::bits::BitVec;
use sketches_hash::hash_item;
use sketches_hash::mix::{fastrange64, mix64_seeded};
use std::hash::Hash;

/// A Linear Counting sketch over `m` bits.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinearCounter {
    bits: BitVec,
    seed: u64,
}

impl LinearCounter {
    /// Creates a counter with `m` bits (`m >= 16`).
    ///
    /// # Errors
    /// Returns an error if `m < 16`.
    pub fn new(m: usize, seed: u64) -> SketchResult<Self> {
        if m < 16 {
            return Err(SketchError::invalid("m", "need at least 16 bits"));
        }
        Ok(Self {
            bits: BitVec::zeros(m),
            seed,
        })
    }

    /// Absorbs a pre-hashed item.
    #[inline]
    pub fn update_hash(&mut self, hash: u64) {
        let idx = fastrange64(mix64_seeded(hash, self.seed), self.bits.len() as u64);
        self.bits.set(idx as usize);
    }

    /// Number of bits in the table.
    #[must_use]
    pub fn num_bits(&self) -> usize {
        self.bits.len()
    }

    /// Fraction of bits still zero.
    #[must_use]
    pub fn empty_fraction(&self) -> f64 {
        1.0 - self.bits.count_ones() as f64 / self.bits.len() as f64
    }

    /// Whether the table has saturated (every bit set), at which point the
    /// estimator diverges and the result is clamped.
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        self.bits.count_ones() == self.bits.len()
    }
}

impl<T: Hash + ?Sized> Update<T> for LinearCounter {
    fn update(&mut self, item: &T) {
        self.update_hash(hash_item(item, 0x11AC_0501));
    }
}

impl CardinalityEstimator for LinearCounter {
    fn estimate(&self) -> f64 {
        let m = self.bits.len() as f64;
        let v = self.empty_fraction();
        if v <= 0.0 {
            // Saturated: the best we can report is the coupon-collector
            // style upper bound m ln m.
            return m * m.ln();
        }
        -m * v.ln()
    }
}

impl Clear for LinearCounter {
    fn clear(&mut self) {
        self.bits.clear();
    }
}

impl SpaceUsage for LinearCounter {
    fn space_bytes(&self) -> usize {
        self.bits.space_bytes()
    }
}

impl MergeSketch for LinearCounter {
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.bits.len() != other.bits.len() {
            return Err(SketchError::incompatible(format!(
                "bit-table sizes differ: {} vs {}",
                self.bits.len(),
                other.bits.len()
            )));
        }
        if self.seed != other.seed {
            return Err(SketchError::incompatible("seeds differ"));
        }
        self.bits.union_with(&other.bits);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_tiny_tables() {
        assert!(LinearCounter::new(8, 0).is_err());
        assert!(LinearCounter::new(16, 0).is_ok());
    }

    #[test]
    fn empty_estimates_zero() {
        let lc = LinearCounter::new(1024, 0).unwrap();
        assert_eq!(lc.estimate(), 0.0);
        assert_eq!(lc.empty_fraction(), 1.0);
    }

    #[test]
    fn accurate_at_moderate_load() {
        let mut lc = LinearCounter::new(1 << 16, 3).unwrap();
        let n = 20_000u64; // load factor ~0.3
        for i in 0..n {
            lc.update(&i);
        }
        let est = lc.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.02, "estimate {est} off by {rel:.4}");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut lc = LinearCounter::new(4096, 5).unwrap();
        for i in 0..500u64 {
            for _ in 0..10 {
                lc.update(&i);
            }
        }
        let est = lc.estimate();
        let rel = (est - 500.0).abs() / 500.0;
        assert!(rel < 0.1, "estimate {est}");
    }

    #[test]
    fn saturation_is_clamped() {
        let mut lc = LinearCounter::new(16, 7).unwrap();
        for i in 0..10_000u64 {
            lc.update(&i);
        }
        assert!(lc.is_saturated());
        let est = lc.estimate();
        assert!(est.is_finite());
        assert!(est > 16.0);
    }

    #[test]
    fn merge_equals_union_stream() {
        let mut a = LinearCounter::new(1 << 14, 9).unwrap();
        let mut b = LinearCounter::new(1 << 14, 9).unwrap();
        let mut whole = LinearCounter::new(1 << 14, 9).unwrap();
        for i in 0..2000u64 {
            a.update(&i);
            whole.update(&i);
        }
        for i in 1000..3000u64 {
            b.update(&i);
            whole.update(&i);
        }
        a.merge(&b).unwrap();
        // Identical seeds ⇒ the merged bitmap equals the union-stream bitmap
        // and so do the estimates, bit for bit.
        assert_eq!(a.estimate(), whole.estimate());
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = LinearCounter::new(64, 0).unwrap();
        let b = LinearCounter::new(128, 0).unwrap();
        assert!(a.merge(&b).is_err());
        let c = LinearCounter::new(64, 1).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn clear_resets() {
        let mut lc = LinearCounter::new(256, 2).unwrap();
        lc.update(&1u32);
        assert!(lc.estimate() > 0.0);
        lc.clear();
        assert_eq!(lc.estimate(), 0.0);
    }

    #[test]
    fn space_matches_bits() {
        let lc = LinearCounter::new(1 << 10, 0).unwrap();
        assert_eq!(lc.space_bytes(), 128);
    }
}
