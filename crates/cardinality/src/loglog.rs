//! The Durand–Flajolet LogLog counter (ESA 2003).
//!
//! LogLog was the step between Flajolet–Martin and HyperLogLog: keep `m`
//! registers of `ρ` values (position of the first 1-bit) and estimate via
//! the *geometric* mean `α_m · m · 2^{(1/m)Σ M_j}`. Registers only need
//! `log log n` bits, the titular improvement. Standard error is `≈ 1.30/√m`
//! (HyperLogLog later cut this to `1.04/√m` by switching to the harmonic
//! mean — experiment E1 puts the two side by side).

use sketches_core::{
    CardinalityEstimator, Clear, MergeSketch, SketchError, SketchResult, SpaceUsage, Update,
};
use sketches_hash::bits::rho_leading;
use sketches_hash::hash_item;
use sketches_hash::mix::mix64_seeded;
use std::hash::Hash;

/// Asymptotic LogLog correction constant `α_∞ = e^{-γ}·√2/2` adjusted per
/// Durand–Flajolet; 0.39701 is the standard value used for m ≥ 64.
const ALPHA_LOGLOG: f64 = 0.39701;

/// A LogLog cardinality sketch with `2^p` registers.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogLog {
    registers: Vec<u8>,
    precision: u32,
    seed: u64,
}

impl LogLog {
    /// Creates a LogLog sketch with `2^precision` registers
    /// (`precision` in `4..=16`).
    ///
    /// # Errors
    /// Returns an error for precision outside `4..=16`.
    pub fn new(precision: u32, seed: u64) -> SketchResult<Self> {
        sketches_core::check_range("precision", precision, 4, 16)?;
        Ok(Self {
            registers: vec![0u8; 1 << precision],
            precision,
            seed,
        })
    }

    /// Absorbs a pre-hashed item.
    #[inline]
    pub fn update_hash(&mut self, hash: u64) {
        let h = mix64_seeded(hash, self.seed);
        let idx = (h >> (64 - self.precision)) as usize;
        let r = rho_leading(h, 64 - self.precision);
        if r > self.registers[idx] {
            self.registers[idx] = r;
        }
    }

    /// Number of registers.
    #[must_use]
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Theoretical relative standard error `1.30/√m`.
    #[must_use]
    pub fn theoretical_rse(&self) -> f64 {
        1.30 / (self.registers.len() as f64).sqrt()
    }
}

impl<T: Hash + ?Sized> Update<T> for LogLog {
    fn update(&mut self, item: &T) {
        self.update_hash(hash_item(item, 0x1061_1061));
    }
}

impl CardinalityEstimator for LogLog {
    fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let mean: f64 = self.registers.iter().map(|&r| f64::from(r)).sum::<f64>() / m;
        ALPHA_LOGLOG * m * 2f64.powf(mean)
    }
}

impl Clear for LogLog {
    fn clear(&mut self) {
        self.registers.fill(0);
    }
}

impl SpaceUsage for LogLog {
    fn space_bytes(&self) -> usize {
        self.registers.len()
    }
}

impl MergeSketch for LogLog {
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.precision != other.precision {
            return Err(SketchError::incompatible("precisions differ"));
        }
        if self.seed != other.seed {
            return Err(SketchError::incompatible("seeds differ"));
        }
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(b);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_precision() {
        assert!(LogLog::new(3, 0).is_err());
        assert!(LogLog::new(17, 0).is_err());
        assert!(LogLog::new(10, 0).is_ok());
    }

    #[test]
    fn estimate_large_cardinality() {
        // p=10 → m=1024, stderr ≈ 4.1%. Allow 4 sigma.
        let mut ll = LogLog::new(10, 5).unwrap();
        let n = 500_000u64;
        for i in 0..n {
            ll.update(&i);
        }
        let rel = (ll.estimate() - n as f64).abs() / n as f64;
        assert!(rel < 0.17, "relative error {rel:.3}");
    }

    #[test]
    fn duplicates_ignored() {
        let mut a = LogLog::new(8, 1).unwrap();
        let mut b = LogLog::new(8, 1).unwrap();
        for i in 0..10_000u64 {
            a.update(&i);
            b.update(&i);
            b.update(&(i));
        }
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LogLog::new(9, 2).unwrap();
        let mut b = LogLog::new(9, 2).unwrap();
        let mut u = LogLog::new(9, 2).unwrap();
        for i in 0..20_000u64 {
            a.update(&i);
            u.update(&i);
        }
        for i in 10_000..30_000u64 {
            b.update(&i);
            u.update(&i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.estimate(), u.estimate());
    }

    #[test]
    fn rse_matches_durand_flajolet_theory() {
        // Pins the estimator's error to the 1.30/sqrt(m) law from BOTH
        // sides: an RSE far below theory is as much a bug (a broken
        // measurement, or an estimator that is not LogLog's geometric
        // mean) as one far above it. p=8 -> m=256, theory RSE ~ 0.0813.
        let trials = 60u64;
        let n = 20_000u64;
        let mut errs = Vec::new();
        for t in 0..trials {
            let mut ll = LogLog::new(8, 0xE1_00 + t).unwrap();
            for i in 0..n {
                ll.update(&(t * n + i));
            }
            errs.push((ll.estimate() - n as f64) / n as f64);
        }
        let rse = (errs.iter().map(|e| e * e).sum::<f64>() / trials as f64).sqrt();
        let theory = 1.30 / 16.0;
        assert!(
            rse > 0.55 * theory && rse < 1.5 * theory,
            "measured RSE {rse:.4} deviates from theory {theory:.4}"
        );
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = LogLog::new(8, 0).unwrap();
        assert!(a.merge(&LogLog::new(9, 0).unwrap()).is_err());
        assert!(a.merge(&LogLog::new(8, 9).unwrap()).is_err());
    }

    #[test]
    fn space_is_m_bytes() {
        let ll = LogLog::new(12, 0).unwrap();
        assert_eq!(ll.space_bytes(), 4096);
    }

    #[test]
    fn clear_resets() {
        let mut ll = LogLog::new(6, 0).unwrap();
        ll.update(&42u64);
        ll.clear();
        assert_eq!(ll.registers.iter().map(|&r| u32::from(r)).sum::<u32>(), 0);
    }
}
