//! Cardinality (count-distinct, a.k.a. `F0`) sketches.
//!
//! This crate implements the full lineage of distinct-counting summaries
//! surveyed in Cormode's *Gems of PODS 2023* paper, from the 1977 Morris
//! counter to the modern HyperLogLog++ used across industry:
//!
//! | Module | Algorithm | Year | Space for n distinct |
//! |---|---|---|---|
//! | [`morris`] | Morris approximate counter | 1977 | `O(log log n)` bits |
//! | [`fm`] | Flajolet–Martin / PCSA | 1983 | `O(m log n)` bits |
//! | [`linear_counting`] | Linear Counting | 1990 | `O(n)` bits (small constants) |
//! | [`loglog`] | Durand–Flajolet LogLog | 2003 | `m · log log n` bits |
//! | [`hll`] | HyperLogLog | 2007 | `m · 6` bits, ±1.04/√m |
//! | [`hllpp`] | HLL++ (sparse + improved estimator) | 2013 | adaptive |
//! | [`kmv`] | KMV / bottom-k (θ-sketch style) | 2002+ | `k` hashes, set algebra |
//!
//! All hash-based sketches accept any `T: Hash` via [`sketches_core::Update`]
//! and merge via [`sketches_core::MergeSketch`]; merging two sketches of
//! different substreams yields exactly the sketch of the union (a property
//! the tests verify).
//!
//! # Quick example
//!
//! ```
//! use sketches_cardinality::hll::HyperLogLog;
//! use sketches_core::{CardinalityEstimator, Update};
//!
//! let mut hll = HyperLogLog::new(12, 7).unwrap(); // 4096 registers, seed 7
//! for user in 0..100_000u64 {
//!     hll.update(&user);
//!     hll.update(&user); // duplicates don't count
//! }
//! let est = hll.estimate();
//! assert!((est - 100_000.0).abs() / 100_000.0 < 0.05);
//! ```

#![forbid(unsafe_code)]

pub mod fm;
pub mod hll;
pub mod hllpp;
pub mod kmv;
pub mod linear_counting;
pub mod loglog;
pub mod morris;

pub use fm::Pcsa;
pub use hll::HyperLogLog;
pub use hllpp::HyperLogLogPlusPlus;
pub use kmv::KmvSketch;
pub use linear_counting::LinearCounter;
pub use loglog::LogLog;
pub use morris::MorrisCounter;
