//! HyperLogLog++ (Heule, Nunkesser & Hall, EDBT 2013), the
//! "HyperLogLog in practice" engineering of HLL that Google deployed and
//! the survey highlights as the practical state of the art.
//!
//! Three changes over classic HLL are reproduced here:
//!
//! 1. **64-bit hashing** — removes the large-range correction (shared with
//!    [`crate::hll`]).
//! 2. **Sparse representation** — below a size threshold the sketch stores
//!    `(index, rho)` pairs at the higher *sparse precision* `p' = 25`,
//!    giving near-exact linear-counting estimates at small cardinalities
//!    for a fraction of the dense memory. The encoding follows the paper:
//!    a 32-bit word holds either `idx25 ‖ 0` or `idx25 ‖ rho ‖ 1` depending
//!    on whether the bits between precisions determine rho.
//! 3. **Bias correction** — *substitution*: instead of Google's empirical
//!    bias-interpolation tables (hundreds of measured constants per
//!    precision), the dense estimator uses Ertl's closed-form improved
//!    estimator (Ertl, "New cardinality estimation algorithms for
//!    HyperLogLog sketches", 2017), which the literature shows matches or
//!    beats the table-based correction across the whole range without any
//!    empirical constants. Experiment E2 verifies the small/mid-range bias
//!    is removed relative to raw HLL.

use std::collections::BTreeMap;
use std::hash::Hash;

use sketches_core::{
    ByteReader, ByteWriter, CardinalityEstimator, Clear, MergeSketch, SketchError, SketchResult,
    SpaceUsage, Update,
};
use sketches_hash::hash_item;
use sketches_hash::mix::mix64_seeded;

use crate::hll::HyperLogLog;

/// Sparse-mode precision `p'` from the HLL++ paper.
const SPARSE_PRECISION: u32 = 25;

/// Hash seed domain-separating HLL++ from plain HLL.
const HLLPP_SEED: u64 = 0x477C_0DE5_EED0_0001;

/// Internal representation: sparse `(idx25 → rho_w)` map or dense registers.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Repr {
    /// Maps the 25-bit sparse index to the stored `rho_w` (0 when the flag-0
    /// encoding applies, i.e. rho is derivable from the index bits).
    Sparse(BTreeMap<u32, u8>),
    Dense(HyperLogLog),
}

/// A HyperLogLog++ sketch: sparse below threshold, dense above, with a
/// closed-form bias-free estimator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperLogLogPlusPlus {
    repr: Repr,
    precision: u32,
    seed: u64,
    /// Sparse entries allowed before upgrading to dense (m/8 by default:
    /// at ~10 bytes per sparse entry that is when sparse memory passes
    /// the m-byte dense array).
    sparse_limit: usize,
}

impl HyperLogLogPlusPlus {
    /// Creates an HLL++ sketch with dense precision `p` in `4..=18`.
    ///
    /// # Errors
    /// Returns an error for precision outside `4..=18`.
    pub fn new(precision: u32, seed: u64) -> SketchResult<Self> {
        sketches_core::check_range("precision", precision, 4, 18)?;
        Ok(Self {
            repr: Repr::Sparse(BTreeMap::new()),
            precision,
            seed,
            sparse_limit: ((1usize << precision) / 8).max(16),
        })
    }

    /// Precision `p`.
    #[must_use]
    pub fn precision(&self) -> u32 {
        self.precision
    }

    /// The seed this sketch hashes with (before domain separation).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the sketch is still in sparse mode.
    #[must_use]
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// Absorbs a pre-hashed item.
    pub fn update_hash(&mut self, hash: u64) {
        let h = mix64_seeded(hash, self.seed ^ HLLPP_SEED);
        match &mut self.repr {
            Repr::Sparse(map) => {
                Self::sparse_insert(map, self.precision, h);
                if map.len() > self.sparse_limit {
                    self.upgrade_to_dense();
                }
            }
            Repr::Dense(hll) => hll.insert_mixed(h),
        }
    }

    /// Inserts an already-mixed hash into a sparse map (no upgrade check —
    /// callers decide when to test the limit, which lets the batched path
    /// defer the check to the end of a slice).
    fn sparse_insert(map: &mut BTreeMap<u32, u8>, precision: u32, h: u64) {
        let idx25 = (h >> (64 - SPARSE_PRECISION)) as u32;
        let w = h << SPARSE_PRECISION;
        let rho_w = if w == 0 {
            (64 - SPARSE_PRECISION + 1) as u8
        } else {
            (w.leading_zeros() + 1) as u8
        };
        let mask = (1u32 << (SPARSE_PRECISION - precision)) - 1;
        if idx25 & mask == 0 {
            // Flag-1 encoding: rho_w must be stored.
            map.entry(idx25)
                .and_modify(|r| *r = (*r).max(rho_w))
                .or_insert(rho_w);
        } else {
            // Flag-0: rho at dense precision is derivable from idx25.
            map.entry(idx25).or_insert(0);
        }
    }

    /// Converts a sparse entry to its dense `(index, rho)` pair.
    fn decode(idx25: u32, rho_w: u8, precision: u32) -> (usize, u8) {
        let gap = SPARSE_PRECISION - precision;
        let idx_p = (idx25 >> gap) as usize;
        let low = idx25 & ((1u32 << gap) - 1);
        let rho_p = if rho_w != 0 {
            // Flag-1: the gap bits were all zero; rho continues into w.
            rho_w + gap as u8
        } else {
            // Flag-0: rho is the leading-zero count within the gap bits.
            ((low << (32 - gap)).leading_zeros() + 1) as u8
        };
        (idx_p, rho_p)
    }

    /// Folds a sparse map into dense registers (shared by upgrade and by
    /// mixed-representation merge, so the decode path cannot drift).
    fn fold_sparse_into(dense: &mut HyperLogLog, map: &BTreeMap<u32, u8>, precision: u32) {
        for (&idx25, &rho_w) in map {
            let (idx, rho) = Self::decode(idx25, rho_w, precision);
            dense.offer_register(idx, rho);
        }
    }

    fn upgrade_to_dense(&mut self) {
        let Repr::Sparse(map) = &self.repr else {
            return;
        };
        let mut dense = HyperLogLog::with_seed_raw(self.precision, self.seed ^ HLLPP_SEED);
        Self::fold_sparse_into(&mut dense, map, self.precision);
        self.repr = Repr::Dense(dense);
    }

    /// Forces the dense representation (used by merge and tests).
    pub fn to_dense(&mut self) {
        if self.is_sparse() {
            self.upgrade_to_dense();
        }
    }

    /// Serializes the full sketch state in the workspace checkpoint layout:
    /// precision, seed, a representation tag, then either the sorted sparse
    /// entries or the dense register payload. [`HyperLogLogPlusPlus::read_state`]
    /// inverts it exactly, and the encoding is canonical (sparse entries are
    /// written in the `BTreeMap`'s ascending key order).
    pub fn write_state(&self, w: &mut ByteWriter) {
        w.put_u32(self.precision);
        w.put_u64(self.seed);
        match &self.repr {
            Repr::Sparse(map) => {
                w.put_u8(0);
                w.put_usize(map.len());
                for (&idx25, &rho_w) in map {
                    w.put_u32(idx25);
                    w.put_u8(rho_w);
                }
            }
            Repr::Dense(hll) => {
                w.put_u8(1);
                hll.write_state(w);
            }
        }
    }

    /// Restores a sketch from [`HyperLogLogPlusPlus::write_state`] bytes.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on truncation, an invalid
    /// precision or representation tag, out-of-range or unsorted sparse
    /// entries, or a dense payload whose parameters disagree with the
    /// envelope (the dense seed must be `seed ^ HLLPP_SEED`).
    pub fn read_state(r: &mut ByteReader<'_>) -> SketchResult<Self> {
        let precision = r.u32()?;
        if !(4..=18).contains(&precision) {
            return Err(SketchError::corrupted(format!(
                "HLL++ precision {precision} outside 4..=18"
            )));
        }
        let seed = r.u64()?;
        let sparse_limit = ((1usize << precision) / 8).max(16);
        let repr = match r.u8()? {
            0 => {
                let n = r.array_len(5, "HLL++ sparse entries")?;
                if n > sparse_limit {
                    return Err(SketchError::corrupted(format!(
                        "HLL++ sparse entry count {n} exceeds the upgrade limit {sparse_limit}"
                    )));
                }
                let mut map = BTreeMap::new();
                let mut prev: Option<u32> = None;
                for _ in 0..n {
                    let idx25 = r.u32()?;
                    let rho_w = r.u8()?;
                    if idx25 >= (1u32 << SPARSE_PRECISION) {
                        return Err(SketchError::corrupted(format!(
                            "HLL++ sparse index {idx25} exceeds 2^{SPARSE_PRECISION}"
                        )));
                    }
                    if prev.is_some_and(|p| idx25 <= p) {
                        return Err(SketchError::corrupted(
                            "HLL++ sparse entries not strictly ascending",
                        ));
                    }
                    prev = Some(idx25);
                    map.insert(idx25, rho_w);
                }
                Repr::Sparse(map)
            }
            1 => {
                let hll = HyperLogLog::read_state(r)?;
                if hll.precision() != precision {
                    return Err(SketchError::corrupted(format!(
                        "HLL++ dense precision {} disagrees with envelope {precision}",
                        hll.precision()
                    )));
                }
                if hll.seed() != seed ^ HLLPP_SEED {
                    return Err(SketchError::corrupted(
                        "HLL++ dense seed is not the domain-separated envelope seed",
                    ));
                }
                Repr::Dense(hll)
            }
            tag => {
                return Err(SketchError::corrupted(format!(
                    "HLL++ representation tag {tag} is not 0 (sparse) or 1 (dense)"
                )));
            }
        };
        Ok(Self {
            repr,
            precision,
            seed,
            sparse_limit,
        })
    }
}

impl<T: Hash + ?Sized> Update<T> for HyperLogLogPlusPlus {
    fn update(&mut self, item: &T) {
        self.update_hash(hash_item(item, crate::hll::ITEM_SEED));
    }

    /// Batched ingest with a *deferred upgrade*: the whole slice is absorbed
    /// into the current representation and the sparse→dense limit is tested
    /// once at the end, instead of after every item. Sparse entries decode
    /// to exactly the `(index, rho)` pairs the dense path would have
    /// written, and register-max commutes, so the final state equals the
    /// per-item path's byte for byte — even when the slice crosses the
    /// upgrade threshold.
    fn update_slice(&mut self, items: &[T])
    where
        T: Sized,
    {
        let mixer = self.seed ^ HLLPP_SEED;
        let precision = self.precision;
        match &mut self.repr {
            Repr::Sparse(map) => {
                for item in items {
                    let h = mix64_seeded(hash_item(item, crate::hll::ITEM_SEED), mixer);
                    Self::sparse_insert(map, precision, h);
                }
            }
            Repr::Dense(hll) => {
                for item in items {
                    hll.insert_mixed(mix64_seeded(hash_item(item, crate::hll::ITEM_SEED), mixer));
                }
            }
        }
        if let Repr::Sparse(map) = &self.repr {
            if map.len() > self.sparse_limit {
                self.upgrade_to_dense();
            }
        }
    }
}

impl CardinalityEstimator for HyperLogLogPlusPlus {
    fn estimate(&self) -> f64 {
        match &self.repr {
            Repr::Sparse(map) => {
                // Linear counting at sparse precision 2^25: near-exact for
                // the cardinalities sparse mode can hold.
                let m = f64::from(1u32 << SPARSE_PRECISION);
                let v = m - map.len() as f64;
                m * (m / v).ln()
            }
            Repr::Dense(hll) => ertl_estimate(hll.registers(), self.precision),
        }
    }
}

impl Clear for HyperLogLogPlusPlus {
    fn clear(&mut self) {
        self.repr = Repr::Sparse(BTreeMap::new());
    }
}

impl SpaceUsage for HyperLogLogPlusPlus {
    fn space_bytes(&self) -> usize {
        match &self.repr {
            // 4-byte encoded word + 1-byte value is the stored payload; the
            // BTreeMap has per-node overhead we charge at 2x.
            Repr::Sparse(map) => map.len() * 10,
            Repr::Dense(hll) => hll.space_bytes(),
        }
    }
}

impl MergeSketch for HyperLogLogPlusPlus {
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.precision != other.precision {
            return Err(SketchError::incompatible("precisions differ"));
        }
        if self.seed != other.seed {
            return Err(SketchError::incompatible("seeds differ"));
        }
        match (&mut self.repr, &other.repr) {
            (Repr::Sparse(a), Repr::Sparse(b)) => {
                for (&idx, &rho) in b {
                    a.entry(idx)
                        .and_modify(|r| *r = (*r).max(rho))
                        .or_insert(rho);
                }
                if a.len() > self.sparse_limit {
                    self.upgrade_to_dense();
                }
                Ok(())
            }
            (Repr::Dense(a), Repr::Dense(b)) => a.merge(b),
            _ => {
                // Mixed: promote self to dense, fold the sparse side in.
                self.to_dense();
                let Repr::Dense(a) = &mut self.repr else {
                    unreachable!("just densified");
                };
                match &other.repr {
                    Repr::Dense(b) => a.merge(b),
                    Repr::Sparse(map) => {
                        Self::fold_sparse_into(a, map, self.precision);
                        Ok(())
                    }
                }
            }
        }
    }
}

/// σ(x) = x + Σ_{k≥1} x^{2^k}·2^{k−1} (Ertl 2017). `σ(1) = ∞`.
fn sigma(mut x: f64) -> f64 {
    if x == 1.0 {
        return f64::INFINITY;
    }
    let mut y = 1.0;
    let mut z = x;
    loop {
        x = x * x;
        let z_prev = z;
        z += x * y;
        y += y;
        if z == z_prev {
            return z;
        }
    }
}

/// τ(x) = (1/3)(1 − x − Σ_{k≥1}(1 − x^{2^{−k}})²·2^{−k}) (Ertl 2017).
fn tau(mut x: f64) -> f64 {
    if x == 0.0 || x == 1.0 {
        return 0.0;
    }
    let mut y = 1.0;
    let mut z = 1.0 - x;
    loop {
        x = x.sqrt();
        let z_prev = z;
        y *= 0.5;
        let d = 1.0 - x;
        z -= d * d * y;
        if z == z_prev {
            return z / 3.0;
        }
    }
}

/// Ertl's improved (bias-free, table-free) estimator over dense registers.
#[must_use]
pub fn ertl_estimate(registers: &[u8], precision: u32) -> f64 {
    let m = registers.len() as f64;
    let q = (64 - precision) as usize;
    let mut counts = vec![0u32; q + 2];
    for &r in registers {
        counts[(r as usize).min(q + 1)] += 1;
    }
    let mut z = m * tau((m - f64::from(counts[q + 1])) / m);
    for k in (1..=q).rev() {
        z = 0.5 * (z + f64::from(counts[k]));
    }
    z += m * sigma(f64::from(counts[0]) / m);
    if z.is_infinite() {
        return 0.0;
    }
    let alpha_inf = 1.0 / (2.0 * std::f64::consts::LN_2);
    alpha_inf * m * m / z
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_precision() {
        assert!(HyperLogLogPlusPlus::new(3, 0).is_err());
        assert!(HyperLogLogPlusPlus::new(19, 0).is_err());
    }

    #[test]
    fn empty_estimates_zero() {
        let h = HyperLogLogPlusPlus::new(14, 0).unwrap();
        assert_eq!(h.estimate(), 0.0);
        assert!(h.is_sparse());
    }

    #[test]
    fn sigma_and_tau_sanity() {
        assert_eq!(sigma(0.0), 0.0);
        assert!(sigma(1.0).is_infinite());
        assert!(sigma(0.5) > 0.5);
        assert_eq!(tau(0.0), 0.0);
        assert_eq!(tau(1.0), 0.0);
        assert!(tau(0.5) > 0.0);
    }

    #[test]
    fn sparse_mode_is_nearly_exact_small_range() {
        let mut h = HyperLogLogPlusPlus::new(14, 1).unwrap();
        for i in 0..1000u64 {
            h.update(&i);
            h.update(&i);
        }
        assert!(h.is_sparse());
        let rel = (h.estimate() - 1000.0).abs() / 1000.0;
        assert!(rel < 0.01, "sparse estimate off by {rel:.4}");
    }

    #[test]
    fn upgrades_to_dense_at_threshold() {
        let mut h = HyperLogLogPlusPlus::new(10, 2).unwrap();
        // limit = 1024/4 = 256 entries.
        for i in 0..10_000u64 {
            h.update(&i);
        }
        assert!(!h.is_sparse());
        let rel = (h.estimate() - 10_000.0).abs() / 10_000.0;
        // p=10 → stderr ≈ 3.25%; allow 4σ.
        assert!(rel < 0.13, "dense estimate off by {rel:.4}");
    }

    #[test]
    fn dense_estimate_accuracy_across_range() {
        for (n, seed) in [(50_000u64, 3u64), (200_000, 4), (1_000_000, 5)] {
            let mut h = HyperLogLogPlusPlus::new(12, seed).unwrap();
            for i in 0..n {
                h.update(&i);
            }
            let rel = (h.estimate() - n as f64).abs() / n as f64;
            assert!(rel < 0.07, "n={n}: rel {rel:.4}");
        }
    }

    #[test]
    fn transition_region_no_bias_spike() {
        // Classic HLL shows a bias hump around n ≈ 2.5m; HLL++'s estimator
        // should stay within 4σ there. p=12 → m=4096, hump near 10k.
        let m = 4096.0f64;
        for n in [8_000u64, 10_000, 12_000, 16_000] {
            let trials = 16;
            let mut sum = 0.0;
            for t in 0..trials {
                let mut h = HyperLogLogPlusPlus::new(12, 100 + t).unwrap();
                for i in 0..n {
                    h.update(&i);
                }
                sum += h.estimate();
            }
            let mean = sum / trials as f64;
            let rel = (mean - n as f64).abs() / n as f64;
            let sigma_mean = 1.04 / m.sqrt() / (trials as f64).sqrt();
            assert!(
                rel < 5.0 * sigma_mean,
                "n={n}: mean bias {rel:.4} exceeds 5σ ({sigma_mean:.4})"
            );
        }
    }

    #[test]
    fn decode_flag0_and_flag1() {
        // p=10, gap=15. idx25 with nonzero low bits → flag-0.
        let idx25 = (3u32 << 15) | 0b100; // low bits "000...100" (15 bits)
        let (idx, rho) = HyperLogLogPlusPlus::decode(idx25, 0, 10);
        assert_eq!(idx, 3);
        // low = 0b100 in 15 bits → 12 leading zeros → rho 13.
        assert_eq!(rho, 13);
        // Flag-1: low bits zero, rho_w carried through.
        let (idx, rho) = HyperLogLogPlusPlus::decode(7u32 << 15, 9, 10);
        assert_eq!(idx, 7);
        assert_eq!(rho, 9 + 15);
    }

    #[test]
    fn update_slice_matches_per_item_across_upgrade() {
        // p=10 → sparse limit 128 entries; 10k distinct items cross the
        // sparse→dense upgrade mid-stream. The deferred-upgrade batched
        // path must land on the identical final state regardless of where
        // the slice boundaries fall relative to the upgrade point.
        let data: Vec<u64> = (0..10_000).collect();
        let mut per_item = HyperLogLogPlusPlus::new(10, 8).unwrap();
        for x in &data {
            per_item.update(x);
        }
        assert!(!per_item.is_sparse());
        for chunk in [data.len(), 1, 7, 613] {
            let mut sliced = HyperLogLogPlusPlus::new(10, 8).unwrap();
            for part in data.chunks(chunk) {
                sliced.update_slice(part);
            }
            assert_eq!(sliced, per_item, "chunk size {chunk}");
        }
        // A stream that stays sparse also matches entry-for-entry.
        let small: Vec<u64> = (0..100).collect();
        let mut a = HyperLogLogPlusPlus::new(10, 8).unwrap();
        let mut b = HyperLogLogPlusPlus::new(10, 8).unwrap();
        for x in &small {
            a.update(x);
        }
        b.update_slice(&small);
        assert!(a.is_sparse() && b.is_sparse());
        assert_eq!(a, b);
    }

    #[test]
    fn merge_sparse_sparse_matches_union_stream() {
        let mut a = HyperLogLogPlusPlus::new(14, 7).unwrap();
        let mut b = HyperLogLogPlusPlus::new(14, 7).unwrap();
        let mut u = HyperLogLogPlusPlus::new(14, 7).unwrap();
        for i in 0..300u64 {
            a.update(&i);
            u.update(&i);
        }
        for i in 200..500u64 {
            b.update(&i);
            u.update(&i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, u);
    }

    #[test]
    fn merge_mixed_modes() {
        let mut sparse = HyperLogLogPlusPlus::new(10, 9).unwrap();
        let mut dense = HyperLogLogPlusPlus::new(10, 9).unwrap();
        for i in 0..100u64 {
            sparse.update(&i);
        }
        for i in 0..50_000u64 {
            dense.update(&i);
        }
        assert!(sparse.is_sparse());
        assert!(!dense.is_sparse());
        let mut merged = dense.clone();
        merged.merge(&sparse).unwrap();
        // Sparse items are a subset of dense items here, so the merged
        // estimate should be very close to the dense estimate.
        let rel = (merged.estimate() - dense.estimate()).abs() / dense.estimate();
        assert!(rel < 0.02, "{rel}");

        // And the other direction: sparse absorbing dense densifies.
        let mut merged2 = sparse.clone();
        merged2.merge(&dense).unwrap();
        assert!(!merged2.is_sparse());
        let rel2 = (merged2.estimate() - dense.estimate()).abs() / dense.estimate();
        assert!(rel2 < 0.02, "{rel2}");
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = HyperLogLogPlusPlus::new(10, 0).unwrap();
        assert!(a.merge(&HyperLogLogPlusPlus::new(11, 0).unwrap()).is_err());
        assert!(a.merge(&HyperLogLogPlusPlus::new(10, 1).unwrap()).is_err());
    }

    #[test]
    fn sparse_space_grows_then_dense_space_fixed() {
        let mut h = HyperLogLogPlusPlus::new(12, 3).unwrap();
        let s0 = h.space_bytes();
        for i in 0..100u64 {
            h.update(&i);
        }
        let s1 = h.space_bytes();
        assert!(s1 > s0);
        assert!(s1 < 4096, "sparse should be far below dense size");
        for i in 0..100_000u64 {
            h.update(&i);
        }
        assert_eq!(h.space_bytes(), 4096);
    }

    #[test]
    fn clear_returns_to_sparse() {
        let mut h = HyperLogLogPlusPlus::new(10, 4).unwrap();
        for i in 0..50_000u64 {
            h.update(&i);
        }
        assert!(!h.is_sparse());
        h.clear();
        assert!(h.is_sparse());
        assert_eq!(h.estimate(), 0.0);
    }

    #[test]
    fn ertl_estimator_on_empty_registers() {
        let regs = vec![0u8; 1024];
        assert_eq!(ertl_estimate(&regs, 10), 0.0);
    }

    fn state_bytes(h: &HyperLogLogPlusPlus) -> Vec<u8> {
        let mut w = ByteWriter::new();
        h.write_state(&mut w);
        w.into_bytes()
    }

    #[test]
    fn state_round_trips_in_both_representations() {
        // Sparse.
        let mut sparse = HyperLogLogPlusPlus::new(12, 0xBEEF).unwrap();
        for i in 0..200u64 {
            sparse.update(&i);
        }
        assert!(sparse.is_sparse());
        // Dense.
        let mut dense = HyperLogLogPlusPlus::new(10, 0xBEEF).unwrap();
        for i in 0..50_000u64 {
            dense.update(&i);
        }
        assert!(!dense.is_sparse());
        for h in [&sparse, &dense] {
            let bytes = state_bytes(h);
            let mut r = ByteReader::new(&bytes);
            let restored = HyperLogLogPlusPlus::read_state(&mut r).unwrap();
            r.expect_end("hllpp state").unwrap();
            assert_eq!(&restored, h);
            assert_eq!(state_bytes(&restored), bytes, "canonical encoding");
        }
    }

    #[test]
    fn restored_sketch_continues_identically() {
        // A restored sketch must produce the same future states as the
        // original — including crossing the sparse→dense upgrade.
        let mut a = HyperLogLogPlusPlus::new(8, 7).unwrap();
        for i in 0..20u64 {
            a.update(&i);
        }
        let bytes = state_bytes(&a);
        let mut r = ByteReader::new(&bytes);
        let mut b = HyperLogLogPlusPlus::read_state(&mut r).unwrap();
        for i in 20..10_000u64 {
            a.update(&i);
            b.update(&i);
        }
        assert!(!a.is_sparse());
        assert_eq!(a, b);
    }

    #[test]
    fn state_corruption_is_typed() {
        let mut h = HyperLogLogPlusPlus::new(6, 1).unwrap();
        for i in 0..10u64 {
            h.update(&i);
        }
        let bytes = state_bytes(&h);
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(
                matches!(
                    HyperLogLogPlusPlus::read_state(&mut r),
                    Err(SketchError::Corrupted { .. })
                ),
                "cut {cut}"
            );
        }
        // Bad representation tag.
        let mut bad = bytes.clone();
        bad[12] = 9;
        let mut r = ByteReader::new(&bad);
        assert!(matches!(
            HyperLogLogPlusPlus::read_state(&mut r),
            Err(SketchError::Corrupted { .. })
        ));
        // Dense payload with a seed that breaks domain separation.
        let mut dense = HyperLogLogPlusPlus::new(6, 1).unwrap();
        for i in 0..5_000u64 {
            dense.update(&i);
        }
        assert!(!dense.is_sparse());
        let mut bad = state_bytes(&dense);
        bad[4] ^= 1; // flip a bit of the envelope seed only
        let mut r = ByteReader::new(&bad);
        assert!(matches!(
            HyperLogLogPlusPlus::read_state(&mut r),
            Err(SketchError::Corrupted { .. })
        ));
    }
}
