//! KMV / bottom-k distinct-count sketch (Bar-Yossef et al. 2002 lineage;
//! the basis of the Apache DataSketches "theta sketch").
//!
//! Keeps the `k` smallest distinct hash values seen. With `U_{(k)}` the
//! k-th smallest hash mapped to `(0,1)`, the estimator `(k−1)/U_{(k)}` is
//! unbiased with relative standard error `≈ 1/√(k−2)`. Unlike register
//! sketches, KMV supports *set algebra*: union (merge the sample sets) and
//! Jaccard/intersection estimation (compare membership below the common
//! threshold θ), which is what makes it the workhorse for the
//! slice-and-dice advertising analytics of experiment E8.

use std::collections::BTreeSet;
use std::hash::Hash;

use sketches_core::{
    CardinalityEstimator, Clear, MergeSketch, SketchError, SketchResult, SpaceUsage, Update,
};
use sketches_hash::hash_item;
use sketches_hash::mix::mix64_seeded;

/// A KMV (bottom-k) sketch keeping the `k` minimum hash values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KmvSketch {
    k: usize,
    seed: u64,
    /// The k smallest distinct hashes seen so far (ordered).
    mins: BTreeSet<u64>,
}

impl KmvSketch {
    /// Creates a sketch keeping the `k >= 8` smallest hashes.
    ///
    /// # Errors
    /// Returns an error if `k < 8`.
    pub fn new(k: usize, seed: u64) -> SketchResult<Self> {
        if k < 8 {
            return Err(SketchError::invalid("k", "need k >= 8"));
        }
        Ok(Self {
            k,
            seed,
            mins: BTreeSet::new(),
        })
    }

    /// Absorbs a pre-hashed item.
    pub fn update_hash(&mut self, hash: u64) {
        let h = mix64_seeded(hash, self.seed);
        if self.mins.len() < self.k {
            self.mins.insert(h);
        } else {
            // lint: panic-ok(len >= k >= 1 on this branch, so the set is non-empty)
            let current_max = *self.mins.iter().next_back().expect("non-empty");
            if h < current_max && self.mins.insert(h) {
                self.mins.remove(&current_max);
            }
        }
    }

    /// The sample size parameter `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The current threshold θ: the largest retained hash normalized to
    /// `(0, 1]`, or 1.0 while fewer than `k` values are held.
    #[must_use]
    pub fn theta(&self) -> f64 {
        if self.mins.len() < self.k {
            1.0
        } else {
            // lint: panic-ok(len >= k >= 1 on this branch, so the set is non-empty)
            let kth = *self.mins.iter().next_back().expect("non-empty");
            normalize(kth)
        }
    }

    /// Theoretical relative standard error `1/√(k−2)`.
    #[must_use]
    pub fn theoretical_rse(&self) -> f64 {
        1.0 / ((self.k as f64) - 2.0).sqrt()
    }

    /// Number of hashes currently retained.
    #[must_use]
    pub fn retained(&self) -> usize {
        self.mins.len()
    }

    /// Whether `hash` (pre-mixed) is in the retained sample.
    fn contains_mixed(&self, h: u64) -> bool {
        self.mins.contains(&h)
    }
}

/// Maps a hash to `(0, 1]` (0 is excluded to keep the estimator finite).
fn normalize(h: u64) -> f64 {
    (h as f64 + 1.0) / (u64::MAX as f64 + 1.0)
}

impl<T: Hash + ?Sized> Update<T> for KmvSketch {
    fn update(&mut self, item: &T) {
        // Domain-separated from the HLL family: a KMV and an HLL built
        // with the same instance seed must not consume identical hash
        // streams (their errors would correlate in side-by-side use).
        self.update_hash(hash_item(item, 0x6B6D_755E));
    }
}

impl CardinalityEstimator for KmvSketch {
    fn estimate(&self) -> f64 {
        if self.mins.len() < self.k {
            // Below k distinct values the sample is exhaustive: exact count.
            self.mins.len() as f64
        } else {
            // lint: panic-ok(len >= k >= 1 on this branch, so the set is non-empty)
            let kth = *self.mins.iter().next_back().expect("non-empty");
            (self.k as f64 - 1.0) / normalize(kth)
        }
    }
}

impl Clear for KmvSketch {
    fn clear(&mut self) {
        self.mins.clear();
    }
}

impl SpaceUsage for KmvSketch {
    fn space_bytes(&self) -> usize {
        self.mins.len() * std::mem::size_of::<u64>()
    }
}

impl MergeSketch for KmvSketch {
    fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.k != other.k {
            return Err(SketchError::incompatible("k differs"));
        }
        if self.seed != other.seed {
            return Err(SketchError::incompatible("seeds differ"));
        }
        for &h in &other.mins {
            self.mins.insert(h);
        }
        while self.mins.len() > self.k {
            // lint: panic-ok(loop condition len > k >= 1 guarantees the set is non-empty)
            let max = *self.mins.iter().next_back().expect("non-empty");
            self.mins.remove(&max);
        }
        Ok(())
    }
}

/// Estimates the Jaccard similarity `|A∩B| / |A∪B|` of the two sketched
/// sets, θ-sketch style: among the `k` smallest hashes of the union, count
/// how many appear in both sketches.
///
/// # Errors
/// Returns an error if the sketches are incompatible.
pub fn jaccard(a: &KmvSketch, b: &KmvSketch) -> SketchResult<f64> {
    let mut union = a.clone();
    union.merge(b)?;
    if union.mins.is_empty() {
        return Ok(0.0);
    }
    let common = union
        .mins
        .iter()
        .filter(|&&h| a.contains_mixed(h) && b.contains_mixed(h))
        .count();
    Ok(common as f64 / union.mins.len() as f64)
}

/// Estimates `|A ∩ B|` as `Jaccard · |A ∪ B|`.
///
/// # Errors
/// Returns an error if the sketches are incompatible.
pub fn intersection_estimate(a: &KmvSketch, b: &KmvSketch) -> SketchResult<f64> {
    let mut union = a.clone();
    union.merge(b)?;
    Ok(jaccard(a, b)? * union.estimate())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_small_k() {
        assert!(KmvSketch::new(4, 0).is_err());
        assert!(KmvSketch::new(8, 0).is_ok());
    }

    #[test]
    fn exact_below_k() {
        let mut s = KmvSketch::new(64, 1).unwrap();
        for i in 0..40u64 {
            s.update(&i);
            s.update(&i);
        }
        assert_eq!(s.estimate(), 40.0);
        assert_eq!(s.theta(), 1.0);
    }

    #[test]
    fn estimate_within_theory() {
        let mut s = KmvSketch::new(1024, 2).unwrap();
        let n = 200_000u64;
        for i in 0..n {
            s.update(&i);
        }
        let rel = (s.estimate() - n as f64).abs() / n as f64;
        assert!(rel < 4.0 * s.theoretical_rse(), "rel {rel:.4}");
    }

    #[test]
    fn retains_at_most_k() {
        let mut s = KmvSketch::new(16, 3).unwrap();
        for i in 0..10_000u64 {
            s.update(&i);
        }
        assert_eq!(s.retained(), 16);
        assert!(s.theta() < 1.0);
    }

    #[test]
    fn merge_equals_union_stream() {
        let mut a = KmvSketch::new(128, 4).unwrap();
        let mut b = KmvSketch::new(128, 4).unwrap();
        let mut u = KmvSketch::new(128, 4).unwrap();
        for i in 0..5_000u64 {
            a.update(&i);
            u.update(&i);
        }
        for i in 2_500..7_500u64 {
            b.update(&i);
            u.update(&i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, u);
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = KmvSketch::new(16, 0).unwrap();
        assert!(a.merge(&KmvSketch::new(32, 0).unwrap()).is_err());
        assert!(a.merge(&KmvSketch::new(16, 5).unwrap()).is_err());
    }

    #[test]
    fn jaccard_estimate_close() {
        // |A| = 30k, |B| = 30k, |A∩B| = 10k, |A∪B| = 50k → J = 0.2.
        let mut a = KmvSketch::new(2048, 5).unwrap();
        let mut b = KmvSketch::new(2048, 5).unwrap();
        for i in 0..30_000u64 {
            a.update(&i);
        }
        for i in 20_000..50_000u64 {
            b.update(&i);
        }
        let j = jaccard(&a, &b).unwrap();
        assert!((j - 0.2).abs() < 0.04, "jaccard {j}");
        let inter = intersection_estimate(&a, &b).unwrap();
        let rel = (inter - 10_000.0).abs() / 10_000.0;
        assert!(rel < 0.2, "intersection {inter}");
    }

    #[test]
    fn jaccard_disjoint_sets_is_near_zero() {
        let mut a = KmvSketch::new(256, 6).unwrap();
        let mut b = KmvSketch::new(256, 6).unwrap();
        for i in 0..10_000u64 {
            a.update(&i);
        }
        for i in 10_000..20_000u64 {
            b.update(&i);
        }
        assert!(jaccard(&a, &b).unwrap() < 0.02);
    }

    #[test]
    fn jaccard_identical_sets_is_one() {
        let mut a = KmvSketch::new(64, 7).unwrap();
        let mut b = KmvSketch::new(64, 7).unwrap();
        for i in 0..1_000u64 {
            a.update(&i);
            b.update(&i);
        }
        assert_eq!(jaccard(&a, &b).unwrap(), 1.0);
    }

    #[test]
    fn clear_and_space() {
        let mut s = KmvSketch::new(32, 8).unwrap();
        for i in 0..100u64 {
            s.update(&i);
        }
        assert_eq!(s.space_bytes(), 32 * 8);
        s.clear();
        assert_eq!(s.estimate(), 0.0);
        assert_eq!(s.space_bytes(), 0);
    }
}
