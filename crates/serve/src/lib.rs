//! `sketches-serve`: a hardened, dependency-free HTTP/1.1 front door for
//! the stream-aggregation engine.
//!
//! The crate turns a [`sketches_streamdb::ConcurrentEngine`] (optionally
//! wrapped in a [`sketches_streamdb::DurableEngine`]) into a network
//! service whose failure behaviour is pinned by tests rather than hoped
//! for:
//!
//! * **Per-request deadlines** — socket read/write timeouts plus a total
//!   wall-clock budget; a request that exceeds either gets a typed `504`
//!   and its connection (and worker) is reclaimed.
//! * **Bounded admission** — a fixed worker pool fed by bounded per-worker
//!   queues; overload is shed at the accept thread with typed `429`/`503`
//!   responses carrying `Retry-After`. No queue in the crate is unbounded.
//! * **Retry with backoff** — transient durability faults are retried with
//!   seeded, jittered exponential backoff and a bounded attempt budget;
//!   recovery reconciliation guarantees an acknowledged batch is ingested
//!   exactly once.
//! * **Graceful degradation** — a poisoned engine flips the server
//!   read-only: queries keep serving the last published epoch, ingest
//!   returns `503`, `/healthz` stays green, `/readyz` goes red.
//! * **Graceful drain** — [`Server::shutdown`] stops admission, drains
//!   queued and in-flight requests, flushes a final checkpoint, and
//!   reports what it did; a restart from the same directory is byte-exact.
//!
//! # Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /metrics` | Engine + durability + server metrics, Prometheus text (`?format=json` for one JSON object) |
//! | `GET /healthz` | Liveness: `200` while the process serves |
//! | `GET /readyz` | Readiness: `503` when draining or degraded |
//! | `GET /v1/groups` | Group keys (`?limit=N`) |
//! | `GET/POST /v1/report` | One group's aggregates (`?key=[...]` or body), or a versioned batch via `?keys=[...],[...]` / repeated `key=` |
//! | `GET /v1/view` | The slim query-side [`sketches_streamdb::EngineView`] envelope (binary) |
//! | `POST /v1/ingest` | Batch ingest `{"rows": [[...], ...]}` |
//! | `GET /v1/debug/traces` | Recent head-sampled request traces (`?count=N`), newest first |
//! | `GET /v1/debug/slow` | Recent slow-request traces, retained regardless of sampling |
//!
//! # Tracing
//!
//! Every request can carry a [`sketches_obs::TraceContext`] from the
//! socket down to the WAL: the server opens a root span (honouring an
//! incoming `traceparent` header and emitting one on the response), and
//! each stage — parse, handle, write, submit-queue wait, engine apply,
//! epoch publish, WAL append, fsync, checkpoint — closes a child span
//! *and* records into the shared `stage_latency_seconds{stage=...}`
//! histogram family. Head sampling ([`tracing::TraceConfig`]) bounds the
//! cost; completed traces land in fixed-capacity rings served by the
//! debug endpoints.
//!
//! Everything is plain `std` networking — no async runtime, no external
//! HTTP dependency — so the robustness properties live in ~seven small
//! modules that the workspace's concurrency lints (L6–L9) fully cover.

#![forbid(unsafe_code)]

pub mod backoff;
pub mod http;
pub mod json;
pub mod metrics;
pub mod server;
pub mod state;
pub mod tracing;

pub use backoff::RetryPolicy;
pub use http::{Limits, Request, Response};
pub use json::Json;
pub use metrics::{Route, ServerMetrics};
pub use server::{DrainReport, Server, ServerConfig};
pub use sketches_obs::Sampling;
pub use state::{AppState, Backend, BatchOutcome, IngestOutcome};
pub use tracing::{RequestTrace, TraceConfig, Tracer};
