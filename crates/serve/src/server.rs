//! The server proper: bounded accept/worker pipeline, routing, deadlines,
//! and graceful drain.
//!
//! # Robustness invariants
//!
//! * **Bounded admission** — each worker owns a bounded handoff channel;
//!   the accept loop round-robins `try_send` across them and, when every
//!   queue is full, sheds the connection inline with a typed 429 and
//!   `Retry-After`. Nothing in the server is unbounded.
//! * **Per-request deadlines** — socket read/write timeouts plus a total
//!   wall-clock budget; exceeding either produces a typed 504 and the
//!   connection is closed, never leaked.
//! * **Graceful degradation** — a poisoned engine flips the server
//!   read-only: queries keep serving the last published epoch, ingest
//!   returns 503, `/healthz` stays green, `/readyz` goes red.
//! * **Graceful drain** — [`Server::shutdown`] stops admission, drains
//!   queued and in-flight requests, flushes a final checkpoint, and
//!   reports what it did.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use sketches_obs::{MonotonicClock, Sampling, Stage, Trace, TraceContext};
use sketches_streamdb::{BatchError, KillPoint, ReadHandle, Row, Value};

use crate::backoff::RetryPolicy;
use crate::http::{read_request, Limits, ReadError, Request, Response};
use crate::json::{value_to_json, Json};
use crate::metrics::{Route, ServerMetrics};
use crate::state::{AppState, Backend, IngestOutcome};
use crate::tracing::{RequestTrace, TraceConfig, Tracer};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Worker threads (each fully owns one connection at a time).
    pub workers: usize,
    /// Queued connections per worker beyond the one in service.
    pub queue_depth: usize,
    /// Socket read timeout (slow or stalled clients).
    pub read_timeout: Duration,
    /// Socket write timeout (slow consumers).
    pub write_timeout: Duration,
    /// Total wall-clock budget per request; exceeded ⇒ typed 504.
    pub request_budget: Duration,
    /// Request size caps.
    pub limits: Limits,
    /// Retry policy for transient ingest failures.
    pub retry: RetryPolicy,
    /// Seconds suggested to shed clients via `Retry-After`.
    pub retry_after_secs: u64,
    /// Request tracing: sampling policy, sink capacities, slow threshold.
    pub trace: TraceConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 2,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            request_budget: Duration::from_secs(2),
            limits: Limits::default(),
            retry: RetryPolicy::default(),
            retry_after_secs: 1,
            trace: TraceConfig::default(),
        }
    }
}

/// What a graceful drain accomplished.
#[derive(Debug)]
pub struct DrainReport {
    /// Wall time from shutdown start to full stop, nanoseconds.
    pub elapsed_nanos: u64,
    /// Whether a final checkpoint was written (`false` for volatile
    /// backends).
    pub checkpointed: bool,
    /// The checkpoint failure, if it failed.
    pub checkpoint_error: Option<String>,
    /// Requests completed over the server's lifetime, by the time the
    /// last worker exited.
    pub requests_completed: u64,
    /// Connections shed over the server's lifetime.
    pub shed_total: u64,
}

/// A running HTTP front door over a [`Backend`].
#[derive(Debug)]
pub struct Server {
    state: Arc<AppState>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    // Kept so drain can close the handoff channels (dropping the senders
    // lets each worker finish its queue, then observe disconnect and exit).
    worker_txs: Vec<Sender<TcpStream>>,
}

impl Server {
    /// Binds, spawns the worker pool and accept loop, and starts serving.
    ///
    /// # Errors
    /// Returns the bind/configuration failure.
    pub fn start(config: ServerConfig, backend: Backend) -> Result<Self, String> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;

        let state = Arc::new(AppState::new(
            backend,
            Arc::new(MonotonicClock::new()),
            config.retry,
            Tracer::new(&config.trace),
        )?);
        let stop = Arc::new(AtomicBool::new(false));

        let workers = config.workers.max(1);
        let mut worker_txs = Vec::with_capacity(workers);
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = bounded::<TcpStream>(config.queue_depth.max(1));
            worker_txs.push(tx);
            let state = Arc::clone(&state);
            let config = config.clone();
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &state, &config))
                    .map_err(|e| format!("spawn worker: {e}"))?,
            );
        }

        let accept_handle = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let txs = worker_txs.clone();
            let config = config.clone();
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &txs, &state, &stop, &config))
                .map_err(|e| format!("spawn accept loop: {e}"))?
        };

        Ok(Self {
            state,
            addr,
            stop,
            accept_handle: Some(accept_handle),
            worker_handles,
            worker_txs,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's request/shed/latency metrics.
    #[must_use]
    pub fn metrics(&self) -> &ServerMetrics {
        &self.state.metrics
    }

    /// A read handle onto the engine (drill verification).
    #[must_use]
    pub fn reader(&self) -> ReadHandle {
        self.state.reader()
    }

    /// Whether the server has degraded to read-only.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.state.degraded.load(Ordering::Acquire)
    }

    /// Drill hook: kills the engine coordinator (the server must degrade,
    /// not deadlock).
    pub fn inject_coordinator_panic(&self) {
        self.state.with_backend(|b| b.inject_coordinator_panic());
    }

    /// Drill hook: arms a simulated durability kill (see
    /// [`sketches_streamdb::DurableEngine::arm_kill`]).
    pub fn arm_durability_kill(&self, at_batch: u64, point: KillPoint) {
        self.state.with_backend(|b| b.arm_kill(at_batch, point));
    }

    /// Gracefully drains: stops admission, finishes queued and in-flight
    /// requests, flushes a final checkpoint, and stops all threads.
    #[must_use]
    pub fn shutdown(mut self) -> DrainReport {
        let start = self.state.clock.now_nanos();
        self.state.draining.store(true, Ordering::Release);
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Close the handoff channels: workers drain their queues, then see
        // the disconnect and exit.
        self.worker_txs.clear();
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        let checkpoint = self.state.with_backend(Backend::checkpoint_now);
        let (checkpointed, checkpoint_error) = match checkpoint {
            Ok(wrote) => (wrote, None),
            Err(e) => (false, Some(e)),
        };
        let requests_completed = {
            let snap = self.state.metrics.snapshot();
            snap.counters
                .iter()
                .filter(|(k, _)| k.starts_with("serve_requests_total{"))
                .map(|(_, v)| *v)
                .sum()
        };
        DrainReport {
            elapsed_nanos: self.state.clock.now_nanos().saturating_sub(start),
            checkpointed,
            checkpoint_error,
            requests_completed,
            shed_total: self.state.metrics.shed_total(),
        }
    }
}

impl Drop for Server {
    // lint: drop-ok(only atomic stores: threads observe the flags and stop on
    // their own; joins, locks, and the final checkpoint belong to `shutdown`)
    fn drop(&mut self) {
        self.state.draining.store(true, Ordering::Release);
        self.stop.store(true, Ordering::Release);
    }
}

fn accept_loop(
    listener: &TcpListener,
    txs: &[Sender<TcpStream>],
    state: &AppState,
    stop: &AtomicBool,
    config: &ServerConfig,
) {
    let mut next = 0usize;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => admit(stream, txs, &mut next, state, config),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                // Transient accept failure (e.g. aborted handshake); the
                // listener itself is still good.
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// Hands a fresh connection to a worker, or sheds it inline.
fn admit(
    stream: TcpStream,
    txs: &[Sender<TcpStream>],
    next: &mut usize,
    state: &AppState,
    config: &ServerConfig,
) {
    // Bound every write the accept thread itself performs: a dead or
    // stalled client must not wedge admission for everyone else.
    let _ = stream.set_write_timeout(Some(config.write_timeout));

    if state.draining.load(Ordering::Acquire) {
        shed(stream, state, config, 503, "draining", "server is draining");
        return;
    }

    // Round-robin try_send: one full queue falls through to the next
    // worker; only when every queue is full is the connection shed.
    let mut candidate = stream;
    for offset in 0..txs.len() {
        let idx = (*next + offset) % txs.len();
        match txs[idx].try_send(candidate) {
            Ok(()) => {
                *next = (idx + 1) % txs.len();
                return;
            }
            Err(TrySendError::Full(back)) => candidate = back,
            Err(TrySendError::Disconnected(back)) => candidate = back,
        }
    }
    shed(
        candidate,
        state,
        config,
        429,
        "overloaded",
        "all worker queues are full",
    );
}

/// Writes a typed shed response inline on the accept thread.
fn shed(
    mut stream: TcpStream,
    state: &AppState,
    config: &ServerConfig,
    status: u16,
    code: &str,
    detail: &str,
) {
    state.metrics.record_shed();
    let started = state.clock.now_nanos();
    let response = Response::error(status, code, detail).retry_after(config.retry_after_secs);
    let _ = response.write_to(&mut stream);
    let _ = stream.flush();
    // Short drain budget: shedding runs on the accept thread, so a
    // misbehaving client must not stall admission for long.
    finish_connection(&stream, Duration::from_millis(20));
    state.metrics.record(
        Route::Accept,
        status,
        state.clock.now_nanos().saturating_sub(started),
    );
}

/// Closes a connection without a TCP reset: half-close the write side so
/// the client observes EOF after the response, then consume whatever
/// request bytes are still in flight (bounded in bytes and by `drain`)
/// — closing a socket with unread received data makes the kernel send
/// RST, which can discard the response before the client reads it.
fn finish_connection(mut stream: &TcpStream, drain: Duration) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(drain));
    let mut sink = [0u8; 1024];
    let mut budget = 64 * 1024usize;
    while budget > 0 {
        match std::io::Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

fn worker_loop(rx: &Receiver<TcpStream>, state: &AppState, config: &ServerConfig) {
    // The recv error is disconnection: drain is complete, exit cleanly.
    while let Ok(stream) = rx.recv() {
        handle_connection(stream, state, config);
    }
}

/// Serves exactly one request on `stream`, then closes it.
fn handle_connection(mut stream: TcpStream, state: &AppState, config: &ServerConfig) {
    state.metrics.enter();
    let started = state.clock.now_nanos();
    let deadline = started.saturating_add(config.request_budget.as_nanos() as u64);

    let _ = stream.set_read_timeout(Some(config.read_timeout.min(config.request_budget)));
    let _ = stream.set_write_timeout(Some(config.write_timeout.min(config.request_budget)));

    let mut trace = RequestTrace::disabled();
    let (route, response) = match read_request(&mut stream, &config.limits) {
        Ok(req) => {
            // The trace can only start once the headers are parsed (the
            // incoming `traceparent` lives there), so the parse span is
            // recorded retroactively against the connection start.
            trace = state.tracer.begin(req.header("traceparent"));
            let parse_end = state.clock.now_nanos();
            state
                .metrics
                .record_stage(Stage::Parse, parse_end.saturating_sub(started));
            trace.ctx.child(Stage::Parse, started, parse_end);

            let (route, response) = route_request(&req, state, config, deadline, &trace.ctx);
            let handle_end = state.clock.now_nanos();
            state
                .metrics
                .record_stage(Stage::Handle, handle_end.saturating_sub(parse_end));
            trace
                .ctx
                .child_with(Stage::Handle, parse_end, handle_end, vec![]);
            (route, response)
        }
        Err(ReadError::TimedOut) => (
            Route::Other,
            Response::error(504, "deadline_exceeded", "timed out reading the request"),
        ),
        Err(ReadError::TooLarge) => (
            Route::Other,
            Response::error(413, "too_large", "request exceeds configured limits"),
        ),
        Err(ReadError::Malformed(m)) => (
            Route::Other,
            Response::error(400, "malformed", &format!("unparseable request: {m}")),
        ),
        Err(ReadError::Closed) | Err(ReadError::Io(_)) => {
            // Nothing parseable arrived; close without accounting a request.
            state.metrics.exit();
            return;
        }
    };

    // The total budget wins over whatever the handler produced: a request
    // that exhausted its wall-clock allotment is a deadline failure even
    // if an answer eventually materialized.
    let response = if state.clock.now_nanos() >= deadline {
        Response::error(
            504,
            "deadline_exceeded",
            "request exceeded its total time budget",
        )
    } else {
        response
    };
    // Announce the trace so clients (and tests) can correlate responses
    // with `/v1/debug/traces` entries.
    let response = match trace.ctx.traceparent() {
        Some(tp) => response.with_header("traceparent", tp),
        None => response,
    };

    let write_start = state.clock.now_nanos();
    let _ = response.write_to(&mut stream);
    finish_connection(&stream, config.read_timeout);
    let ended = state.clock.now_nanos();
    state
        .metrics
        .record_stage(Stage::Write, ended.saturating_sub(write_start));
    trace.ctx.child(Stage::Write, write_start, ended);
    state
        .metrics
        .record(route, response.status, ended.saturating_sub(started));
    state.tracer.finish(
        &trace,
        started,
        ended,
        vec![
            ("route".to_string(), route.label().to_string()),
            ("status".to_string(), response.status.to_string()),
        ],
    );
    state.metrics.exit();
}

/// Dispatches a parsed request to its handler.
fn route_request(
    req: &Request,
    state: &AppState,
    config: &ServerConfig,
    deadline: u64,
    ctx: &TraceContext,
) -> (Route, Response) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/metrics") => (Route::Metrics, metrics_response(req, state)),
        ("GET", "/healthz") => (Route::Healthz, Response::json(200, "{\"status\":\"ok\"}")),
        ("GET", "/readyz") => (Route::Readyz, readyz_response(state)),
        ("GET", "/v1/groups") => (Route::Groups, groups_response(req, state)),
        ("GET" | "POST", "/v1/report") => (Route::Report, report_response(req, state)),
        ("GET", "/v1/view") => (Route::View, view_response(state)),
        ("POST", "/v1/ingest") => (
            Route::Ingest,
            ingest_response(req, state, config, deadline, ctx),
        ),
        ("GET", "/v1/debug/traces") => (Route::DebugTraces, debug_traces_response(req, state)),
        ("GET", "/v1/debug/slow") => (Route::DebugSlow, debug_slow_response(req, state)),
        (
            _,
            "/metrics" | "/healthz" | "/readyz" | "/v1/groups" | "/v1/report" | "/v1/view"
            | "/v1/ingest" | "/v1/debug/traces" | "/v1/debug/slow",
        ) => (
            Route::Other,
            Response::error(
                405,
                "method_not_allowed",
                "unsupported method for this path",
            ),
        ),
        _ => (
            Route::Other,
            Response::error(404, "not_found", "unknown path"),
        ),
    }
}

/// `/metrics`: engine + durability + server metrics, merged. The default
/// rendering is Prometheus text; `?format=json` returns the same
/// snapshot as one JSON object, and any other format is a typed 400.
fn metrics_response(req: &Request, state: &AppState) -> Response {
    let format = req.query_param("format").unwrap_or("prometheus");
    if format != "prometheus" && format != "json" {
        return Response::error(
            400,
            "bad_query",
            "format must be \"prometheus\" or \"json\"",
        );
    }
    let mut snap = state.reader().metrics();
    let durability = state.with_backend(|b| b.durability_metrics());
    let merged = snap
        .merge(&durability)
        .and_then(|()| snap.merge(&state.metrics.snapshot()));
    if let Err(e) = merged {
        return Response::error(500, "metrics_failed", &e.to_string());
    }
    if format == "json" {
        Response::json(200, snap.to_json())
    } else {
        Response::text(200, snap.to_prometheus())
    }
}

/// Default and maximum `?count=` for the debug trace endpoints.
const DEBUG_TRACES_DEFAULT: usize = 16;
const DEBUG_TRACES_MAX: usize = 256;

/// Parses the bounded `?count=` parameter shared by the debug endpoints.
fn parse_debug_count(req: &Request) -> Result<usize, Response> {
    match req.query_param("count").map(str::parse::<usize>) {
        None => Ok(DEBUG_TRACES_DEFAULT),
        Some(Ok(n)) if (1..=DEBUG_TRACES_MAX).contains(&n) => Ok(n),
        Some(_) => Err(Response::error(
            400,
            "bad_query",
            &format!("count must be an integer in 1..={DEBUG_TRACES_MAX}"),
        )),
    }
}

/// Renders a trace list endpoint body: versioned envelope, newest first.
fn traces_body(traces: &[Trace], extra: &[(String, Json)], state: &AppState) -> String {
    let sampling = match state.tracer.sampling() {
        Sampling::Off => "off".to_string(),
        Sampling::Always => "always".to_string(),
        Sampling::SampleEvery(n) => format!("every_{n}"),
    };
    let mut out = format!(
        "{{\"version\":1,\"sampling\":{},",
        crate::json::escape(&sampling)
    );
    for (k, v) in extra {
        out.push_str(&format!("{}:{},", crate::json::escape(k), v.render()));
    }
    out.push_str(&format!("\"count\":{},\"traces\":[", traces.len()));
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&t.to_json());
    }
    out.push_str("]}");
    out
}

/// `GET /v1/debug/traces?count=N`: the most recent head-sampled traces,
/// newest first, from the bounded in-memory ring.
fn debug_traces_response(req: &Request, state: &AppState) -> Response {
    let count = match parse_debug_count(req) {
        Ok(n) => n,
        Err(resp) => return resp,
    };
    let traces = state.tracer.recent(count);
    let extra = [(
        "capacity".to_string(),
        Json::U64(state.tracer.capacity() as u64),
    )];
    Response::json(200, traces_body(&traces, &extra, state))
}

/// `GET /v1/debug/slow?count=N`: recent slow requests (end-to-end time
/// over the configured threshold), force-retained regardless of the
/// sampling policy.
fn debug_slow_response(req: &Request, state: &AppState) -> Response {
    let count = match parse_debug_count(req) {
        Ok(n) => n,
        Err(resp) => return resp,
    };
    let traces = state.tracer.slow_recent(count);
    let extra = [
        (
            "capacity".to_string(),
            Json::U64(state.tracer.slow_capacity() as u64),
        ),
        (
            "slow_threshold_nanos".to_string(),
            Json::U64(state.tracer.slow_threshold_nanos()),
        ),
    ];
    Response::json(200, traces_body(&traces, &extra, state))
}

fn readyz_response(state: &AppState) -> Response {
    if state.draining.load(Ordering::Acquire) {
        Response::json(503, "{\"ready\":false,\"reason\":\"draining\"}")
    } else if state.degraded.load(Ordering::Acquire) {
        Response::json(
            503,
            "{\"ready\":false,\"reason\":\"degraded: engine poisoned, serving reads only\"}",
        )
    } else {
        // The typed accessor replaces the old habit of sniffing snapshot
        // envelope headers to learn what the backend would write.
        let kind = state.reader().snapshot_kind();
        Response::json(
            200,
            format!("{{\"ready\":true,\"snapshot_kind\":\"{kind}\"}}"),
        )
    }
}

/// `/v1/view`: the slim query-side view of the latest published epoch as
/// a checksummed binary envelope — what a replica or cache fetches
/// instead of the fat snapshot.
fn view_response(state: &AppState) -> Response {
    Response::octets(200, state.reader().query_view().to_view_bytes())
}

fn groups_response(req: &Request, state: &AppState) -> Response {
    let limit = match req.query_param("limit").map(str::parse::<usize>) {
        None => usize::MAX,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            return Response::error(400, "bad_query", "limit must be a non-negative integer")
        }
    };
    let reader = state.reader();
    let groups = reader.groups();
    let total = groups.len();
    let items: Vec<Json> = groups
        .into_iter()
        .take(limit)
        .map(|key| Json::Arr(key.iter().map(value_to_json).collect()))
        .collect();
    let body = Json::Obj(vec![
        ("total".to_string(), Json::U64(total as u64)),
        ("groups".to_string(), Json::Arr(items)),
    ]);
    Response::json(200, body.render())
}

/// Converts a parsed JSON array document into a group key.
fn key_from_doc(doc: &Json, code: &str) -> Result<Vec<Value>, Response> {
    let arr = match doc.as_array() {
        Some(a) => a,
        None => return Err(Response::error(400, code, "key must be a JSON array")),
    };
    arr.iter()
        .map(|j| j.to_value().map_err(|e| Response::error(400, code, &e)))
        .collect()
}

/// Extracts the group key from `?key=<json array>` or a `{"key": [...]}`
/// body.
fn parse_key(req: &Request) -> Result<Vec<Value>, Response> {
    let doc = if let Some(raw) = req.query_param("key") {
        Json::parse(raw)
            .map_err(|e| Response::error(400, "bad_key", &format!("key is not valid JSON: {e}")))?
    } else if !req.body.is_empty() {
        let text = std::str::from_utf8(&req.body)
            .map_err(|_| Response::error(400, "bad_body", "body is not UTF-8"))?;
        let body = Json::parse(text)
            .map_err(|e| Response::error(400, "bad_body", &format!("invalid JSON: {e}")))?;
        body.get("key")
            .cloned()
            .ok_or_else(|| Response::error(400, "bad_key", "body must carry a \"key\" field"))?
    } else {
        return Err(Response::error(
            400,
            "bad_key",
            "pass ?key=<json array> or a {\"key\": [...]} body",
        ));
    };
    key_from_doc(&doc, "bad_key")
}

/// Upper bound on keys per batched `/v1/report` request.
const MAX_REPORT_KEYS: usize = 64;

/// Splits a `keys=` list on top-level commas: commas nested inside
/// `[...]` or a quoted string belong to the key, not the list.
fn split_keys_list(raw: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let mut start = 0usize;
    for (i, b) in raw.bytes().enumerate() {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'[' => depth += 1,
            b']' => depth = depth.saturating_sub(1),
            b',' if depth == 0 => {
                out.push(&raw[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&raw[start..]);
    out
}

/// Parses one element of a `keys=` list: a JSON array is a full group
/// key; a JSON scalar is a single-field key; anything unparseable is
/// taken as a bare string key (so `keys=us,eu` works without quoting).
fn parse_key_token(token: &str) -> Result<Vec<Value>, Response> {
    let token = token.trim();
    if token.is_empty() {
        return Err(Response::error(
            400,
            "bad_keys",
            "keys list contains an empty key",
        ));
    }
    if token.starts_with('[') {
        let doc = Json::parse(token).map_err(|e| {
            Response::error(400, "bad_keys", &format!("key is not valid JSON: {e}"))
        })?;
        return key_from_doc(&doc, "bad_keys");
    }
    match Json::parse(token) {
        Ok(doc) => Ok(vec![doc
            .to_value()
            .map_err(|e| Response::error(400, "bad_keys", &e))?]),
        Err(_) => Ok(vec![Value::Str(token.to_string())]),
    }
}

/// Collects the batched key list: every `key=` parameter plus every
/// element of every `keys=` list, in request order.
fn parse_batch_keys(req: &Request) -> Result<Vec<Vec<Value>>, Response> {
    let mut keys = Vec::new();
    for (name, value) in &req.query {
        match name.as_str() {
            "key" => {
                let doc = Json::parse(value).map_err(|e| {
                    Response::error(400, "bad_key", &format!("key is not valid JSON: {e}"))
                })?;
                keys.push(key_from_doc(&doc, "bad_key")?);
            }
            "keys" => {
                for token in split_keys_list(value) {
                    keys.push(parse_key_token(token)?);
                }
            }
            _ => {}
        }
    }
    if keys.is_empty() {
        return Err(Response::error(400, "bad_keys", "keys list is empty"));
    }
    if keys.len() > MAX_REPORT_KEYS {
        return Err(Response::error(
            400,
            "bad_keys",
            &format!("too many keys: {} (limit {MAX_REPORT_KEYS})", keys.len()),
        ));
    }
    Ok(keys)
}

fn report_response(req: &Request, state: &AppState) -> Response {
    // Batched form: a `keys=` list or repeated `key=` parameters. The
    // single-key form keeps its original response shape exactly.
    if req.query_param("keys").is_some() || req.query_params("key").len() > 1 {
        return batch_report_response(req, state);
    }
    let key = match parse_key(req) {
        Ok(k) => k,
        Err(resp) => return resp,
    };
    let reader = state.reader();
    match reader.report(&key) {
        Ok(Some(aggs)) => {
            let rendered: Vec<Json> = aggs.iter().map(aggregate_to_json).collect();
            let body = Json::Obj(vec![
                (
                    "key".to_string(),
                    Json::Arr(key.iter().map(value_to_json).collect()),
                ),
                ("aggregates".to_string(), Json::Arr(rendered)),
            ]);
            Response::json(200, body.render())
        }
        Ok(None) => Response::error(404, "unknown_group", "no such group key"),
        Err(e) => Response::error(500, "query_failed", &e.to_string()),
    }
}

/// Batched `/v1/report`: one versioned array entry per requested key;
/// unknown groups report `found: false` instead of failing the batch.
fn batch_report_response(req: &Request, state: &AppState) -> Response {
    let keys = match parse_batch_keys(req) {
        Ok(k) => k,
        Err(resp) => return resp,
    };
    let reader = state.reader();
    let mut reports = Vec::with_capacity(keys.len());
    for key in keys {
        let rendered_key = Json::Arr(key.iter().map(value_to_json).collect());
        let entry = match reader.report(&key) {
            Ok(Some(aggs)) => Json::Obj(vec![
                ("key".to_string(), rendered_key),
                ("found".to_string(), Json::Bool(true)),
                (
                    "aggregates".to_string(),
                    Json::Arr(aggs.iter().map(aggregate_to_json).collect()),
                ),
            ]),
            Ok(None) => Json::Obj(vec![
                ("key".to_string(), rendered_key),
                ("found".to_string(), Json::Bool(false)),
                ("aggregates".to_string(), Json::Arr(Vec::new())),
            ]),
            Err(e) => return Response::error(500, "query_failed", &e.to_string()),
        };
        reports.push(entry);
    }
    let body = Json::Obj(vec![
        ("version".to_string(), Json::U64(1)),
        ("reports".to_string(), Json::Arr(reports)),
    ]);
    Response::json(200, body.render())
}

fn aggregate_to_json(agg: &sketches_streamdb::AggregateResult) -> Json {
    use sketches_streamdb::AggregateResult;
    match agg {
        AggregateResult::Count(n) => Json::Obj(vec![
            ("agg".to_string(), Json::Str("count".to_string())),
            ("value".to_string(), Json::U64(*n)),
        ]),
        AggregateResult::Sum(x) => Json::Obj(vec![
            ("agg".to_string(), Json::Str("sum".to_string())),
            ("value".to_string(), Json::F64(*x)),
        ]),
        AggregateResult::CountDistinct(x) => Json::Obj(vec![
            ("agg".to_string(), Json::Str("count_distinct".to_string())),
            ("value".to_string(), Json::F64(*x)),
        ]),
        AggregateResult::Quantiles { p50, p95, p99 } => Json::Obj(vec![
            ("agg".to_string(), Json::Str("quantiles".to_string())),
            ("p50".to_string(), Json::F64(*p50)),
            ("p95".to_string(), Json::F64(*p95)),
            ("p99".to_string(), Json::F64(*p99)),
        ]),
        AggregateResult::Frequency { total } => Json::Obj(vec![
            ("agg".to_string(), Json::Str("frequency".to_string())),
            ("total".to_string(), Json::U64(*total)),
        ]),
        AggregateResult::TopK(items) => Json::Obj(vec![
            ("agg".to_string(), Json::Str("top_k".to_string())),
            (
                "items".to_string(),
                Json::Arr(
                    items
                        .iter()
                        .map(|(v, n)| Json::Arr(vec![value_to_json(v), Json::U64(*n)]))
                        .collect(),
                ),
            ),
        ]),
    }
}

/// Parses an ingest body `{"rows": [[...], ...]}` into engine rows.
fn parse_rows(body: &[u8]) -> Result<Vec<Row>, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::error(400, "bad_body", "body is not UTF-8"))?;
    let doc = Json::parse(text)
        .map_err(|e| Response::error(400, "bad_body", &format!("invalid JSON: {e}")))?;
    let rows = doc
        .get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| Response::error(400, "bad_body", "body must carry a \"rows\" array"))?;
    rows.iter()
        .map(|row| {
            let cells = row
                .as_array()
                .ok_or_else(|| Response::error(400, "bad_row", "each row must be an array"))?;
            cells
                .iter()
                .map(|c| {
                    c.to_value()
                        .map_err(|e| Response::error(400, "bad_row", &e))
                })
                .collect()
        })
        .collect()
}

fn ingest_response(
    req: &Request,
    state: &AppState,
    config: &ServerConfig,
    deadline: u64,
    ctx: &TraceContext,
) -> Response {
    if state.draining.load(Ordering::Acquire) {
        return Response::error(503, "draining", "server is draining")
            .retry_after(config.retry_after_secs);
    }
    if state.degraded.load(Ordering::Acquire) {
        return Response::error(503, "read_only", "engine degraded; serving reads only");
    }
    let rows = match parse_rows(&req.body) {
        Ok(r) => r,
        Err(resp) => return resp,
    };
    if rows.is_empty() {
        return Response::json(200, "{\"ingested\":0,\"quarantined\":0,\"attempts\":0}");
    }
    if state.clock.now_nanos() >= deadline {
        return Response::error(
            504,
            "deadline_exceeded",
            "request exceeded its total time budget",
        );
    }
    match state.ingest(&rows, deadline, state.token(), ctx) {
        IngestOutcome::Ok { summary, attempts } => Response::json(
            200,
            format!(
                "{{\"ingested\":{},\"quarantined\":{},\"attempts\":{}}}",
                summary.rows_ingested, summary.rows_quarantined, attempts
            ),
        ),
        IngestOutcome::Rejected(e) => batch_error_response(&e),
        IngestOutcome::Degraded(msg) => Response::error(503, "read_only", &msg),
        IngestOutcome::Unavailable { detail, attempts } => Response::error(
            503,
            "unavailable",
            &format!("gave up after {attempts} attempts: {detail}"),
        )
        .retry_after(config.retry_after_secs),
    }
}

fn batch_error_response(e: &BatchError) -> Response {
    let mut obj = vec![
        ("error".to_string(), Json::Str("bad_batch".to_string())),
        ("detail".to_string(), Json::Str(e.to_string())),
    ];
    if let Some(row) = e.row {
        obj.push(("row".to_string(), Json::U64(row as u64)));
    }
    if let Some(shard) = e.shard {
        obj.push(("shard".to_string(), Json::U64(shard as u64)));
    }
    Response::json(400, Json::Obj(obj).render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_is_bounded_and_sane() {
        let c = ServerConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_depth >= 1);
        assert!(c.request_budget >= c.read_timeout);
    }

    #[test]
    fn keys_list_splits_at_top_level_commas_only() {
        assert_eq!(split_keys_list("[1],[2,3],us"), vec!["[1]", "[2,3]", "us"]);
        assert_eq!(split_keys_list("[\"a,b\"],c"), vec!["[\"a,b\"]", "c"]);
        assert_eq!(split_keys_list("solo"), vec!["solo"]);
        assert_eq!(split_keys_list(""), vec![""]);
    }

    #[test]
    fn key_tokens_parse_arrays_scalars_and_bare_strings() {
        assert_eq!(
            parse_key_token("[1,\"x\"]").unwrap(),
            vec![Value::U64(1), Value::Str("x".to_string())]
        );
        assert_eq!(parse_key_token("7").unwrap(), vec![Value::U64(7)]);
        assert_eq!(
            parse_key_token("us-east").unwrap(),
            vec![Value::Str("us-east".to_string())]
        );
        assert!(parse_key_token("  ").is_err());
        assert!(parse_key_token("[1,").is_err());
    }

    #[test]
    fn batch_error_renders_row_and_shard() {
        use sketches_streamdb::BatchCause;
        let resp = batch_error_response(&BatchError {
            row: Some(3),
            shard: Some(1),
            cause: BatchCause::WorkerPanic("boom".to_string()),
        });
        assert_eq!(resp.status, 400);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"row\":3"));
        assert!(body.contains("\"shard\":1"));
        assert!(body.contains("bad_batch"));
    }
}
