//! Shared server state: the engine backend, the published read path,
//! and the retrying ingest path with recovery reconciliation.
//!
//! Writers serialize through one mutex around the backend; readers never
//! touch that mutex — they clone a [`ReadHandle`] out of an `RwLock` and
//! query the engine's epoch-published snapshots lock-free. When the
//! durable layer recovers from a fault it builds a *new* engine, so the
//! handle is re-pointed at the fresh engine under the write lock.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use sketches_obs::{Clock, MetricsSnapshot, TraceContext};
use sketches_streamdb::{
    BatchCause, BatchError, BatchSummary, ConcurrentEngine, DurableEngine, KillPoint, ReadHandle,
    Row, StreamEngine,
};

use crate::backoff::RetryPolicy;
use crate::metrics::ServerMetrics;
use crate::tracing::Tracer;

/// The engine a server fronts: in-memory only, or WAL-and-checkpoint
/// durable.
#[derive(Debug)]
pub enum Backend {
    /// Concurrent engine with no persistence (dev / benchmarks).
    Volatile(ConcurrentEngine),
    /// Durable engine over a directory. `engine` is `None` only after an
    /// unrecoverable failure (recovery itself failed), at which point the
    /// server is permanently read-only on its last published snapshots.
    /// Boxed so the enum stays small for the volatile case.
    Durable {
        /// The wrapped engine, present while healthy or recoverable.
        engine: Option<Box<DurableEngine<ConcurrentEngine>>>,
        /// The WAL/checkpoint directory, kept for in-place recovery.
        dir: PathBuf,
    },
}

/// Whether a batch error is the engine's typed poisoned error. A ticket
/// can resolve via channel disconnect an instant before the supervisor
/// stores the poison flag, so the flag alone under-reports; the message
/// check closes that race (the batch was NOT a bad request).
fn is_poison_panic(e: &BatchError) -> bool {
    matches!(&e.cause, BatchCause::WorkerPanic(msg) if msg.contains("poisoned"))
}

/// What one `try_batch` attempt concluded.
#[derive(Debug)]
pub enum BatchOutcome {
    /// The batch committed (and is durable when the backend persists).
    Done {
        /// Ingest summary.
        summary: BatchSummary,
        /// Whether a recovery rebuilt the engine on the way (readers must
        /// be re-pointed).
        recovered: bool,
    },
    /// The batch itself was rejected (typed row error) — retrying the
    /// same bytes cannot succeed.
    Rejected(BatchError),
    /// Infrastructure hiccup; the batch did **not** commit and a retry
    /// may succeed.
    Transient {
        /// Human-readable cause.
        detail: String,
        /// Whether a recovery rebuilt the engine (readers must be
        /// re-pointed).
        recovered: bool,
    },
    /// The engine is permanently degraded; the server flips read-only.
    Poisoned(String),
}

impl Backend {
    /// Creates a durable backend rooted at `dir`.
    #[must_use]
    pub fn durable(engine: DurableEngine<ConcurrentEngine>, dir: impl Into<PathBuf>) -> Self {
        Self::Durable {
            engine: Some(Box::new(engine)),
            dir: dir.into(),
        }
    }

    /// Attempts one batch, classifying the result for the retry loop.
    ///
    /// On a durability fault the engine has poisoned itself; this method
    /// recovers **in place** from `dir` and reconciles: if the recovered
    /// row count shows the batch reached the WAL before the fault, the
    /// attempt is reported as success (retrying would double-ingest);
    /// otherwise it is transient and safe to retry.
    pub fn try_batch(&mut self, rows: &[Row], ctx: &TraceContext) -> BatchOutcome {
        match self {
            Backend::Volatile(engine) => match engine.process_batch_traced(rows, ctx) {
                Ok(summary) => BatchOutcome::Done {
                    summary,
                    recovered: false,
                },
                Err(e) => {
                    if engine.is_poisoned() || is_poison_panic(&e) {
                        BatchOutcome::Poisoned(e.to_string())
                    } else {
                        BatchOutcome::Rejected(e)
                    }
                }
            },
            Backend::Durable { engine, dir } => {
                let Some(eng) = engine.as_mut() else {
                    return BatchOutcome::Poisoned(
                        "engine lost to an earlier unrecoverable failure".to_string(),
                    );
                };
                let rows_before = eng.engine().rows_processed();
                match eng.process_batch_traced(rows, ctx) {
                    Ok(summary) => BatchOutcome::Done {
                        summary,
                        recovered: false,
                    },
                    Err(e) => match &e.cause {
                        BatchCause::Row(_) => BatchOutcome::Rejected(e),
                        BatchCause::WorkerPanic(_) => {
                            if eng.engine().is_poisoned() || is_poison_panic(&e) {
                                BatchOutcome::Poisoned(e.to_string())
                            } else {
                                BatchOutcome::Rejected(e)
                            }
                        }
                        BatchCause::Durability(_) => {
                            let policy = eng.policy();
                            // Drop the poisoned engine (releasing its WAL
                            // handle) before reopening the directory.
                            drop(engine.take());
                            match DurableEngine::<ConcurrentEngine>::recover_with_policy(
                                dir.clone(),
                                policy,
                            ) {
                                Ok(fresh) => {
                                    let rows_after = fresh.engine().rows_processed();
                                    *engine = Some(Box::new(fresh));
                                    if rows_after > rows_before {
                                        // The batch hit the WAL before the
                                        // fault; it is durable. Report
                                        // success so the caller does not
                                        // retry it into a double-ingest.
                                        BatchOutcome::Done {
                                            summary: BatchSummary {
                                                rows_ingested: (rows_after - rows_before) as usize,
                                                rows_quarantined: 0,
                                            },
                                            recovered: true,
                                        }
                                    } else {
                                        BatchOutcome::Transient {
                                            detail: e.to_string(),
                                            recovered: true,
                                        }
                                    }
                                }
                                Err(re) => BatchOutcome::Poisoned(format!(
                                    "recovery failed after durability fault ({e}): {re}"
                                )),
                            }
                        }
                    },
                }
            }
        }
    }

    /// A read handle onto the current engine (`None` once unrecoverable).
    #[must_use]
    pub fn reader(&self) -> Option<ReadHandle> {
        match self {
            Backend::Volatile(engine) => Some(engine.reader()),
            Backend::Durable { engine, .. } => engine.as_ref().map(|e| e.engine().reader()),
        }
    }

    /// Whether the backend can no longer accept writes.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        match self {
            Backend::Volatile(engine) => engine.is_poisoned(),
            Backend::Durable { engine, .. } => match engine {
                None => true,
                Some(e) => e.is_poisoned() || e.engine().is_poisoned(),
            },
        }
    }

    /// Durability-layer metrics (WAL/checkpoint counters); empty for a
    /// volatile backend.
    #[must_use]
    pub fn durability_metrics(&self) -> MetricsSnapshot {
        match self {
            Backend::Volatile(_) => MetricsSnapshot::new(),
            Backend::Durable { engine, .. } => engine
                .as_ref()
                .map_or_else(MetricsSnapshot::new, |e| e.metrics()),
        }
    }

    /// Forces a checkpoint (drain path). `Ok(false)` for a volatile
    /// backend, `Ok(true)` on a successful checkpoint.
    ///
    /// # Errors
    /// Propagates the checkpoint failure message.
    pub fn checkpoint_now(&mut self) -> Result<bool, String> {
        match self {
            Backend::Volatile(_) => Ok(false),
            Backend::Durable { engine, .. } => match engine.as_mut() {
                None => Err("engine lost to an earlier unrecoverable failure".to_string()),
                Some(e) => e.checkpoint_now().map(|()| true).map_err(|e| e.to_string()),
            },
        }
    }

    /// Drill hook: arms a simulated durability kill (durable backends
    /// only; no-op otherwise).
    pub fn arm_kill(&mut self, at_batch: u64, point: KillPoint) {
        if let Backend::Durable {
            engine: Some(e), ..
        } = self
        {
            e.arm_kill(at_batch, point);
        }
    }

    /// Drill hook: injects a coordinator panic into the wrapped
    /// concurrent engine.
    pub fn inject_coordinator_panic(&self) {
        match self {
            Backend::Volatile(engine) => engine.inject_coordinator_panic(),
            Backend::Durable { engine, .. } => {
                if let Some(e) = engine.as_ref() {
                    e.engine().inject_coordinator_panic();
                }
            }
        }
    }
}

/// How one ingest request (including retries) concluded.
#[derive(Debug)]
pub enum IngestOutcome {
    /// Committed (durably, when applicable).
    Ok {
        /// Ingest summary.
        summary: BatchSummary,
        /// Total attempts, first try included.
        attempts: u32,
    },
    /// The batch is bad; do not retry (HTTP 400).
    Rejected(BatchError),
    /// The engine is degraded read-only (HTTP 503, not retryable).
    Degraded(String),
    /// Transient overload/fault outlived the retry budget or the request
    /// deadline (HTTP 503, retryable later).
    Unavailable {
        /// Human-readable cause.
        detail: String,
        /// Total attempts made.
        attempts: u32,
    },
}

/// State shared by the accept loop and every worker.
#[derive(Debug)]
pub struct AppState {
    /// Lock-free read path; re-pointed after recovery.
    reader: RwLock<ReadHandle>,
    /// Serialized write path.
    backend: Mutex<Backend>,
    /// Set when drain starts: admission refuses, in-flight completes.
    pub draining: AtomicBool,
    /// Set when the engine poisons: server flips read-only.
    pub degraded: AtomicBool,
    /// Time source for deadlines and latency accounting.
    pub clock: Arc<dyn Clock>,
    /// Retry policy for transient ingest failures.
    pub retry: RetryPolicy,
    /// Server request/shed/latency metrics.
    pub metrics: ServerMetrics,
    /// Request-trace minting and bounded retention.
    pub tracer: Tracer,
    /// Monotone connection counter; doubles as the backoff jitter token.
    next_token: AtomicU64,
}

impl AppState {
    /// Builds shared state over a healthy backend.
    ///
    /// # Errors
    /// Returns an error if the backend is already unreadable.
    pub fn new(
        backend: Backend,
        clock: Arc<dyn Clock>,
        retry: RetryPolicy,
        tracer: Tracer,
    ) -> Result<Self, String> {
        let reader = backend
            .reader()
            .ok_or_else(|| "backend has no readable engine".to_string())?;
        Ok(Self {
            reader: RwLock::new(reader),
            backend: Mutex::new(backend),
            draining: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            clock,
            retry,
            metrics: ServerMetrics::new(),
            tracer,
            next_token: AtomicU64::new(0),
        })
    }

    /// A fresh jitter token (one per connection).
    pub fn token(&self) -> u64 {
        self.next_token.fetch_add(1, Ordering::Relaxed)
    }

    /// A clone of the current read handle (queries never hold the lock
    /// while touching the engine).
    #[must_use]
    pub fn reader(&self) -> ReadHandle {
        self.reader.read().clone()
    }

    /// Runs `f` with the backend locked (metrics, drill hooks, drain).
    pub fn with_backend<T>(&self, f: impl FnOnce(&mut Backend) -> T) -> T {
        let mut guard = self.backend.lock();
        // lint: guard-scope(this mutex exists to serialize engine access; callers pass short engine operations — metric cuts, drill arming, batch attempts, the drain checkpoint — and none takes another lock)
        f(&mut guard)
    }

    /// Ingests one batch with bounded, seeded-backoff retries for
    /// transient failures, giving up at `deadline_nanos` (absolute clock
    /// reading).
    pub fn ingest(
        &self,
        rows: &[Row],
        deadline_nanos: u64,
        token: u64,
        ctx: &TraceContext,
    ) -> IngestOutcome {
        let mut attempts = 0u32;
        loop {
            if self.degraded.load(Ordering::Acquire) {
                return IngestOutcome::Degraded("engine degraded; serving reads only".to_string());
            }
            attempts += 1;
            let outcome = {
                let mut backend = self.backend.lock();
                backend.try_batch(rows, ctx)
            };
            match outcome {
                BatchOutcome::Done { summary, recovered } => {
                    if recovered {
                        self.repoint_reader();
                    }
                    return IngestOutcome::Ok { summary, attempts };
                }
                BatchOutcome::Rejected(e) => return IngestOutcome::Rejected(e),
                BatchOutcome::Poisoned(msg) => {
                    self.degraded.store(true, Ordering::Release);
                    return IngestOutcome::Degraded(msg);
                }
                BatchOutcome::Transient { detail, recovered } => {
                    if recovered {
                        self.repoint_reader();
                    }
                    if !self.retry.should_retry(attempts) {
                        return IngestOutcome::Unavailable { detail, attempts };
                    }
                    let delay = self.retry.delay(token, attempts);
                    let now = self.clock.now_nanos();
                    if now.saturating_add(delay.as_nanos() as u64) >= deadline_nanos {
                        return IngestOutcome::Unavailable {
                            detail: format!(
                                "request deadline reached after {attempts} attempts: {detail}"
                            ),
                            attempts,
                        };
                    }
                    self.metrics.record_retry();
                    std::thread::sleep(delay);
                }
            }
        }
    }

    /// Re-points the read path at the (possibly rebuilt) engine.
    fn repoint_reader(&self) {
        let fresh = {
            let backend = self.backend.lock();
            backend.reader()
        };
        if let Some(handle) = fresh {
            *self.reader.write() = handle;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketches_obs::ManualClock;
    use sketches_streamdb::{Aggregate, CheckpointPolicy, QuerySpec, Value};

    fn spec() -> QuerySpec {
        QuerySpec::new(vec![0], vec![Aggregate::Count]).unwrap()
    }

    fn rows(n: u64) -> Vec<Row> {
        (0..n)
            .map(|i| vec![Value::U64(i % 3), Value::U64(i)])
            .collect()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sketches-serve-state-{}-{tag}", std::process::id()))
    }

    fn state(backend: Backend) -> AppState {
        AppState::new(
            backend,
            Arc::new(ManualClock::new()),
            RetryPolicy {
                base_nanos: 1_000, // keep test retries fast
                cap_nanos: 10_000,
                ..RetryPolicy::default()
            },
            Tracer::new(&crate::tracing::TraceConfig::default()),
        )
        .unwrap()
    }

    fn untraced() -> TraceContext {
        TraceContext::disabled()
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real threads + temp dirs + wall clock
    fn volatile_ingest_and_read() {
        let engine = ConcurrentEngine::new(spec(), 2).unwrap();
        let st = state(Backend::Volatile(engine));
        match st.ingest(&rows(300), u64::MAX, 0, &untraced()) {
            IngestOutcome::Ok { summary, attempts } => {
                assert_eq!(summary.rows_ingested, 300);
                assert_eq!(attempts, 1);
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert_eq!(st.reader().rows_processed(), 300);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real threads + temp dirs + wall clock
    fn durability_fault_retries_and_recovers_without_double_ingest() {
        let dir = temp_dir("retry");
        let _ = std::fs::remove_dir_all(&dir);
        let engine = DurableEngine::create(
            &dir,
            ConcurrentEngine::new(spec(), 2).unwrap(),
            CheckpointPolicy::new(10_000, u64::MAX).unwrap(),
        )
        .unwrap();
        let st = state(Backend::durable(engine, &dir));

        st.ingest(&rows(100), u64::MAX, 0, &untraced());
        // Kill before the WAL append on the next batch (0-based batch 1 on
        // this handle): the batch is NOT durable, so the retry loop must
        // re-submit it exactly once.
        st.with_backend(|b| b.arm_kill(1, KillPoint::BeforeWalAppend));
        match st.ingest(&rows(50), u64::MAX, 1, &untraced()) {
            IngestOutcome::Ok { summary, attempts } => {
                assert_eq!(summary.rows_ingested, 50);
                assert!(attempts >= 2, "expected a retry, got {attempts}");
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert!(st.metrics.retry_attempts_total() >= 1);
        // Reader re-pointed at the recovered engine: totals are exact.
        assert_eq!(st.reader().rows_processed(), 150);

        // Kill *after* the WAL append: the batch IS durable; the retry
        // loop must reconcile and not ingest it twice. (Recovery rebuilt
        // the handle, so its batch counter restarted; the retry above was
        // batch 0 and the next ingest is batch 1.)
        st.with_backend(|b| b.arm_kill(1, KillPoint::AfterWalAppend));
        match st.ingest(&rows(25), u64::MAX, 2, &untraced()) {
            IngestOutcome::Ok { summary, .. } => assert_eq!(summary.rows_ingested, 25),
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert_eq!(st.reader().rows_processed(), 175);

        // Restart from disk: every acknowledged row is visible.
        drop(st);
        let recovered = DurableEngine::<ConcurrentEngine>::recover(&dir).unwrap();
        assert_eq!(recovered.engine().rows_processed(), 175);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real threads + temp dirs + wall clock
    fn poisoned_coordinator_degrades_to_read_only() {
        sketches_streamdb::silence_injected_panics();
        let engine = ConcurrentEngine::new(spec(), 2).unwrap();
        let st = state(Backend::Volatile(engine));
        st.ingest(&rows(90), u64::MAX, 0, &untraced());
        st.with_backend(|b| b.inject_coordinator_panic());
        // The kill is asynchronous; ingest until the poison lands.
        let mut degraded = false;
        for _ in 0..200 {
            match st.ingest(&rows(3), u64::MAX, 1, &untraced()) {
                IngestOutcome::Degraded(_) => {
                    degraded = true;
                    break;
                }
                IngestOutcome::Ok { .. } | IngestOutcome::Unavailable { .. } => {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                IngestOutcome::Rejected(e) => panic!("unexpected rejection: {e}"),
            }
        }
        assert!(degraded, "coordinator kill never degraded the server");
        assert!(st.degraded.load(Ordering::Acquire));
        // Reads still serve the last published epoch.
        assert!(st.reader().rows_processed() >= 90);
        // Later ingests short-circuit to Degraded.
        assert!(matches!(
            st.ingest(&rows(3), u64::MAX, 2, &untraced()),
            IngestOutcome::Degraded(_)
        ));
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real threads + temp dirs + wall clock
    fn deadline_bounds_retry_sleeps() {
        let dir = temp_dir("deadline");
        let _ = std::fs::remove_dir_all(&dir);
        let engine = DurableEngine::create(
            &dir,
            ConcurrentEngine::new(spec(), 2).unwrap(),
            CheckpointPolicy::new(10_000, u64::MAX).unwrap(),
        )
        .unwrap();
        let st = state(Backend::durable(engine, &dir));
        // Deadline already expired: a transient failure must give up
        // without sleeping instead of burning the full retry budget.
        st.with_backend(|b| b.arm_kill(0, KillPoint::BeforeWalAppend));
        match st.ingest(&rows(10), 0, 0, &untraced()) {
            IngestOutcome::Unavailable { attempts, .. } => assert_eq!(attempts, 1),
            other => panic!("unexpected outcome: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
