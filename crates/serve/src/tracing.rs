//! The server's tracing front end: per-request [`TraceContext`] minting,
//! deterministic head sampling, and two bounded sinks of completed
//! traces (a general ring plus a slow-request ring).
//!
//! Retention is split from collection: when tracing is on (any policy
//! but [`Sampling::Off`]) every request collects its span tree, the head
//! decision only chooses whether the finished trace lands in the main
//! sink. A request whose end-to-end time crosses the slow threshold is
//! *force-retained* into the slow sink regardless of the head decision —
//! slowness is only known at completion, and the slow outliers are
//! exactly the traces worth keeping.

use std::time::Duration;

use parking_lot::Mutex;
use sketches_obs::{IdGen, Sampler, Sampling, Stage, Trace, TraceContext, TraceSink};

/// Tracing knobs for [`crate::ServerConfig`].
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Head-sampling policy for the main sink (slow requests are always
    /// retained in the slow sink while tracing is on).
    pub sampling: Sampling,
    /// Main sink capacity (completed traces, oldest evicted).
    pub capacity: usize,
    /// Slow sink capacity.
    pub slow_capacity: usize,
    /// End-to-end duration at or above which a request counts as slow.
    pub slow_threshold: Duration,
    /// Seed for the trace/span identifier generator (fixed seed ⇒
    /// byte-identical identifiers run over run).
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            sampling: Sampling::SampleEvery(64),
            capacity: 256,
            slow_capacity: 64,
            slow_threshold: Duration::from_millis(250),
            seed: 0x7ACE_5EED,
        }
    }
}

/// One request's tracing state: the context threaded through the stack
/// plus the head decision made at admission.
#[derive(Debug, Default)]
pub struct RequestTrace {
    /// The span-collecting context (disabled when tracing is off).
    pub ctx: TraceContext,
    retain: bool,
}

impl RequestTrace {
    /// A no-op trace for paths that never parsed a request.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }
}

/// Mints request traces and retains completed ones in bounded rings.
#[derive(Debug)]
pub struct Tracer {
    sampling: Sampling,
    ids: Mutex<IdGen>,
    sampler: Sampler,
    sink: TraceSink,
    slow: TraceSink,
    slow_threshold_nanos: u64,
}

impl Tracer {
    /// Builds a tracer; all ring capacity is allocated up front.
    #[must_use]
    pub fn new(config: &TraceConfig) -> Self {
        Self {
            sampling: config.sampling,
            ids: Mutex::new(IdGen::new(config.seed)),
            sampler: Sampler::new(config.sampling),
            sink: TraceSink::new(config.capacity),
            slow: TraceSink::new(config.slow_capacity),
            slow_threshold_nanos: config.slow_threshold.as_nanos() as u64,
        }
    }

    /// Starts a trace for one request. `traceparent` is the incoming
    /// header, if any: a well-formed one continues the caller's trace
    /// (its span becomes the remote parent); a malformed or absent one
    /// starts a fresh trace. With [`Sampling::Off`] the returned context
    /// is disabled and collects nothing.
    #[must_use]
    pub fn begin(&self, traceparent: Option<&str>) -> RequestTrace {
        if self.sampling == Sampling::Off {
            return RequestTrace::disabled();
        }
        let retain = self.sampler.decide();
        let remote = traceparent.and_then(TraceContext::parse_traceparent);
        let (trace_id, remote_parent, root_span) = {
            let mut ids = self.ids.lock();
            match remote {
                Some((tid, parent)) => (tid, Some(parent), ids.span_id()),
                None => (ids.trace_id(), None, ids.span_id()),
            }
        };
        RequestTrace {
            ctx: TraceContext::root(trace_id, root_span, remote_parent),
            retain,
        }
    }

    /// Closes the request's root span and retains the finished trace:
    /// into the main sink when head-sampled, into the slow sink when the
    /// end-to-end time crossed the slow threshold (either, both, or
    /// neither). No-op for a disabled trace.
    pub fn finish(
        &self,
        request: &RequestTrace,
        start_nanos: u64,
        end_nanos: u64,
        attrs: Vec<(String, String)>,
    ) {
        let Some(trace) = request
            .ctx
            .finish(Stage::Request, start_nanos, end_nanos, attrs)
        else {
            return;
        };
        let is_slow = trace.duration_nanos() >= self.slow_threshold_nanos;
        match (request.retain, is_slow) {
            (true, true) => {
                self.slow.push(trace.clone());
                self.sink.push(trace);
            }
            (true, false) => self.sink.push(trace),
            (false, true) => self.slow.push(trace),
            (false, false) => {}
        }
    }

    /// The configured head-sampling policy.
    #[must_use]
    pub fn sampling(&self) -> Sampling {
        self.sampling
    }

    /// The slow threshold in nanoseconds.
    #[must_use]
    pub fn slow_threshold_nanos(&self) -> u64 {
        self.slow_threshold_nanos
    }

    /// Up to `max` recently retained traces, newest first.
    #[must_use]
    pub fn recent(&self, max: usize) -> Vec<Trace> {
        self.sink.recent(max)
    }

    /// Up to `max` recently retained slow traces, newest first.
    #[must_use]
    pub fn slow_recent(&self, max: usize) -> Vec<Trace> {
        self.slow.recent(max)
    }

    /// Main sink capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.sink.capacity()
    }

    /// Slow sink capacity.
    #[must_use]
    pub fn slow_capacity(&self) -> usize {
        self.slow.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(sampling: Sampling, slow_nanos: u64) -> TraceConfig {
        TraceConfig {
            sampling,
            capacity: 4,
            slow_capacity: 2,
            slow_threshold: Duration::from_nanos(slow_nanos),
            seed: 11,
        }
    }

    #[test]
    fn off_collects_nothing() {
        let t = Tracer::new(&config(Sampling::Off, 100));
        let rt = t.begin(None);
        assert!(!rt.ctx.is_sampled());
        t.finish(&rt, 0, 1_000, vec![]);
        assert!(t.recent(10).is_empty());
        assert!(t.slow_recent(10).is_empty());
    }

    #[test]
    fn head_sampling_gates_the_main_sink() {
        let t = Tracer::new(&config(Sampling::SampleEvery(2), u64::MAX));
        for _ in 0..4 {
            let rt = t.begin(None);
            assert!(rt.ctx.is_sampled(), "collection is on for every request");
            t.finish(&rt, 0, 10, vec![]);
        }
        // Requests 0 and 2 were head-sampled.
        assert_eq!(t.recent(10).len(), 2);
        assert!(t.slow_recent(10).is_empty());
    }

    #[test]
    fn slow_requests_are_force_retained() {
        let t = Tracer::new(&config(Sampling::SampleEvery(1_000_000), 50));
        let fast = t.begin(None); // head-sampled (seq 0)
        t.finish(&fast, 0, 10, vec![]);
        let slow = t.begin(None); // NOT head-sampled
        t.finish(&slow, 0, 90, vec![]);
        assert_eq!(t.recent(10).len(), 1, "only the head-sampled request");
        let slow_traces = t.slow_recent(10);
        assert_eq!(slow_traces.len(), 1, "slow request kept despite sampling");
        assert_eq!(slow_traces[0].duration_nanos(), 90);
    }

    #[test]
    fn traceparent_continues_the_remote_trace() {
        let t = Tracer::new(&config(Sampling::Always, u64::MAX));
        let header = "00-0123456789abcdef0123456789abcdef-00000000000000ab-01";
        let rt = t.begin(Some(header));
        assert_eq!(
            rt.ctx.trace_id().unwrap().to_string(),
            "0123456789abcdef0123456789abcdef"
        );
        t.finish(&rt, 0, 10, vec![]);
        let traces = t.recent(1);
        assert_eq!(traces[0].root().parent.map(|p| p.0), Some(0xab));

        // Malformed header: fresh ids, no remote parent.
        let rt = t.begin(Some("garbage"));
        t.finish(&rt, 0, 10, vec![]);
        assert_eq!(t.recent(1)[0].root().parent, None);
    }

    #[test]
    fn identifiers_are_deterministic_for_a_fixed_seed() {
        let ids = |seed| {
            let t = Tracer::new(&TraceConfig {
                seed,
                ..TraceConfig::default()
            });
            let rt = t.begin(None);
            (rt.ctx.trace_id().unwrap(), rt.ctx.root_span().unwrap())
        };
        assert_eq!(ids(5), ids(5));
        assert_ne!(ids(5), ids(6));
    }
}
