//! Server-side metrics: request counts by route and status, shed/retry
//! counters, in-flight gauge, and per-route latency histograms.
//!
//! Counters live in fixed-size atomic arrays indexed by a closed route
//! and status vocabulary — the request hot path never allocates, locks,
//! or formats a label; label strings are materialized only when a
//! snapshot is cut for `/metrics`.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use sketches_obs::{LatencyHistogram, MetricsSnapshot, Stage};
use sketches_streamdb::metrics::names;

/// The closed set of routes the server accounts for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /metrics`.
    Metrics,
    /// `GET /healthz`.
    Healthz,
    /// `GET /readyz`.
    Readyz,
    /// `GET /v1/groups`.
    Groups,
    /// `GET`/`POST /v1/report`.
    Report,
    /// `GET /v1/view`.
    View,
    /// `POST /v1/ingest`.
    Ingest,
    /// `GET /v1/debug/traces`.
    DebugTraces,
    /// `GET /v1/debug/slow`.
    DebugSlow,
    /// Admission-layer outcomes (shed, drain-refusal) that never reach a
    /// worker, so the route is not yet known.
    Accept,
    /// Anything else (404s, parse failures).
    Other,
}

const ROUTES: [Route; 11] = [
    Route::Metrics,
    Route::Healthz,
    Route::Readyz,
    Route::Groups,
    Route::Report,
    Route::View,
    Route::Ingest,
    Route::DebugTraces,
    Route::DebugSlow,
    Route::Accept,
    Route::Other,
];

impl Route {
    fn index(self) -> usize {
        match self {
            Route::Metrics => 0,
            Route::Healthz => 1,
            Route::Readyz => 2,
            Route::Groups => 3,
            Route::Report => 4,
            Route::View => 5,
            Route::Ingest => 6,
            Route::DebugTraces => 7,
            Route::DebugSlow => 8,
            Route::Accept => 9,
            Route::Other => 10,
        }
    }

    /// The stable lowercase label (metric label value and trace attr).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Route::Metrics => "metrics",
            Route::Healthz => "healthz",
            Route::Readyz => "readyz",
            Route::Groups => "groups",
            Route::Report => "report",
            Route::View => "view",
            Route::Ingest => "ingest",
            Route::DebugTraces => "debug_traces",
            Route::DebugSlow => "debug_slow",
            Route::Accept => "accept",
            Route::Other => "other",
        }
    }
}

/// The closed set of status codes the server emits (plus an overflow
/// bucket).
const STATUSES: [u16; 9] = [200, 400, 404, 405, 413, 429, 500, 503, 504];

fn status_index(status: u16) -> usize {
    STATUSES
        .iter()
        .position(|&s| s == status)
        .unwrap_or(STATUSES.len())
}

fn status_label(idx: usize) -> String {
    STATUSES
        .get(idx)
        .map_or_else(|| "other".to_string(), u16::to_string)
}

/// Lock-free counters plus per-route latency histograms for the server.
#[derive(Debug)]
pub struct ServerMetrics {
    // [route][status] request completions.
    requests: [[AtomicU64; STATUSES.len() + 1]; ROUTES.len()],
    shed_total: AtomicU64,
    retry_attempts_total: AtomicU64,
    deadline_exceeded_total: AtomicU64,
    inflight: AtomicU64,
    latency: [Mutex<LatencyHistogram>; ROUTES.len()],
    // The server-side slice of the stage_latency family (parse / handle /
    // write); the engine records the downstream stages.
    stage_parse: Mutex<LatencyHistogram>,
    stage_handle: Mutex<LatencyHistogram>,
    stage_write: Mutex<LatencyHistogram>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Creates zeroed metrics.
    #[must_use]
    pub fn new() -> Self {
        Self {
            requests: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            shed_total: AtomicU64::new(0),
            retry_attempts_total: AtomicU64::new(0),
            deadline_exceeded_total: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            latency: std::array::from_fn(|_| Mutex::new(LatencyHistogram::new())),
            stage_parse: Mutex::new(LatencyHistogram::new()),
            stage_handle: Mutex::new(LatencyHistogram::new()),
            stage_write: Mutex::new(LatencyHistogram::new()),
        }
    }

    /// Records one server-side stage duration ([`Stage::Parse`],
    /// [`Stage::Handle`], or [`Stage::Write`]; other stages belong to
    /// the engine and are ignored here).
    pub fn record_stage(&self, stage: Stage, elapsed_nanos: u64) {
        let hist = match stage {
            Stage::Parse => &self.stage_parse,
            Stage::Handle => &self.stage_handle,
            Stage::Write => &self.stage_write,
            _ => return,
        };
        hist.lock().record_nanos(elapsed_nanos);
    }

    /// Records one completed request: route, status, and wall time.
    pub fn record(&self, route: Route, status: u16, elapsed_nanos: u64) {
        self.requests[route.index()][status_index(status)].fetch_add(1, Ordering::Relaxed);
        if status == 504 {
            self.deadline_exceeded_total.fetch_add(1, Ordering::Relaxed);
        }
        self.latency[route.index()]
            .lock()
            .record_nanos(elapsed_nanos);
    }

    /// Records one load-shed (429/503 at admission).
    pub fn record_shed(&self) {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one ingest retry attempt.
    pub fn record_retry(&self) {
        self.retry_attempts_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Total load-sheds so far.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// Total ingest retry attempts so far.
    #[must_use]
    pub fn retry_attempts_total(&self) -> u64 {
        self.retry_attempts_total.load(Ordering::Relaxed)
    }

    /// Completions recorded for `(route, status)`.
    #[must_use]
    pub fn requests_for(&self, route: Route, status: u16) -> u64 {
        self.requests[route.index()][status_index(status)].load(Ordering::Relaxed)
    }

    /// Marks a connection entering service; pairs with
    /// [`ServerMetrics::exit`].
    pub fn enter(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a connection leaving service.
    pub fn exit(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections currently in service.
    #[must_use]
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Cuts a labeled snapshot (`requests_total{route=…,status=…}`,
    /// per-route latency histograms, shed/retry/in-flight).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.set_help(
            "serve_requests_total",
            "Completed requests by route and status code",
        );
        snap.set_help(
            "serve_shed_total",
            "Connections refused by admission control",
        );
        snap.set_help(
            "serve_retry_attempts_total",
            "Ingest retry attempts after transient durability failures",
        );
        snap.set_help(
            "serve_deadline_exceeded_total",
            "Requests that exhausted their total time budget (HTTP 504)",
        );
        snap.set_help("serve_inflight", "Connections currently in service");
        snap.set_help(
            "serve_request_latency_nanos",
            "Request wall time by route, nanoseconds",
        );
        for route in ROUTES {
            for (si, cell) in self.requests[route.index()].iter().enumerate() {
                let n = cell.load(Ordering::Relaxed);
                if n > 0 {
                    snap.add_counter(
                        &format!(
                            "serve_requests_total{{route=\"{}\",status=\"{}\"}}",
                            route.label(),
                            status_label(si)
                        ),
                        n,
                    );
                }
            }
            let hist = self.latency[route.index()].lock().snapshot();
            if hist.count() > 0 {
                snap.put_histogram(
                    &format!("serve_request_latency_nanos{{route=\"{}\"}}", route.label()),
                    hist,
                );
            }
        }
        for (stage, hist) in [
            (Stage::Parse, &self.stage_parse),
            (Stage::Handle, &self.stage_handle),
            (Stage::Write, &self.stage_write),
        ] {
            let h = hist.lock().snapshot();
            if h.count() > 0 {
                snap.put_histogram(&names::stage_latency(stage), h);
            }
        }
        snap.add_counter("serve_shed_total", self.shed_total());
        snap.add_counter("serve_retry_attempts_total", self.retry_attempts_total());
        snap.add_counter(
            "serve_deadline_exceeded_total",
            self.deadline_exceeded_total.load(Ordering::Relaxed),
        );
        snap.add_gauge("serve_inflight", self.inflight());
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_route_and_status() {
        let m = ServerMetrics::new();
        m.record(Route::Report, 200, 1_000);
        m.record(Route::Report, 200, 2_000);
        m.record(Route::Ingest, 503, 500);
        m.record(Route::Accept, 429, 100);
        m.record(Route::Other, 599, 100); // overflow bucket
        assert_eq!(m.requests_for(Route::Report, 200), 2);
        assert_eq!(m.requests_for(Route::Ingest, 503), 1);
        assert_eq!(m.requests_for(Route::Other, 599), 1);
        assert_eq!(m.requests_for(Route::Other, 598), 1); // same bucket
    }

    #[test]
    fn snapshot_emits_labeled_series_and_help() {
        let m = ServerMetrics::new();
        m.record(Route::Ingest, 200, 5_000);
        m.record_shed();
        m.record_retry();
        m.enter();
        let snap = m.snapshot();
        assert_eq!(
            snap.counters["serve_requests_total{route=\"ingest\",status=\"200\"}"],
            1
        );
        assert_eq!(snap.counters["serve_shed_total"], 1);
        assert_eq!(snap.counters["serve_retry_attempts_total"], 1);
        assert_eq!(snap.gauges["serve_inflight"], 1);
        assert_eq!(
            snap.histograms["serve_request_latency_nanos{route=\"ingest\"}"].count(),
            1
        );
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE serve_requests_total counter"));
        assert!(text.contains("serve_requests_total{route=\"ingest\",status=\"200\"} 1"));
        assert!(text.contains("# HELP serve_shed_total Connections refused by admission control"));
    }

    #[test]
    fn deadline_counter_tracks_504s() {
        let m = ServerMetrics::new();
        m.record(Route::Ingest, 504, 10);
        m.record(Route::Report, 504, 10);
        let snap = m.snapshot();
        assert_eq!(snap.counters["serve_deadline_exceeded_total"], 2);
    }

    #[test]
    fn inflight_pairs() {
        let m = ServerMetrics::new();
        m.enter();
        m.enter();
        m.exit();
        assert_eq!(m.inflight(), 1);
    }
}
