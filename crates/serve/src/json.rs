//! A minimal JSON value model, parser, and writer.
//!
//! The offline serde shim has no derive support, so the serving layer
//! carries its own hand-rolled JSON — small, strict, and typed: integers
//! stay integers ([`Json::U64`]/[`Json::I64`]) so group keys round-trip
//! exactly into the engine's [`Value`] model; only decimals and
//! exponents become [`Json::F64`].

use sketches_streamdb::Value;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal.
    U64(u64),
    /// A negative integer literal.
    I64(i64),
    /// A decimal or exponent literal (or an integer too big for 64 bits).
    F64(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

/// Where and why a JSON parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    ///
    /// # Errors
    /// A [`JsonError`] locating the first malformed byte.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Looks up a key on an object (`None` on other kinds or a missing
    /// key).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` on other kinds).
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// A numeric value as `f64` (`None` on non-numbers).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::U64(v) => Some(*v as f64),
            Self::I64(v) => Some(*v as f64),
            Self::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// A non-negative integer value (`None` on non-integers).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload (`None` on non-strings).
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Converts a JSON scalar into an engine [`Value`]. Integers map to
    /// `U64`/`I64` exactly; decimals map to `F64`; strings to `Str`.
    ///
    /// # Errors
    /// A message naming the unsupported kind (`null`, booleans, and
    /// nested containers are not row values).
    pub fn to_value(&self) -> Result<Value, String> {
        match self {
            Self::U64(v) => Ok(Value::U64(*v)),
            Self::I64(v) => Ok(Value::I64(*v)),
            Self::F64(v) => Ok(Value::F64(*v)),
            Self::Str(s) => Ok(Value::Str(s.clone())),
            Self::Null => Err("null is not a row value".to_string()),
            Self::Bool(_) => Err("booleans are not row values".to_string()),
            Self::Arr(_) | Self::Obj(_) => Err("nested containers are not row values".to_string()),
        }
    }

    /// Renders the value as compact JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Self::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Self::F64(v) => out.push_str(&render_f64(*v)),
            Self::Str(s) => out.push_str(&escape(s)),
            Self::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Self::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Converts an engine [`Value`] into JSON (strings escape, numbers stay
/// typed).
#[must_use]
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::U64(n) => Json::U64(*n),
        Value::I64(n) => Json::I64(*n),
        Value::F64(n) => Json::F64(*n),
        Value::Str(s) => Json::Str(s.clone()),
    }
}

/// Renders an `f64` as a JSON number (`null` for NaN/infinity, which
/// JSON cannot carry).
#[must_use]
pub fn render_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// JSON-escapes and quotes a string.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Nesting depth cap: requests are flat (`rows` of scalars), so a deep
/// document is hostile input, not a use case.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document too deeply nested"));
        }
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of document")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume `[`
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `]` in array"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume `{`
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `}` in object"));
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if !self.eat(b'"') {
            return Err(self.err("expected string"));
        }
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs are rejected rather than
                            // combined: row values are telemetry keys,
                            // not rich text.
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("unpaired surrogate escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    if let Ok(chunk) = std::str::from_utf8(&rest[..len.min(rest.len())]) {
                        out.push_str(chunk);
                    }
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let negative = self.eat(b'-');
        let mut integral = true;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        if integral {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("malformed number"))
    }
}

/// Length of the UTF-8 sequence starting with `first` (1 for malformed
/// leads, which cannot occur in `&str` input).
fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_with_exact_integer_types() {
        assert_eq!(Json::parse("18446744073709551615").unwrap(), {
            Json::U64(u64::MAX)
        });
        assert_eq!(Json::parse("-42").unwrap(), Json::I64(-42));
        assert_eq!(Json::parse("2.5").unwrap(), Json::F64(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1_000.0));
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(
            Json::parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".to_string())
        );
    }

    #[test]
    fn containers_parse_and_render() {
        let doc = "{\"rows\":[[1,\"x\",2.5],[2,\"y\",3.5]],\"n\":2}";
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("n"), Some(&Json::U64(2)));
        let rows = v.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(v.render(), doc);
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"\\x\"", "nul", "[1]]",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.message.is_empty(), "{bad} gave {err:?}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).unwrap_err().message.contains("nested"));
    }

    #[test]
    fn value_conversion_is_exact() {
        assert_eq!(Json::U64(7).to_value().unwrap(), Value::U64(7));
        assert_eq!(Json::I64(-7).to_value().unwrap(), Value::I64(-7));
        assert_eq!(Json::F64(1.5).to_value().unwrap(), Value::F64(1.5));
        assert_eq!(
            Json::Str("k".into()).to_value().unwrap(),
            Value::Str("k".into())
        );
        assert!(Json::Null.to_value().is_err());
        assert!(Json::Arr(vec![]).to_value().is_err());
        assert_eq!(value_to_json(&Value::U64(9)), Json::U64(9));
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(1.5).render(), "1.5");
    }
}
