//! A small, strict HTTP/1.1 subset over generic `Read`/`Write` streams.
//!
//! The server speaks one-request-per-connection (`Connection: close`),
//! which keeps worker accounting exact: one connection = one request =
//! one worker slot. Parsing is written against [`std::io::Read`] rather
//! than sockets so the protocol logic is unit-testable in memory (and
//! under Miri, where sockets don't exist).

use std::io::{Read, Write};

/// Hard caps on request size; oversize input is a typed 413, not an
/// allocation.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes for the request line plus all headers.
    pub max_head_bytes: usize,
    /// Maximum bytes for the body (`Content-Length` above this is
    /// rejected before reading).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// A parsed request: method, percent-decoded path, query pairs, headers
/// (names lowercased), body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercase (`GET`, `POST`, …).
    pub method: String,
    /// Percent-decoded path, query string stripped.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Headers as `(lowercased-name, value)` pairs, in order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (lowercase), if any.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first query parameter named `name`, if any.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every query parameter named `name`, in request order (the batched
    /// `/v1/report` form repeats `key=`).
    #[must_use]
    pub fn query_params(&self, name: &str) -> Vec<&str> {
        self.query
            .iter()
            .filter(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a full request.
    Closed,
    /// A socket read timed out (the per-request deadline machinery maps
    /// this to a typed 504).
    TimedOut,
    /// The head or body exceeded [`Limits`].
    TooLarge,
    /// The bytes were not valid HTTP.
    Malformed(String),
    /// Any other I/O failure.
    Io(std::io::Error),
}

/// Reads and parses one request from `stream`.
///
/// # Errors
/// A [`ReadError`] classifying the failure; `TimedOut` is split out so
/// deadline violations map to a typed 504 rather than a generic 400.
pub fn read_request(stream: &mut impl Read, limits: &Limits) -> Result<Request, ReadError> {
    let head = read_head(stream, limits)?;
    let text = String::from_utf8(head).map_err(|_| malformed("head is not UTF-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or_else(|| malformed("empty head"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| malformed("missing method"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or_else(|| malformed("missing target"))?;
    match parts.next() {
        Some("HTTP/1.1" | "HTTP/1.0") => {}
        _ => return Err(malformed("missing or unsupported HTTP version")),
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path).ok_or_else(|| malformed("bad percent-encoding in path"))?;
    let mut query = Vec::new();
    if let Some(q) = raw_query {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            let k = percent_decode(k).ok_or_else(|| malformed("bad percent-encoding in query"))?;
            let v = percent_decode(v).ok_or_else(|| malformed("bad percent-encoding in query"))?;
            query.push((k, v));
        }
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| malformed("header line without colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| malformed("unparseable Content-Length"))?
        .unwrap_or(0);
    if content_length > limits.max_body_bytes {
        return Err(ReadError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    read_exact_classified(stream, &mut body)?;

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// A response ready to serialize: status, headers, body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(&'static str, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A binary response (`application/octet-stream`) — the slim
    /// query-view envelope of `/v1/view`.
    #[must_use]
    pub fn octets(status: u16, body: Vec<u8>) -> Self {
        Self {
            status,
            content_type: "application/octet-stream",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A plain-text response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A typed JSON error body: `{"error": code, "detail": detail}`.
    #[must_use]
    pub fn error(status: u16, code: &str, detail: &str) -> Self {
        Self::json(
            status,
            format!(
                "{{\"error\":{},\"detail\":{}}}",
                crate::json::escape(code),
                crate::json::escape(detail)
            ),
        )
    }

    /// Adds a `Retry-After: seconds` header (load-shed and drain
    /// responses carry one so well-behaved clients back off).
    #[must_use]
    pub fn retry_after(mut self, seconds: u64) -> Self {
        self.extra_headers
            .push(("Retry-After", seconds.to_string()));
        self
    }

    /// Adds an arbitrary extra header (e.g. `traceparent`).
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }

    /// Serializes the response with `Content-Length` and
    /// `Connection: close`.
    ///
    /// # Errors
    /// Propagates stream write failures (a vanished client is normal
    /// under shed/deadline churn; callers log and move on).
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (k, v) in &self.extra_headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The canonical reason phrase for the status codes this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

fn malformed(msg: &str) -> ReadError {
    ReadError::Malformed(msg.to_string())
}

/// Classifies an I/O error: timeouts (both the Unix `WouldBlock` and
/// Windows `TimedOut` spellings) are deadline events, everything else is
/// transport failure.
fn classify(e: std::io::Error) -> ReadError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ReadError::TimedOut,
        std::io::ErrorKind::UnexpectedEof => ReadError::Closed,
        _ => ReadError::Io(e),
    }
}

fn read_exact_classified(stream: &mut impl Read, buf: &mut [u8]) -> Result<(), ReadError> {
    stream.read_exact(buf).map_err(classify)
}

/// Reads bytes until the `\r\n\r\n` head terminator, capped by
/// `limits.max_head_bytes`.
fn read_head(stream: &mut impl Read, limits: &Limits) -> Result<Vec<u8>, ReadError> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    loop {
        let n = stream.read(&mut byte).map_err(classify)?;
        if n == 0 {
            return Err(if head.is_empty() {
                ReadError::Closed
            } else {
                malformed("connection closed mid-head")
            });
        }
        head.push(byte[0]);
        if head.len() > limits.max_head_bytes {
            return Err(ReadError::TooLarge);
        }
        if head.ends_with(b"\r\n\r\n") {
            head.truncate(head.len() - 4);
            return Ok(head);
        }
    }
}

/// Decodes `%XX` sequences and `+` (as space). Returns `None` on a
/// malformed or non-UTF-8 encoding.
#[must_use]
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex(*bytes.get(i + 1)?)?;
                let lo = hex(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(
            &mut Cursor::new(raw.as_bytes().to_vec()),
            &Limits::default(),
        )
    }

    #[test]
    fn parses_get_with_query() {
        let req =
            parse("GET /v1/report?key=%5B1%2C%22a+b%22%5D&limit=5 HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/report");
        assert_eq!(req.query_param("key"), Some("[1,\"a b\"]"));
        assert_eq!(req.query_param("limit"), Some("5"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            "POST /v1/ingest HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 12\r\n\r\n{\"rows\":[[]]}",
        );
        // 12 bytes of a 13-byte body: short read is a typed error.
        assert!(matches!(req, Ok(ref r) if r.body.len() == 12) || req.is_err());
        let req =
            parse("POST /v1/ingest HTTP/1.1\r\nContent-Length: 13\r\n\r\n{\"rows\":[[]]}").unwrap();
        assert_eq!(req.body, b"{\"rows\":[[]]}");
    }

    #[test]
    fn malformed_requests_are_typed() {
        assert!(matches!(
            parse("BOGUS\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/2\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(parse(""), Err(ReadError::Closed)));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn oversize_head_and_body_are_shed_as_too_large() {
        let limits = Limits {
            max_head_bytes: 64,
            max_body_bytes: 8,
        };
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(100));
        assert!(matches!(
            read_request(&mut Cursor::new(long.into_bytes()), &limits),
            Err(ReadError::TooLarge)
        ));
        let big = "POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789".to_string();
        assert!(matches!(
            read_request(&mut Cursor::new(big.into_bytes()), &limits),
            Err(ReadError::TooLarge)
        ));
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));

        let mut out = Vec::new();
        Response::error(429, "overloaded", "queue full")
            .retry_after(1)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("\"error\":\"overloaded\""));
    }

    #[test]
    fn percent_decoding_rejects_malformed() {
        assert_eq!(percent_decode("a%20b+c"), Some("a b c".to_string()));
        assert_eq!(percent_decode("%zz"), None);
        assert_eq!(percent_decode("%2"), None);
    }
}
