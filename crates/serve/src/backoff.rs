//! Seeded, jittered exponential backoff for transient ingest failures.
//!
//! Retries are deterministic: the delay for attempt `k` of request `r`
//! is a pure function of `(seed, r, k)`, so the overload/fault drill
//! (E26) replays byte-for-byte. Jitter uses the "equal jitter" scheme —
//! delay drawn uniformly from `[backoff/2, backoff]` — which keeps a
//! floor under the spacing (no thundering herd at zero) while still
//! decorrelating concurrent retriers.

use std::time::Duration;

/// How transient failures are retried.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum total attempts (first try included). `1` disables retry.
    pub max_attempts: u32,
    /// Backoff before the first retry, nanoseconds.
    pub base_nanos: u64,
    /// Upper bound on any single backoff, nanoseconds.
    pub cap_nanos: u64,
    /// Seed decorrelating jitter across servers while keeping each run
    /// reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_nanos: 2_000_000,  // 2 ms
            cap_nanos: 200_000_000, // 200 ms
            seed: 0xB0FF_B0FF,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (1-based: `1` is the
    /// delay between the first failure and the second try) of the
    /// request identified by `token`. Deterministic in
    /// `(seed, token, attempt)`.
    #[must_use]
    pub fn delay(&self, token: u64, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self.base_nanos.saturating_mul(1u64 << exp);
        let capped = raw.min(self.cap_nanos).max(1);
        // Equal jitter: uniform in [capped/2, capped].
        let half = capped / 2;
        let jitter =
            splitmix64(self.seed ^ token.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(attempt))
                % (capped - half + 1);
        Duration::from_nanos(half + jitter)
    }

    /// Whether another attempt is allowed after `attempts_so_far`
    /// completed attempts.
    #[must_use]
    pub fn should_retry(&self, attempts_so_far: u32) -> bool {
        attempts_so_far < self.max_attempts
    }
}

/// SplitMix64 finalizer: a strong, dependency-free 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for token in 0..8u64 {
            for attempt in 1..=6u32 {
                let d1 = p.delay(token, attempt);
                let d2 = p.delay(token, attempt);
                assert_eq!(d1, d2, "same (seed, token, attempt) must agree");
                let exp = attempt - 1;
                let raw = p.base_nanos.saturating_mul(1u64 << exp).min(p.cap_nanos);
                let nanos = d1.as_nanos() as u64;
                assert!(nanos >= raw / 2, "jitter floor: {nanos} < {}", raw / 2);
                assert!(nanos <= raw, "jitter ceiling: {nanos} > {raw}");
                assert!(nanos <= p.cap_nanos);
            }
        }
    }

    #[test]
    fn delays_grow_then_saturate_at_cap() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_nanos: 1_000,
            cap_nanos: 8_000,
            seed: 7,
        };
        // By attempt 4 the raw backoff (8000) hits the cap; later attempts
        // stay within [cap/2, cap].
        for attempt in 4..=9 {
            let nanos = p.delay(42, attempt).as_nanos() as u64;
            assert!(
                (4_000..=8_000).contains(&nanos),
                "attempt {attempt}: {nanos}"
            );
        }
        // Huge attempt numbers must not overflow.
        let nanos = p.delay(42, u32::MAX).as_nanos() as u64;
        assert!(nanos <= 8_000);
    }

    #[test]
    fn different_tokens_decorrelate() {
        let p = RetryPolicy::default();
        let delays: Vec<u64> = (0..32u64)
            .map(|t| p.delay(t, 3).as_nanos() as u64)
            .collect();
        let distinct: std::collections::BTreeSet<_> = delays.iter().collect();
        assert!(
            distinct.len() > 16,
            "jitter should spread tokens: {distinct:?}"
        );
    }

    #[test]
    fn should_retry_respects_budget() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        assert!(p.should_retry(1));
        assert!(p.should_retry(2));
        assert!(!p.should_retry(3));
        let one_shot = RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        };
        assert!(!one_shot.should_retry(1));
    }
}
