//! The trait vocabulary implemented by every sketch in the workspace.

use crate::error::SketchResult;

/// A structure that can absorb one stream item at a time.
///
/// `T: ?Sized` so that sketches over strings can be updated with `&str`
/// directly.
pub trait Update<T: ?Sized> {
    /// Absorbs a single occurrence of `item`.
    fn update(&mut self, item: &T);

    /// Absorbs an iterator of items. Sketches with cheaper batched paths may
    /// override this.
    fn extend_from<'a, I>(&mut self, items: I)
    where
        I: IntoIterator<Item = &'a T>,
        T: 'a,
    {
        for item in items {
            self.update(item);
        }
    }

    /// Absorbs a contiguous batch of items — the entry point batch-oriented
    /// ingest layers (e.g. the sharded GROUP BY engine) drive.
    ///
    /// **State identity:** after `update_slice(items)` the sketch's
    /// observable state — every estimate *and* every serialized byte — must
    /// be identical to what `items.iter().for_each(|i| sketch.update(i))`
    /// would have produced. Overrides may only amortize work (bulk register
    /// writes, sorted inserts), never change the resulting state; the
    /// KLL/HLL/HLL++ overrides pin this with byte-equality tests. An empty
    /// slice is therefore always a no-op.
    fn update_slice(&mut self, items: &[T])
    where
        T: Sized,
    {
        for item in items {
            self.update(item);
        }
    }
}

/// The read/write split of a two-stage sketch: a fat update-optimized
/// structure that can produce a **slim query-side view** of itself.
///
/// The view is the half of the sketch worth *moving*: implementors
/// guarantee it is cheap to clone, cheap to serialize, and mergeable with
/// views cut from sketches over disjoint substreams — so epoch
/// publication, cross-shard merges, and wire responses can ship the view
/// while the fat side stays put behind the write path. The motivating
/// instance is the SF-sketch (Yang et al.), whose slim side is both
/// smaller *and* more accurate at query time than a same-size CM sketch.
///
/// `query_view` must be read-only: cutting a view never mutates the fat
/// side, so it is safe to call concurrently with queries (but not with
/// updates — the usual `&self` aliasing rules apply).
pub trait QueryView {
    /// The slim query-side summary. `Clone` is required (and expected to
    /// be cheap — the view should be a small fraction of the fat state).
    type View: Clone;

    /// Cuts the current query-side view of this sketch.
    fn query_view(&self) -> Self::View;
}

/// A mergeable summary: two sketches built over disjoint substreams can be
/// combined into a sketch of the concatenated stream.
///
/// This is the "mergeable summaries" contract of Agarwal et al. (PODS 2012):
/// merging must commute with stream splitting, so sketches can be combined
/// in any tree shape across a distributed system.
pub trait MergeSketch: Sized {
    /// Merges `other` into `self`.
    ///
    /// # Errors
    /// Returns [`crate::SketchError::Incompatible`] when the two sketches
    /// have different shapes, seeds, or scale parameters.
    fn merge(&mut self, other: &Self) -> SketchResult<()>;

    /// Merges a collection of sketches into one.
    ///
    /// # Errors
    /// Propagates the first incompatibility; returns `None`-like error only
    /// through an empty iterator, which yields `None`.
    fn merge_all<I: IntoIterator<Item = Self>>(iter: I) -> SketchResult<Option<Self>> {
        let mut iter = iter.into_iter();
        let Some(mut acc) = iter.next() else {
            return Ok(None);
        };
        for s in iter {
            acc.merge(&s)?;
        }
        Ok(Some(acc))
    }
}

/// Reports heap space consumed, so experiments can trade accuracy against
/// bytes.
pub trait SpaceUsage {
    /// Approximate heap bytes currently held (excluding `size_of::<Self>()`
    /// unless noted by the implementation).
    fn space_bytes(&self) -> usize;
}

/// Resets a sketch to its freshly-constructed (empty-stream) state while
/// keeping its parameters and random seeds.
pub trait Clear {
    /// Clears all absorbed data.
    fn clear(&mut self);
}

/// Query side of count-distinct sketches (`F0` estimation).
pub trait CardinalityEstimator {
    /// Estimated number of distinct items observed.
    fn estimate(&self) -> f64;
}

/// Query side of frequency sketches (point queries on item counts).
pub trait FrequencyEstimator<T: ?Sized> {
    /// Estimated number of occurrences of `item`.
    fn estimate(&self, item: &T) -> u64;
}

/// Query side of quantile summaries over `f64` values.
pub trait QuantileSketch {
    /// Value at rank fraction `q` in `[0, 1]`, or an error on an empty
    /// sketch.
    ///
    /// # Errors
    /// Returns [`crate::SketchError::EmptySketch`] when no items were
    /// absorbed, or [`crate::SketchError::InvalidParameter`] for `q`
    /// outside `[0, 1]`.
    fn quantile(&self, q: f64) -> SketchResult<f64>;

    /// Approximate fraction of absorbed items `<= value`.
    fn rank(&self, value: f64) -> f64;

    /// Number of items absorbed.
    fn count(&self) -> u64;
}

/// Query side of approximate-membership structures.
pub trait MembershipTester<T: ?Sized> {
    /// Returns `true` if `item` *may* have been inserted; `false` means
    /// definitely not inserted.
    fn contains(&self, item: &T) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SketchError;

    /// A toy exact counter to exercise the default trait methods.
    #[derive(Default, Clone)]
    struct ToyCounter {
        n: u64,
        tag: u8,
    }

    impl Update<u64> for ToyCounter {
        fn update(&mut self, _item: &u64) {
            self.n += 1;
        }
    }

    impl MergeSketch for ToyCounter {
        fn merge(&mut self, other: &Self) -> SketchResult<()> {
            if self.tag != other.tag {
                return Err(SketchError::incompatible("tag mismatch"));
            }
            self.n += other.n;
            Ok(())
        }
    }

    #[test]
    fn extend_from_default_walks_all_items() {
        let mut c = ToyCounter::default();
        let items = [1u64, 2, 3, 4];
        c.extend_from(items.iter());
        assert_eq!(c.n, 4);
    }

    #[test]
    fn update_slice_default_walks_all_items() {
        let mut c = ToyCounter::default();
        c.update_slice(&[5u64, 6, 7]);
        assert_eq!(c.n, 3);
    }

    #[test]
    fn update_slice_default_empty_is_noop() {
        let mut c = ToyCounter::default();
        c.update_slice(&[]);
        assert_eq!(c.n, 0);
        c.update_slice(&[9u64]);
        c.update_slice(&[]);
        assert_eq!(c.n, 1);
    }

    #[test]
    fn merge_all_combines_in_order() {
        let sketches = vec![
            ToyCounter { n: 1, tag: 0 },
            ToyCounter { n: 2, tag: 0 },
            ToyCounter { n: 3, tag: 0 },
        ];
        let merged = ToyCounter::merge_all(sketches).unwrap().unwrap();
        assert_eq!(merged.n, 6);
    }

    #[test]
    fn merge_all_empty_is_none() {
        assert!(ToyCounter::merge_all(Vec::new()).unwrap().is_none());
    }

    #[test]
    fn merge_all_propagates_incompatibility() {
        let sketches = vec![ToyCounter { n: 1, tag: 0 }, ToyCounter { n: 2, tag: 1 }];
        assert!(ToyCounter::merge_all(sketches).is_err());
    }
}
