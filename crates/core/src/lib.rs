//! Trait framework and shared types for the `sketches` workspace.
//!
//! Every sketch in this workspace — cardinality estimators, frequency
//! sketches, quantile summaries, membership filters, samplers, linear-algebra
//! sketches, graph sketches — implements a small common vocabulary defined
//! here:
//!
//! * [`Update`] — absorb one stream item (the *streaming* model).
//! * [`MergeSketch`] — combine two sketches built over different substreams
//!   (the *distributed* model; "mergeable summaries").
//! * [`SpaceUsage`] — report the heap footprint, so experiments can put
//!   accuracy and space on the same axis.
//! * [`Clear`] — reset to the empty-stream state.
//! * Query-side traits: [`CardinalityEstimator`], [`FrequencyEstimator`],
//!   [`QuantileSketch`], [`MembershipTester`].
//! * [`QueryView`] — the read/write split: a fat update-side sketch cuts a
//!   slim query-side view that is cheap to clone, serialize, and merge.
//!
//! The paper this workspace reproduces (Cormode, *Gems of PODS 2023*) frames
//! a sketch as exactly this triple — a compact structure plus an update
//! routine plus a merge routine — and the traits encode that contract.
//!
//! Errors are deliberately explicit: constructing a sketch with invalid
//! parameters or merging incompatible sketches returns
//! [`SketchError`] rather than panicking, because in production
//! stream-processing systems both conditions arrive from configuration and
//! remote data, not from programmer error.

#![forbid(unsafe_code)]

pub mod codec;
pub mod error;
pub mod traits;

pub use codec::{ByteReader, ByteWriter};
pub use error::{SketchError, SketchResult};
pub use traits::{
    CardinalityEstimator, Clear, FrequencyEstimator, MembershipTester, MergeSketch, QuantileSketch,
    QueryView, SpaceUsage, Update,
};

/// Validates that a parameter is within an inclusive range, with a readable
/// error naming the parameter.
///
/// # Errors
/// Returns [`SketchError::InvalidParameter`] when out of range.
pub fn check_range<T: PartialOrd + std::fmt::Display + Copy>(
    name: &'static str,
    value: T,
    lo: T,
    hi: T,
) -> SketchResult<T> {
    if value < lo || value > hi {
        return Err(SketchError::InvalidParameter {
            name,
            reason: format!("{value} is outside [{lo}, {hi}]"),
        });
    }
    Ok(value)
}

/// Validates that a floating parameter is strictly positive and finite —
/// the common contract for rates, scales, and privacy budgets.
///
/// # Errors
/// Returns [`SketchError::InvalidParameter`] for NaN, non-positive, or
/// infinite values.
pub fn check_positive_finite(name: &'static str, value: f64) -> SketchResult<f64> {
    if value.is_nan() || value <= 0.0 || !value.is_finite() {
        return Err(SketchError::InvalidParameter {
            name,
            reason: format!("{value} must be positive and finite"),
        });
    }
    Ok(value)
}

/// Median of a mutable slice of `f64` (sorts in place; averages the two
/// middle elements for even lengths). All median-of-rows estimators in the
/// workspace share this so their even-length behaviour cannot drift.
///
/// # Panics
/// Panics on an empty slice.
#[must_use]
pub fn median_f64(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    values.sort_by(f64::total_cmp);
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

/// Median of a mutable slice of `i64` (integer mean of the two middle
/// elements for even lengths).
///
/// # Panics
/// Panics on an empty slice.
#[must_use]
pub fn median_i64(values: &mut [i64]) -> i64 {
    assert!(!values.is_empty(), "median of empty slice");
    values.sort_unstable();
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2
    }
}

/// Validates that a floating parameter is finite and strictly inside `(lo, hi)`.
///
/// # Errors
/// Returns [`SketchError::InvalidParameter`] when outside the open interval
/// or not finite.
pub fn check_open_unit(name: &'static str, value: f64, lo: f64, hi: f64) -> SketchResult<f64> {
    if !value.is_finite() || value <= lo || value >= hi {
        return Err(SketchError::InvalidParameter {
            name,
            reason: format!("{value} is outside the open interval ({lo}, {hi})"),
        });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_range_accepts_and_rejects() {
        assert_eq!(check_range("k", 5usize, 1, 10).unwrap(), 5);
        assert!(check_range("k", 0usize, 1, 10).is_err());
        assert!(check_range("k", 11usize, 1, 10).is_err());
        let err = check_range("width", 0usize, 1, 100).unwrap_err();
        assert!(err.to_string().contains("width"));
    }

    #[test]
    fn check_positive_finite_contract() {
        assert_eq!(check_positive_finite("x", 1.5).unwrap(), 1.5);
        assert!(check_positive_finite("x", 0.0).is_err());
        assert!(check_positive_finite("x", -1.0).is_err());
        assert!(check_positive_finite("x", f64::NAN).is_err());
        assert!(check_positive_finite("x", f64::INFINITY).is_err());
    }

    #[test]
    fn medians() {
        assert_eq!(median_f64(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_f64(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median_i64(&mut [3, 1, 2]), 2);
        assert_eq!(median_i64(&mut [4, 1, 2, 3]), 2);
        assert_eq!(median_f64(&mut [7.0]), 7.0);
    }

    #[test]
    fn check_open_unit_rejects_boundaries_and_nan() {
        assert!(check_open_unit("eps", 0.5, 0.0, 1.0).is_ok());
        assert!(check_open_unit("eps", 0.0, 0.0, 1.0).is_err());
        assert!(check_open_unit("eps", 1.0, 0.0, 1.0).is_err());
        assert!(check_open_unit("eps", f64::NAN, 0.0, 1.0).is_err());
        assert!(check_open_unit("eps", f64::INFINITY, 0.0, 1.0).is_err());
    }
}
