//! Bounds-checked little-endian binary codec for checkpoint state.
//!
//! Sketch crates hand-roll their serialization on top of these two types
//! (the workspace's `serde` is an offline shim without derive macros, so
//! the formats are explicit byte layouts instead). The design contract is
//! the one the fault-tolerance layer depends on:
//!
//! * **Writing is infallible** — [`ByteWriter`] appends fixed-width
//!   little-endian fields to a growable buffer.
//! * **Reading never panics** — every [`ByteReader`] accessor checks the
//!   remaining length first and returns [`SketchError::Corrupted`] on a
//!   short buffer, so arbitrary (truncated, bit-flipped, adversarial)
//!   bytes decode to a typed error, not an abort.
//! * **Length prefixes are validated before allocation** — declared
//!   element counts are checked against the bytes actually remaining
//!   ([`ByteReader::array_len`]), so a corrupted count cannot trigger a
//!   multi-gigabyte `Vec::with_capacity`.

use crate::error::{SketchError, SketchResult};

/// Appends fixed-width little-endian fields to an owned buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Read-only view of the bytes written so far.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` by bit pattern (`NaN`s and signed zeros survive
    /// the round trip exactly).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `usize` as a `u64` (the format is 64-bit on every host).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends raw bytes with **no** length prefix (the layout must make
    /// the length recoverable, e.g. from an earlier field).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u64` length prefix followed by the bytes.
    pub fn put_len_prefixed(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.put_bytes(bytes);
    }
}

/// Reads fixed-width little-endian fields from a byte slice, returning
/// [`SketchError::Corrupted`] instead of panicking on any short read.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice for reading from the start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset from the start of the buffer.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> SketchResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(SketchError::corrupted(format!(
                "truncated: {what} needs {n} bytes, {} remain at offset {}",
                self.remaining(),
                self.pos
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] if the buffer is exhausted.
    pub fn u8(&mut self) -> SketchResult<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on a short buffer.
    pub fn u16(&mut self) -> SketchResult<u16> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on a short buffer.
    pub fn u32(&mut self) -> SketchResult<u32> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on a short buffer.
    pub fn u64(&mut self) -> SketchResult<u64> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` by bit pattern.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on a short buffer.
    pub fn f64(&mut self) -> SketchResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64` and narrows it to `usize`.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on a short buffer or a value
    /// that does not fit in `usize`.
    pub fn usize(&mut self) -> SketchResult<usize> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| SketchError::corrupted(format!("count {v} exceeds usize on this host")))
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on a short buffer.
    pub fn bytes(&mut self, n: usize) -> SketchResult<&'a [u8]> {
        self.take(n, "bytes")
    }

    /// Reads a `u64`-prefixed byte run (prefix validated against the
    /// remaining length before any slice is taken).
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on a short buffer or a prefix
    /// longer than what remains.
    pub fn len_prefixed(&mut self) -> SketchResult<&'a [u8]> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(SketchError::corrupted(format!(
                "length prefix {n} exceeds the {} bytes remaining",
                self.remaining()
            )));
        }
        self.take(n, "length-prefixed run")
    }

    /// Reads an element count for an array whose elements occupy at least
    /// `min_elem_bytes` each, rejecting counts the remaining buffer cannot
    /// possibly hold. This is the guard that keeps corrupted counts from
    /// driving huge allocations.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on a short buffer or an
    /// impossible count.
    pub fn array_len(&mut self, min_elem_bytes: usize, what: &str) -> SketchResult<usize> {
        let n = self.usize()?;
        let cap = self
            .remaining()
            .checked_div(min_elem_bytes)
            .unwrap_or_else(|| self.remaining());
        if n > cap {
            return Err(SketchError::corrupted(format!(
                "{what}: declared count {n} cannot fit in the {} bytes remaining",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Consumes and returns every byte not yet read. Useful for framed
    /// formats (like the durable WAL) whose record body runs to the end of
    /// an already-length-delimited slice.
    pub fn rest(&mut self) -> &'a [u8] {
        let slice = &self.buf[self.pos..];
        self.pos = self.buf.len();
        slice
    }

    /// Asserts every byte has been consumed — decoding must account for
    /// the whole buffer, so appended garbage is detected.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] if bytes remain.
    pub fn expect_end(&self, what: &str) -> SketchResult<()> {
        if !self.is_empty() {
            return Err(SketchError::corrupted(format!(
                "{what}: {} trailing bytes after a complete decode",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_width() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_usize(42);
        w.put_len_prefixed(b"hello");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.len_prefixed().unwrap(), b"hello");
        assert!(r.is_empty());
        r.expect_end("test").unwrap();
    }

    #[test]
    fn short_reads_are_typed_errors() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert!(matches!(r.u64(), Err(SketchError::Corrupted { .. })));
        // A failed read consumes nothing.
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.u8().unwrap(), 1);
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // declares ~2^64 bytes follow
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.len_prefixed(),
            Err(SketchError::Corrupted { .. })
        ));
    }

    #[test]
    fn array_len_guards_impossible_counts() {
        let mut w = ByteWriter::new();
        w.put_u64(1_000_000);
        w.put_u64(7); // only 8 bytes of payload actually present
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.array_len(8, "slots"),
            Err(SketchError::Corrupted { .. })
        ));
        // A plausible count passes and leaves the payload readable.
        let mut w = ByteWriter::new();
        w.put_u64(1);
        w.put_u64(7);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.array_len(8, "slots").unwrap(), 1);
        assert_eq!(r.u64().unwrap(), 7);
    }

    #[test]
    fn rest_consumes_remainder() {
        let mut r = ByteReader::new(&[1, 2, 3, 4]);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.rest(), &[2, 3, 4]);
        assert!(r.is_empty());
        assert_eq!(r.rest(), &[] as &[u8]);
        r.expect_end("rest").unwrap();
    }

    #[test]
    fn trailing_bytes_detected() {
        let r = ByteReader::new(&[0u8; 4]);
        assert!(matches!(
            r.expect_end("unit"),
            Err(SketchError::Corrupted { .. })
        ));
    }
}
