//! Error types shared across the workspace.

use std::fmt;

/// Errors produced when constructing, merging, querying, or restoring
/// sketches.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard
/// arm, so future failure classes (like [`SketchError::Corrupted`], added
/// for the checkpoint/restore path) can land without breaking callers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SketchError {
    /// A constructor parameter was out of its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// Two sketches could not be merged (different shapes, seeds, or
    /// scale parameters).
    Incompatible {
        /// Human-readable explanation of the mismatch.
        reason: String,
    },
    /// A query was made that the sketch cannot answer in its current state
    /// (e.g. quantile of an empty stream).
    EmptySketch,
    /// A capacity-bounded structure (e.g. a Cuckoo filter) could not accept
    /// another item.
    CapacityExceeded {
        /// Human-readable explanation.
        reason: String,
    },
    /// Serialized state failed validation on restore: a truncated buffer,
    /// checksum mismatch, version skew, or structurally impossible field.
    /// Every corruption is *detected and typed* — decoding never panics and
    /// never silently yields wrong state.
    Corrupted {
        /// Human-readable explanation of what failed to validate.
        reason: String,
    },
    /// A filesystem operation failed (durable checkpoint store / WAL).
    /// Carries the operation context and the rendered OS error; the raw
    /// `std::io::Error` is not stored so this type stays `Clone + Eq`.
    Io {
        /// What was being attempted (e.g. `fsync wal segment`).
        context: String,
        /// The rendered underlying I/O error.
        reason: String,
    },
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            Self::Incompatible { reason } => write!(f, "incompatible sketches: {reason}"),
            Self::EmptySketch => write!(f, "sketch is empty: no estimate available"),
            Self::CapacityExceeded { reason } => write!(f, "capacity exceeded: {reason}"),
            Self::Corrupted { reason } => write!(f, "corrupted state: {reason}"),
            Self::Io { context, reason } => write!(f, "io failure while {context}: {reason}"),
        }
    }
}

impl std::error::Error for SketchError {}

/// Convenience alias used throughout the workspace.
pub type SketchResult<T> = Result<T, SketchError>;

impl SketchError {
    /// Builds an [`SketchError::Incompatible`] from a formatted reason.
    #[must_use]
    pub fn incompatible(reason: impl Into<String>) -> Self {
        Self::Incompatible {
            reason: reason.into(),
        }
    }

    /// Builds an [`SketchError::InvalidParameter`].
    #[must_use]
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        Self::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }

    /// Builds an [`SketchError::Corrupted`] from a formatted reason.
    #[must_use]
    pub fn corrupted(reason: impl Into<String>) -> Self {
        Self::Corrupted {
            reason: reason.into(),
        }
    }

    /// Builds an [`SketchError::Io`] from an operation context and the
    /// underlying `std::io::Error`.
    #[must_use]
    pub fn io(context: impl Into<String>, err: &std::io::Error) -> Self {
        Self::Io {
            context: context.into(),
            reason: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = SketchError::invalid("width", "must be positive");
        assert_eq!(e.to_string(), "invalid parameter `width`: must be positive");
        let e = SketchError::incompatible("seed mismatch");
        assert!(e.to_string().contains("seed mismatch"));
        assert!(SketchError::EmptySketch.to_string().contains("empty"));
        let e = SketchError::corrupted("checksum mismatch");
        assert!(e.to_string().contains("corrupted"));
        assert!(e.to_string().contains("checksum mismatch"));
        let e = SketchError::io("fsync wal segment", &std::io::Error::other("disk gone"));
        assert!(e.to_string().contains("fsync wal segment"), "{e}");
        assert!(e.to_string().contains("disk gone"), "{e}");
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SketchError::EmptySketch);
    }
}
