//! Sharded, thread-parallel GROUP BY ingest.
//!
//! The ISP-era systems the survey describes (§3) did not run one big
//! aggregation loop: Gigascope pushed GROUP BY state across processors by
//! *partitioning on the grouping key*, so every group lives in exactly one
//! partition and partitions never contend. [`ShardedEngine`] is that
//! design over [`SketchEngine`]:
//!
//! * N shards, each a complete [`SketchEngine`] with the same query spec
//!   and [`EngineConfig`] (identical sketch seeds);
//! * rows are routed by a deterministic hash of their grouping key, so a
//!   group's rows always land on the same shard, in stream order;
//! * during [`process_batch`](ShardedEngine::process_batch) each shard is
//!   driven by its own scoped worker thread, fed row *indices* through a
//!   bounded channel — workers borrow the caller's `&[Row]`, so nothing is
//!   cloned on the ingest path.
//!
//! # Consistency model
//!
//! While a batch is in flight, a shard's state lags the router by at most
//! `channel_depth` rows (the bounded-channel capacity) — but that window
//! is internal: `process_batch` joins every worker before returning, so
//! all public reads ([`report`](ShardedEngine::report),
//! [`flush_window`](ShardedEngine::flush_window), …) observe a fully
//! drained, quiescent engine.
//!
//! Because routing is per-group and each shard applies a group's rows in
//! stream order with the same seeds as a sequential engine, every
//! per-group report is **identical** (not merely statistically close) to
//! what a single [`SketchEngine`] fed the same rows would produce.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crossbeam::channel;
use crossbeam::thread as cb_thread;
use sketches_core::{SketchError, SketchResult};
use sketches_hash::{hash_item, mix64};

use crate::engine::{EngineConfig, SketchEngine};
use crate::fault::{
    panic_message, BatchCause, BatchError, BatchSummary, DeadLetters, FaultInjector, FaultPolicy,
    QuarantinedRow,
};
use crate::metrics::{names, EngineMetrics};
use crate::query::{AggregateResult, QuerySpec};
use crate::value::{Row, Value};

/// Seed of the shard-routing hash. Distinct from every sketch seed so the
/// placement of groups is independent of sketch randomness.
const ROUTE_SEED: u64 = 0x0005_AAED_0C0D;

/// Default bounded-channel capacity between the router and each shard
/// worker (row indices, so 8 KiB per shard at the default). Shared with
/// [`crate::concurrent::ConcurrentEngine`].
pub(crate) const DEFAULT_CHANNEL_DEPTH: usize = 1024;

/// A sharded GROUP BY engine: N [`SketchEngine`] partitions driven in
/// parallel, with per-group results identical to a single engine.
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    pub(crate) shards: Vec<SketchEngine>,
    pub(crate) spec: QuerySpec,
    pub(crate) config: EngineConfig,
    pub(crate) channel_depth: usize,
    /// Poison-row policy, mirrored into every shard.
    fault_policy: FaultPolicy,
    /// Rows the router itself quarantined (too short to project a grouping
    /// key, so never routable to a shard).
    router_dead: DeadLetters,
    /// Batch-level telemetry owned by the router. Row-level counters live
    /// in each shard; the router bumps the batch counters and latency
    /// exactly once per multi-shard batch (workers bypass the shards'
    /// own `process_batch`, so nothing double-counts).
    router_metrics: EngineMetrics,
}

/// What one shard worker did with its slice of the batch. Shared with
/// [`crate::concurrent::ConcurrentEngine`], whose long-lived workers run
/// the same supervised ingest loop.
pub(crate) struct WorkerOutcome {
    pub(crate) ingested: usize,
    pub(crate) quarantined: usize,
    /// `Some((row, cause))` if the worker failed (its shard still holds an
    /// undo log; the supervisor decides commit vs rollback globally).
    pub(crate) failure: Option<(Option<usize>, BatchCause)>,
}

impl ShardedEngine {
    /// Creates a sharded engine with default sketch parameters and channel
    /// depth.
    ///
    /// # Errors
    /// Returns an error if `num_shards == 0` or the spec/config produce
    /// invalid sketches.
    pub fn new(spec: QuerySpec, num_shards: usize) -> SketchResult<Self> {
        Self::with_config(
            spec,
            EngineConfig::default(),
            num_shards,
            DEFAULT_CHANNEL_DEPTH,
        )
    }

    /// Creates a sharded engine with explicit sketch parameters and
    /// router→worker channel capacity.
    ///
    /// # Errors
    /// Returns an error if `num_shards == 0`, `channel_depth == 0`, or the
    /// spec/config produce invalid sketches.
    pub fn with_config(
        spec: QuerySpec,
        config: EngineConfig,
        num_shards: usize,
        channel_depth: usize,
    ) -> SketchResult<Self> {
        if num_shards == 0 {
            return Err(SketchError::invalid(
                "num_shards",
                "need at least one shard",
            ));
        }
        if channel_depth == 0 {
            return Err(SketchError::invalid("channel_depth", "need capacity >= 1"));
        }
        let shards = (0..num_shards)
            .map(|_| SketchEngine::with_config(spec.clone(), config))
            .collect::<SketchResult<Vec<_>>>()?;
        Ok(Self {
            shards,
            spec,
            config,
            channel_depth,
            fault_policy: FaultPolicy::default(),
            router_dead: DeadLetters::default(),
            router_metrics: EngineMetrics::new(),
        })
    }

    /// Rebuilds a sharded engine from restored parts (checkpoint restore;
    /// the caller has already validated the shards share spec and config).
    pub(crate) fn from_restored_shards(
        shards: Vec<SketchEngine>,
        spec: QuerySpec,
        config: EngineConfig,
        channel_depth: usize,
    ) -> Self {
        Self {
            shards,
            spec,
            config,
            channel_depth,
            fault_policy: FaultPolicy::default(),
            router_dead: DeadLetters::default(),
            router_metrics: EngineMetrics::new(),
        }
    }

    /// Order-sensitive hash of a grouping-key value sequence. Shared with
    /// [`crate::concurrent::ConcurrentEngine`] so both topologies place
    /// every group on the same shard for a given shard count.
    pub(crate) fn key_hash<'a>(fields: impl Iterator<Item = &'a Value>) -> u64 {
        let mut acc = ROUTE_SEED;
        for v in fields {
            acc = mix64(acc ^ hash_item(v, ROUTE_SEED));
        }
        acc
    }

    fn shard_of_key(&self, key: &[Value]) -> usize {
        (Self::key_hash(key.iter()) % self.shards.len() as u64) as usize
    }

    /// Ingests a batch of rows, driving every shard from its own worker
    /// thread. Rows of the same group are applied in batch order.
    ///
    /// Transactional at batch granularity: on any failure — a rejected row
    /// under [`FaultPolicy::FailBatch`], an injected fault, or a worker
    /// panic (contained per worker via `catch_unwind`) — **every** shard
    /// rolls back to its pre-batch state before the error is reported, so
    /// a torn batch is never visible even though shards ingest
    /// concurrently. Under [`FaultPolicy::Quarantine`], rows too short to
    /// project a grouping key are diverted by the router itself and other
    /// poison rows by the owning shard.
    ///
    /// # Errors
    /// Returns a [`BatchError`] naming the failing row, shard, and cause;
    /// when several shards fail, the earliest failing row (then lowest
    /// shard) is reported. The engine is unchanged.
    pub fn process_batch(&mut self, rows: &[Row]) -> Result<BatchSummary, BatchError> {
        let max_field = self.spec.max_field();
        if matches!(self.fault_policy, FaultPolicy::FailBatch) {
            // The router must project grouping keys, so arity is validated
            // for the whole batch up front — nothing is ingested at all.
            if let Some(idx) = rows.iter().position(|r| r.len() <= max_field) {
                // Counted as a rollback for parity with the sequential
                // engine, which would ingest up to `idx` and roll back.
                if self.router_metrics.enabled {
                    self.router_metrics.batches_rolled_back.inc();
                }
                return Err(BatchError {
                    row: Some(idx),
                    shard: None,
                    cause: BatchCause::Row(SketchError::invalid(
                        "row",
                        "row shorter than query fields",
                    )),
                });
            }
        }
        let num = self.shards.len();
        if num == 1 {
            // One shard is exactly the sequential engine; skip the
            // thread/channel machinery (the engine supervises its own
            // rollback).
            return self.shards[0].process_batch(rows).map_err(|mut e| {
                e.shard = Some(0);
                e
            });
        }
        let start = self.router_metrics.start_batch();
        let spec = &self.spec;
        let depth = self.channel_depth;
        let shards = &mut self.shards;
        // Router-level quarantine is staged locally and committed only if
        // the batch succeeds (batch atomicity covers dead letters too).
        let mut router_quarantine: Vec<QuarantinedRow> = Vec::new();
        let scope_result = cb_thread::scope(|scope| {
            let mut senders = Vec::with_capacity(num);
            let mut handles = Vec::with_capacity(num);
            for shard in shards.iter_mut() {
                let (tx, rx) = channel::bounded::<usize>(depth);
                senders.push(tx);
                handles.push(scope.spawn(move |_| worker_ingest(shard, rows, &rx)));
            }
            for (idx, row) in rows.iter().enumerate() {
                if row.len() <= max_field {
                    // FailBatch pre-validated arity above, so reaching this
                    // branch means the policy is Quarantine.
                    router_quarantine.push(QuarantinedRow {
                        row_index: idx,
                        shard: None,
                        reason: SketchError::invalid("row", "row shorter than query fields"),
                        row: row.clone(),
                    });
                    continue;
                }
                let fields = spec.group_by.iter().map(|&i| &row[i]);
                let s = (Self::key_hash(fields) % num as u64) as usize;
                if senders[s].send(idx).is_err() {
                    // The worker hung up early — it failed. Stop feeding;
                    // the supervisor below rolls everything back.
                    break;
                }
            }
            drop(senders);
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|payload| WorkerOutcome {
                        ingested: 0,
                        quarantined: 0,
                        failure: Some((
                            None,
                            BatchCause::WorkerPanic(panic_message(payload.as_ref())),
                        )),
                    })
                })
                .collect::<Vec<WorkerOutcome>>()
        });
        let worker_results = match scope_result {
            Ok(v) => v,
            Err(payload) => {
                // The scope itself panicked (outside any worker's own
                // supervisor). Roll back whatever the workers did.
                for shard in self.shards.iter_mut() {
                    shard.rollback_batch();
                }
                if self.router_metrics.enabled {
                    self.router_metrics.batches_rolled_back.inc();
                    self.router_metrics.panics_contained.inc();
                }
                self.router_metrics.finish_batch(start);
                return Err(BatchError {
                    row: None,
                    shard: None,
                    cause: BatchCause::WorkerPanic(panic_message(payload.as_ref())),
                });
            }
        };
        let mut summary = BatchSummary::default();
        let mut failures: Vec<(usize, Option<usize>, BatchCause)> = Vec::new();
        for (i, out) in worker_results.into_iter().enumerate() {
            summary.rows_ingested += out.ingested;
            summary.rows_quarantined += out.quarantined;
            if let Some((row, cause)) = out.failure {
                failures.push((i, row, cause));
            }
        }
        let result = if failures.is_empty() {
            for shard in self.shards.iter_mut() {
                shard.commit_batch();
            }
            if self.router_metrics.enabled {
                self.router_metrics.batches_committed.inc();
                self.router_metrics
                    .rows_quarantined
                    .add(router_quarantine.len() as u64);
            }
            for q in router_quarantine {
                summary.rows_quarantined += 1;
                self.router_dead.record(q);
            }
            Ok(summary)
        } else {
            for shard in self.shards.iter_mut() {
                shard.rollback_batch();
            }
            // Deterministic report: the earliest failing row across shards
            // (failures without a row index sort last), then lowest shard.
            failures.sort_by_key(|&(shard, row, _)| (row.unwrap_or(usize::MAX), shard));
            let (shard, row, cause) = failures.swap_remove(0);
            if self.router_metrics.enabled {
                self.router_metrics.batches_rolled_back.inc();
                if matches!(cause, BatchCause::WorkerPanic(_)) {
                    self.router_metrics.panics_contained.inc();
                }
            }
            Err(BatchError {
                row,
                shard: Some(shard),
                cause,
            })
        };
        self.router_metrics.finish_batch(start);
        result
    }

    /// Reports the aggregates of one group (`None` if never seen). The
    /// group lives in exactly one shard, found by re-hashing the key.
    ///
    /// # Errors
    /// Returns an error only for internal sketch query failures.
    pub fn report(&self, key: &[Value]) -> SketchResult<Option<Vec<AggregateResult>>> {
        self.shards[self.shard_of_key(key)].report(key)
    }

    /// Finishes a tumbling window: every group's report in ascending key
    /// order — identical to [`SketchEngine::flush_window`] on the same
    /// stream (unified surface, PR 4; the listing used to be shard by
    /// shard) — and a state reset, including quarantined dead letters,
    /// which belong to the window.
    ///
    /// # Errors
    /// Propagates report errors.
    pub fn flush_window(&mut self) -> SketchResult<Vec<(Vec<Value>, Vec<AggregateResult>)>> {
        let mut out = Vec::new();
        for shard in &mut self.shards {
            out.extend(shard.flush_window()?);
        }
        // Per-shard windows are each sorted; a full sort restores the
        // global key order the sequential engine emits.
        out.sort_by(|a, b| a.0.cmp(&b.0));
        self.router_dead.clear();
        Ok(out)
    }

    /// Merges another sharded engine's state (distributed GROUP BY over
    /// sharded nodes). Shard counts must match: routing places each group
    /// by `hash % num_shards`, so equal counts guarantee the two engines'
    /// shards partition the key space identically.
    ///
    /// # Errors
    /// Returns an error if shard counts, specs, or configs differ.
    pub fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.shards.len() != other.shards.len() {
            return Err(SketchError::incompatible("shard counts differ"));
        }
        for (i, (a, b)) in self.shards.iter_mut().zip(&other.shards).enumerate() {
            a.merge(b)
                .map_err(|e| SketchError::incompatible(format!("shard {i}: {e}")))?;
        }
        self.router_dead.absorb(other.router_dead(), None);
        self.router_metrics.absorb(&other.router_metrics);
        Ok(())
    }

    /// Collapses all shards into one sequential [`SketchEngine`] (for
    /// global reporting, checkpointing, or re-sharding).
    ///
    /// # Errors
    /// Propagates merge errors (impossible for shards minted by this
    /// engine, which share spec and config).
    pub fn collapse(&self) -> SketchResult<SketchEngine> {
        let mut out = SketchEngine::with_config(self.spec.clone(), self.config)?;
        for shard in &self.shards {
            out.merge(shard)?;
        }
        Ok(out)
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total groups tracked across shards (groups never straddle shards).
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.shards.iter().map(SketchEngine::num_groups).sum()
    }

    /// Total rows processed across shards.
    #[must_use]
    pub fn rows_processed(&self) -> u64 {
        self.shards.iter().map(SketchEngine::rows_processed).sum()
    }

    /// All group keys currently tracked, in ascending key order across
    /// **all** shards — the same deterministic listing contract as
    /// [`SketchEngine::groups`] (unified in PR 4; before that the listing
    /// was shard-by-shard, an ordering that leaked the routing hash).
    pub fn groups(&self) -> impl Iterator<Item = &Vec<Value>> {
        // lint: sorted-iteration-ok(per-shard listings collected then fully sorted by the key total order below)
        let mut keys: Vec<&Vec<Value>> =
            self.shards.iter().flat_map(SketchEngine::groups).collect();
        keys.sort();
        keys.into_iter()
    }

    /// Total sketch memory across shards.
    #[must_use]
    pub fn state_bytes(&self) -> usize {
        self.shards.iter().map(SketchEngine::state_bytes).sum()
    }

    /// Current poison-row policy.
    #[must_use]
    pub fn fault_policy(&self) -> FaultPolicy {
        self.fault_policy
    }

    /// Sets the poison-row policy, mirroring it into every shard so the
    /// router and workers agree on how malformed rows are handled.
    pub fn set_fault_policy(&mut self, policy: FaultPolicy) {
        self.fault_policy = policy;
        if let FaultPolicy::Quarantine { max_samples } = policy {
            self.router_dead.set_max_samples(max_samples);
        }
        for shard in &mut self.shards {
            shard.set_fault_policy(policy);
        }
    }

    /// Arms a deterministic fault injector on one shard (test harness for
    /// torn-batch recovery; see `sketches-workloads::faults`).
    ///
    /// # Errors
    /// Returns an error if `shard` is out of range.
    pub fn arm_faults(&mut self, shard: usize, injector: FaultInjector) -> SketchResult<()> {
        let num = self.shards.len();
        let s = self
            .shards
            .get_mut(shard)
            .ok_or_else(|| SketchError::invalid("shard", format!("no shard {shard} (of {num})")))?;
        s.arm_faults(injector);
        Ok(())
    }

    /// Disarms the fault injectors on every shard, returning each armed
    /// injector with its shard index (and consumed attempt counter).
    ///
    /// Unified surface (PR 4): disarming always *returns* what was armed,
    /// matching [`SketchEngine::disarm_faults`]'s `Option` shape scaled to
    /// N shards. Callers that only want the side effect can ignore the
    /// returned `Vec`; before PR 4 this method silently dropped the
    /// injectors, so drills could not inspect attempt counters.
    pub fn disarm_faults(&mut self) -> Vec<(usize, FaultInjector)> {
        let mut out = Vec::new();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if let Some(injector) = shard.disarm_faults() {
                out.push((i, injector));
            }
        }
        out
    }

    /// Router-level dead letters (rows too short to route). Per-shard
    /// quarantines are aggregated by [`dead_letters`](Self::dead_letters).
    #[must_use]
    pub fn router_dead(&self) -> &DeadLetters {
        &self.router_dead
    }

    /// Aggregated dead-letter view: the router's own quarantine plus every
    /// shard's, with samples stamped with their shard index. Owned — the
    /// unified [`crate::StreamEngine`] dead-letter shape (see
    /// [`SketchEngine::dead_letters`]).
    #[must_use]
    pub fn dead_letters(&self) -> DeadLetters {
        let mut all = self.router_dead.clone();
        for (i, shard) in self.shards.iter().enumerate() {
            all.absorb(&shard.dead_letters(), Some(i));
        }
        all
    }

    /// Cuts a telemetry snapshot merged across the router and every
    /// shard: counters and gauges add, latency histograms KLL-merge
    /// (lossless — no averaged percentiles), so the totals are exactly
    /// what a sequential engine fed the same stream would report. Also
    /// exports one `shard_rows_routed{shard="i"}` gauge per shard, making
    /// routing skew directly observable.
    #[must_use]
    pub fn metrics(&self) -> sketches_obs::MetricsSnapshot {
        let mut snap = self.router_metrics.snapshot();
        for (i, shard) in self.shards.iter().enumerate() {
            snap.merge(&shard.metrics())
                // lint: panic-ok(every obs histogram shares one fixed (k, seed), so snapshot merge cannot fail)
                .expect("obs snapshots share one KLL shape");
            snap.add_gauge(&names::shard_rows_routed(i), shard.rows_processed());
        }
        snap.add_gauge(names::SHARDS, self.shards.len() as u64);
        snap
    }

    /// Enables or disables metric recording on the router and every
    /// shard (on by default).
    pub fn set_metrics_enabled(&mut self, enabled: bool) {
        self.router_metrics.enabled = enabled;
        for shard in &mut self.shards {
            shard.set_metrics_enabled(enabled);
        }
    }

    /// Installs the time source behind the batch-latency histograms on
    /// the router and every shard (see [`SketchEngine::set_clock`]).
    pub fn set_clock(&mut self, clock: std::sync::Arc<dyn sketches_obs::Clock>) {
        self.router_metrics.clock = clock.clone();
        for shard in &mut self.shards {
            shard.set_clock(clock.clone());
        }
    }
}

/// One shard worker's ingest loop, supervised: panics inside
/// [`SketchEngine::ingest_row`] (including injected ones) are contained
/// here and reported as a [`BatchCause::WorkerPanic`], leaving the shard's
/// undo log intact so the supervisor can roll the whole batch back.
/// Shared with [`crate::concurrent::ConcurrentEngine`]'s long-lived
/// workers, so both topologies ingest identically.
pub(crate) fn worker_ingest(
    shard: &mut SketchEngine,
    rows: &[Row],
    rx: &channel::Receiver<usize>,
) -> WorkerOutcome {
    shard.begin_batch();
    let mut ingested = 0usize;
    let mut quarantined = 0usize;
    let current = Cell::new(None);
    // lint: panic-boundary(worker supervisor: contains shard panics so the batch can roll back with a typed error)
    let caught = catch_unwind(AssertUnwindSafe(|| -> Result<(), (usize, SketchError)> {
        for idx in rx {
            current.set(Some(idx));
            match shard.ingest_row(idx, &rows[idx]) {
                Ok(true) => ingested += 1,
                Ok(false) => quarantined += 1,
                // Dropping `rx` closes the channel, so the router's next
                // send fails and it stops feeding the batch.
                Err(e) => return Err((idx, e)),
            }
        }
        Ok(())
    }));
    let failure = match caught {
        Ok(Ok(())) => None,
        Ok(Err((idx, e))) => Some((Some(idx), BatchCause::Row(e))),
        Err(payload) => Some((
            current.get(),
            BatchCause::WorkerPanic(panic_message(payload.as_ref())),
        )),
    };
    WorkerOutcome {
        ingested,
        quarantined,
        failure,
    }
}

#[cfg(test)]
// `row!` expands to `vec![...]`, which tests also pass to slice-taking
// query methods — fine here.
#[allow(clippy::useless_vec)]
mod tests {
    use super::*;
    use crate::query::Aggregate;
    use crate::row;

    fn spec() -> QuerySpec {
        QuerySpec::new(
            vec![0],
            vec![
                Aggregate::Count,
                Aggregate::Sum { field: 2 },
                Aggregate::CountDistinct { field: 1 },
                Aggregate::Quantiles { field: 2 },
                Aggregate::TopK { field: 1, k: 3 },
            ],
        )
        .unwrap()
    }

    fn rows(n: u64, num_groups: u64) -> Vec<Row> {
        (0..n)
            .map(|i| row![i % num_groups, i % 97, (i % 1_000) as f64])
            .collect()
    }

    #[test]
    fn matches_sequential_at_every_shard_count() {
        let data = rows(20_000, 23);
        let mut seq = SketchEngine::new(spec()).unwrap();
        seq.process_batch(&data).unwrap();
        for shards in [1usize, 2, 4, 8] {
            let mut sharded = ShardedEngine::new(spec(), shards).unwrap();
            sharded.process_batch(&data).unwrap();
            assert_eq!(sharded.rows_processed(), seq.rows_processed());
            assert_eq!(sharded.num_groups(), seq.num_groups());
            for g in 0..23u64 {
                assert_eq!(
                    sharded.report(&row![g]).unwrap(),
                    seq.report(&row![g]).unwrap(),
                    "group {g} diverged at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn multiple_batches_keep_group_order() {
        // Splitting the stream into many small batches must not change
        // per-group results: routing is deterministic, so a group's rows
        // stay on one shard in stream order.
        let data = rows(9_000, 11);
        let mut seq = SketchEngine::new(spec()).unwrap();
        seq.process_batch(&data).unwrap();
        let mut sharded = ShardedEngine::new(spec(), 4).unwrap();
        for chunk in data.chunks(257) {
            sharded.process_batch(chunk).unwrap();
        }
        for g in 0..11u64 {
            assert_eq!(
                sharded.report(&row![g]).unwrap(),
                seq.report(&row![g]).unwrap()
            );
        }
    }

    #[test]
    fn short_rows_rejected_before_ingest() {
        let mut sharded = ShardedEngine::new(spec(), 4).unwrap();
        let mut data = rows(100, 5);
        data.push(row!["short"]);
        assert!(sharded.process_batch(&data).is_err());
        // Atomic at the batch level: nothing was ingested.
        assert_eq!(sharded.rows_processed(), 0);
    }

    #[test]
    fn aggregation_error_surfaces_from_workers() {
        let mut sharded = ShardedEngine::new(spec(), 2).unwrap();
        let mut data = rows(50, 3);
        data.push(row![0u64, 1u64, "not-a-number"]);
        assert!(sharded.process_batch(&data).is_err());
    }

    #[test]
    fn flush_window_resets_all_shards() {
        let mut sharded = ShardedEngine::new(spec(), 4).unwrap();
        sharded.process_batch(&rows(1_000, 7)).unwrap();
        let window = sharded.flush_window().unwrap();
        assert_eq!(window.len(), 7);
        assert_eq!(sharded.num_groups(), 0);
        assert_eq!(sharded.rows_processed(), 0);
    }

    #[test]
    fn merge_combines_disjoint_streams() {
        // Reference: the same split merged sequentially. (Merging is not
        // identical to one engine over the concatenated stream for KLL /
        // SpaceSaving, so the fair comparison is merge-vs-merge.)
        let data = rows(12_000, 13);
        let (left, right) = data.split_at(7_000);
        let mut a = ShardedEngine::new(spec(), 4).unwrap();
        let mut b = ShardedEngine::new(spec(), 4).unwrap();
        a.process_batch(left).unwrap();
        b.process_batch(right).unwrap();
        a.merge(&b).unwrap();

        let mut seq_a = SketchEngine::new(spec()).unwrap();
        let mut seq_b = SketchEngine::new(spec()).unwrap();
        seq_a.process_batch(left).unwrap();
        seq_b.process_batch(right).unwrap();
        seq_a.merge(&seq_b).unwrap();
        assert_eq!(a.rows_processed(), seq_a.rows_processed());
        for g in 0..13u64 {
            assert_eq!(a.report(&row![g]).unwrap(), seq_a.report(&row![g]).unwrap());
        }
    }

    #[test]
    fn merge_rejects_shard_count_mismatch() {
        let mut a = ShardedEngine::new(spec(), 2).unwrap();
        let b = ShardedEngine::new(spec(), 4).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn collapse_equals_sequential() {
        let data = rows(8_000, 17);
        let mut sharded = ShardedEngine::new(spec(), 8).unwrap();
        sharded.process_batch(&data).unwrap();
        let collapsed = sharded.collapse().unwrap();

        let mut seq = SketchEngine::new(spec()).unwrap();
        seq.process_batch(&data).unwrap();
        assert_eq!(collapsed.num_groups(), seq.num_groups());
        for g in 0..17u64 {
            assert_eq!(
                collapsed.report(&row![g]).unwrap(),
                seq.report(&row![g]).unwrap()
            );
        }
    }

    #[test]
    fn rejects_zero_shards_and_zero_depth() {
        assert!(ShardedEngine::new(spec(), 0).is_err());
        assert!(ShardedEngine::with_config(spec(), EngineConfig::default(), 2, 0).is_err());
    }

    #[test]
    fn poison_row_rolls_back_every_shard() {
        let mut sharded = ShardedEngine::new(spec(), 4).unwrap();
        sharded.process_batch(&rows(500, 7)).unwrap();
        let before = sharded.to_snapshot_bytes();

        let mut batch = rows(200, 7);
        batch.insert(60, row![0u64, 1u64, "not-a-number"]);
        let err = sharded.process_batch(&batch).unwrap_err();
        assert_eq!(err.row, Some(60));
        assert!(err.shard.is_some());
        assert!(matches!(err.cause, BatchCause::Row(_)));
        // Atomic across shards: even shards that never saw the poison row
        // rolled back their slice of the batch.
        assert_eq!(sharded.to_snapshot_bytes(), before);
        assert_eq!(sharded.rows_processed(), 500);
    }

    #[test]
    fn injected_worker_panic_is_contained_and_batch_retryable() {
        crate::fault::silence_injected_panics();
        let mut sharded = ShardedEngine::new(spec(), 4).unwrap();
        sharded.process_batch(&rows(300, 9)).unwrap();
        let before = sharded.to_snapshot_bytes();

        // The injector counts attempts from when it is armed: attempt 10
        // is the 10th row shard 2 receives from the next batch.
        sharded
            .arm_faults(
                2,
                crate::fault::FaultInjector::new().at(10, crate::fault::FaultKind::Panic),
            )
            .unwrap();
        let batch = rows(400, 9);
        let err = sharded.process_batch(&batch).unwrap_err();
        assert_eq!(err.shard, Some(2));
        assert!(matches!(err.cause, BatchCause::WorkerPanic(_)));
        assert_eq!(sharded.to_snapshot_bytes(), before);

        // Retry gets past the transient fault and converges with a
        // never-faulted engine.
        sharded.process_batch(&batch).unwrap();
        sharded.disarm_faults();
        let mut baseline = ShardedEngine::new(spec(), 4).unwrap();
        baseline.process_batch(&rows(300, 9)).unwrap();
        baseline.process_batch(&batch).unwrap();
        assert_eq!(sharded.to_snapshot_bytes(), baseline.to_snapshot_bytes());
    }

    #[test]
    fn arm_faults_rejects_bad_shard_index() {
        let mut sharded = ShardedEngine::new(spec(), 2).unwrap();
        // The first out-of-range index is num_shards itself (boundary), and
        // the rejection must be a *typed* parameter error naming both the
        // requested shard and the valid range — not a panic or a silent
        // no-op on some other shard.
        for bad in [2usize, 5, usize::MAX] {
            let err = sharded
                .arm_faults(bad, crate::fault::FaultInjector::new())
                .unwrap_err();
            assert!(
                matches!(err, SketchError::InvalidParameter { name: "shard", .. }),
                "shard {bad}: wrong error {err:?}"
            );
            assert!(err.to_string().contains("(of 2)"), "shard {bad}: {err}");
        }
        // In-range shards (0 and num_shards - 1) still arm fine.
        sharded
            .arm_faults(0, crate::fault::FaultInjector::new())
            .unwrap();
        sharded
            .arm_faults(1, crate::fault::FaultInjector::new())
            .unwrap();
        let disarmed = sharded.disarm_faults();
        assert_eq!(disarmed.len(), 2);
        assert_eq!(disarmed[0].0, 0);
        assert_eq!(disarmed[1].0, 1);
    }

    #[test]
    fn quarantine_aggregates_router_and_shard_dead_letters() {
        let mut sharded = ShardedEngine::new(spec(), 4).unwrap();
        sharded.set_fault_policy(FaultPolicy::Quarantine { max_samples: 8 });
        let mut batch = rows(100, 5);
        batch.insert(3, row![7u64]); // short: router quarantines it
        batch.insert(50, row![0u64, 1u64, "bad"]); // shard quarantines it
        let summary = sharded.process_batch(&batch).unwrap();
        assert_eq!(summary.rows_ingested, 100);
        assert_eq!(summary.rows_quarantined, 2);

        let all = sharded.dead_letters();
        assert_eq!(all.count(), 2);
        assert_eq!(all.samples().len(), 2);
        let router_sample = all.samples().iter().find(|q| q.row_index == 3).unwrap();
        assert_eq!(router_sample.shard, None);
        let shard_sample = all.samples().iter().find(|q| q.row_index == 50).unwrap();
        assert!(shard_sample.shard.is_some());

        // Quarantined rows left no trace in sketch state.
        let mut clean = ShardedEngine::new(spec(), 4).unwrap();
        clean.process_batch(&rows(100, 5)).unwrap();
        for g in 0..5u64 {
            assert_eq!(
                sharded.report(&row![g]).unwrap(),
                clean.report(&row![g]).unwrap()
            );
        }

        // Dead letters are window state.
        sharded.flush_window().unwrap();
        assert!(sharded.dead_letters().is_empty());
    }

    #[test]
    fn merge_error_names_the_failing_shard() {
        let mut a = ShardedEngine::new(spec(), 2).unwrap();
        let b = ShardedEngine::with_config(
            spec(),
            EngineConfig {
                hll_precision: 12,
                ..EngineConfig::default()
            },
            2,
            DEFAULT_CHANNEL_DEPTH,
        )
        .unwrap();
        let err = a.merge(&b).unwrap_err();
        assert!(err.to_string().contains("shard 0"), "{err}");
    }
}
