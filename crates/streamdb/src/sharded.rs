//! Sharded, thread-parallel GROUP BY ingest.
//!
//! The ISP-era systems the survey describes (§3) did not run one big
//! aggregation loop: Gigascope pushed GROUP BY state across processors by
//! *partitioning on the grouping key*, so every group lives in exactly one
//! partition and partitions never contend. [`ShardedEngine`] is that
//! design over [`SketchEngine`]:
//!
//! * N shards, each a complete [`SketchEngine`] with the same query spec
//!   and [`EngineConfig`] (identical sketch seeds);
//! * rows are routed by a deterministic hash of their grouping key, so a
//!   group's rows always land on the same shard, in stream order;
//! * during [`process_batch`](ShardedEngine::process_batch) each shard is
//!   driven by its own scoped worker thread, fed row *indices* through a
//!   bounded channel — workers borrow the caller's `&[Row]`, so nothing is
//!   cloned on the ingest path.
//!
//! # Consistency model
//!
//! While a batch is in flight, a shard's state lags the router by at most
//! `channel_depth` rows (the bounded-channel capacity) — but that window
//! is internal: `process_batch` joins every worker before returning, so
//! all public reads ([`report`](ShardedEngine::report),
//! [`flush_window`](ShardedEngine::flush_window), …) observe a fully
//! drained, quiescent engine.
//!
//! Because routing is per-group and each shard applies a group's rows in
//! stream order with the same seeds as a sequential engine, every
//! per-group report is **identical** (not merely statistically close) to
//! what a single [`SketchEngine`] fed the same rows would produce.

use crossbeam::channel;
use crossbeam::thread as cb_thread;
use sketches_core::{SketchError, SketchResult};
use sketches_hash::{hash_item, mix64};

use crate::engine::{EngineConfig, SketchEngine};
use crate::query::{AggregateResult, QuerySpec};
use crate::value::{Row, Value};

/// Seed of the shard-routing hash. Distinct from every sketch seed so the
/// placement of groups is independent of sketch randomness.
const ROUTE_SEED: u64 = 0x0005_AAED_0C0D;

/// Default bounded-channel capacity between the router and each shard
/// worker (row indices, so 8 KiB per shard at the default).
const DEFAULT_CHANNEL_DEPTH: usize = 1024;

/// A sharded GROUP BY engine: N [`SketchEngine`] partitions driven in
/// parallel, with per-group results identical to a single engine.
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    shards: Vec<SketchEngine>,
    spec: QuerySpec,
    config: EngineConfig,
    channel_depth: usize,
}

impl ShardedEngine {
    /// Creates a sharded engine with default sketch parameters and channel
    /// depth.
    ///
    /// # Errors
    /// Returns an error if `num_shards == 0` or the spec/config produce
    /// invalid sketches.
    pub fn new(spec: QuerySpec, num_shards: usize) -> SketchResult<Self> {
        Self::with_config(
            spec,
            EngineConfig::default(),
            num_shards,
            DEFAULT_CHANNEL_DEPTH,
        )
    }

    /// Creates a sharded engine with explicit sketch parameters and
    /// router→worker channel capacity.
    ///
    /// # Errors
    /// Returns an error if `num_shards == 0`, `channel_depth == 0`, or the
    /// spec/config produce invalid sketches.
    pub fn with_config(
        spec: QuerySpec,
        config: EngineConfig,
        num_shards: usize,
        channel_depth: usize,
    ) -> SketchResult<Self> {
        if num_shards == 0 {
            return Err(SketchError::invalid(
                "num_shards",
                "need at least one shard",
            ));
        }
        if channel_depth == 0 {
            return Err(SketchError::invalid("channel_depth", "need capacity >= 1"));
        }
        let shards = (0..num_shards)
            .map(|_| SketchEngine::with_config(spec.clone(), config))
            .collect::<SketchResult<Vec<_>>>()?;
        Ok(Self {
            shards,
            spec,
            config,
            channel_depth,
        })
    }

    /// Order-sensitive hash of a grouping-key value sequence.
    fn key_hash<'a>(fields: impl Iterator<Item = &'a Value>) -> u64 {
        let mut acc = ROUTE_SEED;
        for v in fields {
            acc = mix64(acc ^ hash_item(v, ROUTE_SEED));
        }
        acc
    }

    fn shard_of_key(&self, key: &[Value]) -> usize {
        (Self::key_hash(key.iter()) % self.shards.len() as u64) as usize
    }

    /// Ingests a batch of rows, driving every shard from its own worker
    /// thread. Rows of the same group are applied in batch order.
    ///
    /// # Errors
    /// Rows too short for the query are rejected up front, before any
    /// shard mutates (the router must project the grouping key, so it
    /// validates the whole batch first — stricter than the sequential
    /// engine's row-at-a-time failure). Aggregation errors inside a shard
    /// (e.g. SUM over a non-numeric field) stop that shard at the failing
    /// row and are reported after all workers drain.
    pub fn process_batch(&mut self, rows: &[Row]) -> SketchResult<()> {
        let max_field = self.spec.max_field();
        if rows.iter().any(|r| r.len() <= max_field) {
            return Err(SketchError::invalid("row", "row shorter than query fields"));
        }
        let num = self.shards.len();
        if num == 1 {
            // One shard is exactly the sequential engine; skip the
            // thread/channel machinery.
            return self.shards[0].process_batch(rows);
        }
        let spec = &self.spec;
        let depth = self.channel_depth;
        let shards = &mut self.shards;
        let worker_results: Vec<SketchResult<()>> = cb_thread::scope(|scope| {
            let mut senders = Vec::with_capacity(num);
            let mut handles = Vec::with_capacity(num);
            for shard in shards.iter_mut() {
                let (tx, rx) = channel::bounded::<usize>(depth);
                senders.push(tx);
                handles.push(scope.spawn(move |_| -> SketchResult<()> {
                    for idx in rx {
                        shard.process(&rows[idx])?;
                    }
                    Ok(())
                }));
            }
            for (idx, row) in rows.iter().enumerate() {
                let fields = spec.group_by.iter().map(|&i| &row[i]);
                let s = (Self::key_hash(fields) % num as u64) as usize;
                if senders[s].send(idx).is_err() {
                    // The worker hung up early — it hit an aggregation
                    // error. Stop feeding; the join below reports it.
                    break;
                }
            }
            drop(senders);
            handles
                .into_iter()
                // lint: panic-ok(propagating a worker panic is the correct failure mode for the scope)
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        })
        // lint: panic-ok(re-raising a shard panic on the ingest thread, not swallowing it)
        .expect("shard scope panicked");
        for r in worker_results {
            r?;
        }
        Ok(())
    }

    /// Reports the aggregates of one group (`None` if never seen). The
    /// group lives in exactly one shard, found by re-hashing the key.
    ///
    /// # Errors
    /// Returns an error only for internal sketch query failures.
    pub fn report(&self, key: &[Value]) -> SketchResult<Option<Vec<AggregateResult>>> {
        self.shards[self.shard_of_key(key)].report(key)
    }

    /// Finishes a tumbling window: every group's report (shard by shard,
    /// so ordering across groups is not meaningful) and a state reset.
    ///
    /// # Errors
    /// Propagates report errors.
    pub fn flush_window(&mut self) -> SketchResult<Vec<(Vec<Value>, Vec<AggregateResult>)>> {
        let mut out = Vec::new();
        for shard in &mut self.shards {
            out.extend(shard.flush_window()?);
        }
        Ok(out)
    }

    /// Merges another sharded engine's state (distributed GROUP BY over
    /// sharded nodes). Shard counts must match: routing places each group
    /// by `hash % num_shards`, so equal counts guarantee the two engines'
    /// shards partition the key space identically.
    ///
    /// # Errors
    /// Returns an error if shard counts, specs, or configs differ.
    pub fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.shards.len() != other.shards.len() {
            return Err(SketchError::incompatible("shard counts differ"));
        }
        for (a, b) in self.shards.iter_mut().zip(&other.shards) {
            a.merge(b)?;
        }
        Ok(())
    }

    /// Collapses all shards into one sequential [`SketchEngine`] (for
    /// global reporting, checkpointing, or re-sharding).
    ///
    /// # Errors
    /// Propagates merge errors (impossible for shards minted by this
    /// engine, which share spec and config).
    pub fn collapse(&self) -> SketchResult<SketchEngine> {
        let mut out = SketchEngine::with_config(self.spec.clone(), self.config)?;
        for shard in &self.shards {
            out.merge(shard)?;
        }
        Ok(out)
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total groups tracked across shards (groups never straddle shards).
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.shards.iter().map(SketchEngine::num_groups).sum()
    }

    /// Total rows processed across shards.
    #[must_use]
    pub fn rows_processed(&self) -> u64 {
        self.shards.iter().map(SketchEngine::rows_processed).sum()
    }

    /// All group keys currently tracked, shard by shard.
    pub fn groups(&self) -> impl Iterator<Item = &Vec<Value>> {
        self.shards.iter().flat_map(SketchEngine::groups)
    }

    /// Total sketch memory across shards.
    #[must_use]
    pub fn state_bytes(&self) -> usize {
        self.shards.iter().map(SketchEngine::state_bytes).sum()
    }
}

#[cfg(test)]
// `row!` expands to `vec![...]`, which tests also pass to slice-taking
// query methods — fine here.
#[allow(clippy::useless_vec)]
mod tests {
    use super::*;
    use crate::query::Aggregate;
    use crate::row;

    fn spec() -> QuerySpec {
        QuerySpec::new(
            vec![0],
            vec![
                Aggregate::Count,
                Aggregate::Sum { field: 2 },
                Aggregate::CountDistinct { field: 1 },
                Aggregate::Quantiles { field: 2 },
                Aggregate::TopK { field: 1, k: 3 },
            ],
        )
        .unwrap()
    }

    fn rows(n: u64, num_groups: u64) -> Vec<Row> {
        (0..n)
            .map(|i| row![i % num_groups, i % 97, (i % 1_000) as f64])
            .collect()
    }

    #[test]
    fn matches_sequential_at_every_shard_count() {
        let data = rows(20_000, 23);
        let mut seq = SketchEngine::new(spec()).unwrap();
        seq.process_batch(&data).unwrap();
        for shards in [1usize, 2, 4, 8] {
            let mut sharded = ShardedEngine::new(spec(), shards).unwrap();
            sharded.process_batch(&data).unwrap();
            assert_eq!(sharded.rows_processed(), seq.rows_processed());
            assert_eq!(sharded.num_groups(), seq.num_groups());
            for g in 0..23u64 {
                assert_eq!(
                    sharded.report(&row![g]).unwrap(),
                    seq.report(&row![g]).unwrap(),
                    "group {g} diverged at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn multiple_batches_keep_group_order() {
        // Splitting the stream into many small batches must not change
        // per-group results: routing is deterministic, so a group's rows
        // stay on one shard in stream order.
        let data = rows(9_000, 11);
        let mut seq = SketchEngine::new(spec()).unwrap();
        seq.process_batch(&data).unwrap();
        let mut sharded = ShardedEngine::new(spec(), 4).unwrap();
        for chunk in data.chunks(257) {
            sharded.process_batch(chunk).unwrap();
        }
        for g in 0..11u64 {
            assert_eq!(
                sharded.report(&row![g]).unwrap(),
                seq.report(&row![g]).unwrap()
            );
        }
    }

    #[test]
    fn short_rows_rejected_before_ingest() {
        let mut sharded = ShardedEngine::new(spec(), 4).unwrap();
        let mut data = rows(100, 5);
        data.push(row!["short"]);
        assert!(sharded.process_batch(&data).is_err());
        // Atomic at the batch level: nothing was ingested.
        assert_eq!(sharded.rows_processed(), 0);
    }

    #[test]
    fn aggregation_error_surfaces_from_workers() {
        let mut sharded = ShardedEngine::new(spec(), 2).unwrap();
        let mut data = rows(50, 3);
        data.push(row![0u64, 1u64, "not-a-number"]);
        assert!(sharded.process_batch(&data).is_err());
    }

    #[test]
    fn flush_window_resets_all_shards() {
        let mut sharded = ShardedEngine::new(spec(), 4).unwrap();
        sharded.process_batch(&rows(1_000, 7)).unwrap();
        let window = sharded.flush_window().unwrap();
        assert_eq!(window.len(), 7);
        assert_eq!(sharded.num_groups(), 0);
        assert_eq!(sharded.rows_processed(), 0);
    }

    #[test]
    fn merge_combines_disjoint_streams() {
        // Reference: the same split merged sequentially. (Merging is not
        // identical to one engine over the concatenated stream for KLL /
        // SpaceSaving, so the fair comparison is merge-vs-merge.)
        let data = rows(12_000, 13);
        let (left, right) = data.split_at(7_000);
        let mut a = ShardedEngine::new(spec(), 4).unwrap();
        let mut b = ShardedEngine::new(spec(), 4).unwrap();
        a.process_batch(left).unwrap();
        b.process_batch(right).unwrap();
        a.merge(&b).unwrap();

        let mut seq_a = SketchEngine::new(spec()).unwrap();
        let mut seq_b = SketchEngine::new(spec()).unwrap();
        seq_a.process_batch(left).unwrap();
        seq_b.process_batch(right).unwrap();
        seq_a.merge(&seq_b).unwrap();
        assert_eq!(a.rows_processed(), seq_a.rows_processed());
        for g in 0..13u64 {
            assert_eq!(a.report(&row![g]).unwrap(), seq_a.report(&row![g]).unwrap());
        }
    }

    #[test]
    fn merge_rejects_shard_count_mismatch() {
        let mut a = ShardedEngine::new(spec(), 2).unwrap();
        let b = ShardedEngine::new(spec(), 4).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn collapse_equals_sequential() {
        let data = rows(8_000, 17);
        let mut sharded = ShardedEngine::new(spec(), 8).unwrap();
        sharded.process_batch(&data).unwrap();
        let collapsed = sharded.collapse().unwrap();

        let mut seq = SketchEngine::new(spec()).unwrap();
        seq.process_batch(&data).unwrap();
        assert_eq!(collapsed.num_groups(), seq.num_groups());
        for g in 0..17u64 {
            assert_eq!(
                collapsed.report(&row![g]).unwrap(),
                seq.report(&row![g]).unwrap()
            );
        }
    }

    #[test]
    fn rejects_zero_shards_and_zero_depth() {
        assert!(ShardedEngine::new(spec(), 0).is_err());
        assert!(ShardedEngine::with_config(spec(), EngineConfig::default(), 2, 0).is_err());
    }
}
