//! The sketch-backed aggregation engine.

use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use sketches_cardinality::HyperLogLogPlusPlus;
use sketches_core::{
    ByteReader, ByteWriter, CardinalityEstimator, FrequencyEstimator, MergeSketch, QuantileSketch,
    SketchError, SketchResult, SpaceUsage, Update,
};
use sketches_frequency::{SfSketch, SpaceSaving};
use sketches_quantiles::KllSketch;

use crate::fault::{
    panic_message, BatchCause, BatchError, BatchSummary, DeadLetters, FaultInjector, FaultKind,
    FaultPolicy, QuarantinedRow, INJECTED_PANIC_MARKER,
};
use crate::metrics::{names, EngineMetrics};
use crate::query::{Aggregate, AggregateResult, QuerySpec};
use crate::value::{read_value, write_value, Row, Value};

/// Per-group sketch state for one aggregate.
#[derive(Debug, Clone)]
pub(crate) enum AggState {
    Count(u64),
    Sum(f64),
    CountDistinct(HyperLogLogPlusPlus),
    Quantiles(KllSketch),
    TopK {
        sketch: SpaceSaving<Value>,
        k: usize,
    },
    Frequency(SfSketch),
}

/// Depth (rows) of both grids of every FREQUENCY SF-sketch. Fixed rather
/// than configurable: 4 rows put the collision probability per query at
/// `(1/width)^4`, and a fixed depth keeps the fat/slim widths the only
/// size knobs E27 sweeps.
pub const SF_DEPTH: usize = 4;

/// Tunable sketch parameters for the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// HLL++ precision for COUNT DISTINCT (4..=18).
    pub hll_precision: u32,
    /// KLL accuracy parameter for QUANTILES.
    pub kll_k: usize,
    /// SpaceSaving counters for TOP-K (must exceed the query's `k`).
    pub space_saving_counters: usize,
    /// Fat (update-side) width of every FREQUENCY SF-sketch.
    pub sf_fat_width: usize,
    /// Slim (query-side) width of every FREQUENCY SF-sketch — what a
    /// [`crate::EngineView`] ships per group.
    pub sf_slim_width: usize,
    /// Base PRNG seed.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            hll_precision: 11,
            kll_k: 128,
            space_saving_counters: 64,
            sf_fat_width: 1024,
            sf_slim_width: 64,
            seed: 0x57_DB,
        }
    }
}

/// A GROUP BY engine maintaining one set of sketches per group — the
/// "huge numbers of sketches in parallel" design of the ISP-era systems.
#[derive(Debug, Clone)]
pub struct SketchEngine {
    pub(crate) spec: QuerySpec,
    pub(crate) config: EngineConfig,
    /// Pristine per-group state, validated at construction and cloned for
    /// each new group (cheaper and simpler than re-validating per group).
    template: Vec<AggState>,
    pub(crate) groups: HashMap<Vec<Value>, Vec<AggState>>,
    /// Reusable key-projection buffer so the hot path can look up the
    /// group by slice (`Vec<Value>: Borrow<[Value]>`) without allocating a
    /// fresh key `Vec` per row; surrendered to the map only on the first
    /// row of each new group.
    key_scratch: Vec<Value>,
    pub(crate) rows_processed: u64,
    /// What to do with malformed rows (fail the batch vs quarantine).
    fault_policy: FaultPolicy,
    /// Quarantined rows under [`FaultPolicy::Quarantine`].
    dead_letters: DeadLetters,
    /// Deterministic fault schedule, when armed by a drill.
    injector: Option<FaultInjector>,
    /// In-flight batch checkpoint: the pre-batch state of every group the
    /// batch has touched, for rollback on failure.
    checkpoint: Option<BatchCheckpoint>,
    /// Hot-path telemetry (see [`crate::metrics`]); excluded from
    /// checkpoints like the other transient state.
    pub(crate) metrics: EngineMetrics,
}

/// Incremental undo log for one in-flight batch: only groups the batch
/// touches are saved (`Some` = pre-batch state to restore, `None` = group
/// created by this batch, to delete), so checkpoint cost scales with the
/// batch's group footprint rather than the whole engine.
#[derive(Debug, Clone, Default)]
struct BatchCheckpoint {
    touched: HashMap<Vec<Value>, Option<Vec<AggState>>>,
    rows_processed: u64,
    dead_count: u64,
    dead_samples: usize,
    /// Pre-batch metric readings, so a rollback rewinds the row-level
    /// counters and they stay exact rather than merely monotone.
    metric_rows_ingested: u64,
    metric_rows_quarantined: u64,
}

impl SketchEngine {
    /// Creates an engine for `spec` with default sketch parameters.
    ///
    /// # Errors
    /// Returns an error if the spec/config produce invalid sketches.
    pub fn new(spec: QuerySpec) -> SketchResult<Self> {
        Self::with_config(spec, EngineConfig::default())
    }

    /// Creates an engine with explicit sketch parameters.
    ///
    /// # Errors
    /// Returns an error if the config is invalid (validated eagerly by
    /// constructing a probe group).
    pub fn with_config(spec: QuerySpec, config: EngineConfig) -> SketchResult<Self> {
        let mut engine = Self {
            spec,
            config,
            template: Vec::new(),
            groups: HashMap::new(),
            key_scratch: Vec::new(),
            rows_processed: 0,
            fault_policy: FaultPolicy::default(),
            dead_letters: DeadLetters::default(),
            injector: None,
            checkpoint: None,
            metrics: EngineMetrics::new(),
        };
        engine.template = engine.fresh_state()?;
        Ok(engine)
    }

    fn fresh_state(&self) -> SketchResult<Vec<AggState>> {
        self.spec
            .aggregates
            .iter()
            .map(|agg| {
                Ok(match agg {
                    Aggregate::Count => AggState::Count(0),
                    Aggregate::Sum { .. } => AggState::Sum(0.0),
                    Aggregate::CountDistinct { .. } => AggState::CountDistinct(
                        HyperLogLogPlusPlus::new(self.config.hll_precision, self.config.seed)?,
                    ),
                    Aggregate::Quantiles { .. } => {
                        AggState::Quantiles(KllSketch::new(self.config.kll_k, self.config.seed)?)
                    }
                    Aggregate::TopK { k, .. } => {
                        if *k > self.config.space_saving_counters {
                            return Err(SketchError::invalid(
                                "k",
                                "TopK k exceeds space_saving_counters",
                            ));
                        }
                        AggState::TopK {
                            sketch: SpaceSaving::new(self.config.space_saving_counters)?,
                            k: *k,
                        }
                    }
                    Aggregate::Frequency { .. } => AggState::Frequency(SfSketch::new(
                        self.config.sf_fat_width,
                        self.config.sf_slim_width,
                        SF_DEPTH,
                        self.config.seed,
                    )?),
                })
            })
            .collect()
    }

    /// Validates one row against the query up front — arity, then the type
    /// of every numerically-aggregated field — so that by the time
    /// [`apply`](Self::apply) mutates sketch state, nothing can fail. This
    /// full validation is what makes row-level quarantine and batch
    /// rollback sound: a poison row is rejected *before* any sketch absorbs
    /// part of it.
    fn validate_row(&self, row: &Row) -> SketchResult<()> {
        if row.len() <= self.spec.max_field() {
            return Err(SketchError::invalid("row", "row shorter than query fields"));
        }
        for agg in &self.spec.aggregates {
            match agg {
                Aggregate::Sum { field } => {
                    if row[*field].as_f64().is_none() {
                        return Err(SketchError::invalid("field", "SUM over non-numeric field"));
                    }
                }
                Aggregate::Quantiles { field } => {
                    if row[*field].as_f64().is_none() {
                        return Err(SketchError::invalid(
                            "field",
                            "QUANTILES over non-numeric field",
                        ));
                    }
                }
                Aggregate::Count
                | Aggregate::CountDistinct { .. }
                | Aggregate::TopK { .. }
                | Aggregate::Frequency { .. } => {}
            }
        }
        Ok(())
    }

    /// Routes a rejected row by policy: fail (the caller rolls the batch
    /// back) or divert to the dead-letter buffer and continue.
    fn divert_or_fail(
        &mut self,
        row_index: usize,
        row: &Row,
        reason: SketchError,
    ) -> SketchResult<bool> {
        match self.fault_policy {
            FaultPolicy::FailBatch => Err(reason),
            FaultPolicy::Quarantine { .. } => {
                self.dead_letters.record(QuarantinedRow {
                    row_index,
                    shard: None,
                    reason,
                    row: row.clone(),
                });
                if self.metrics.enabled {
                    self.metrics.rows_quarantined.inc();
                }
                Ok(false)
            }
        }
    }

    /// One ingest attempt: validate, consult the fault injector, then fold
    /// the row into its group. Returns `Ok(true)` if the row landed,
    /// `Ok(false)` if it was quarantined.
    ///
    /// # Errors
    /// Returns the row's rejection reason under [`FaultPolicy::FailBatch`].
    pub(crate) fn ingest_row(&mut self, row_index: usize, row: &Row) -> SketchResult<bool> {
        if let Err(reason) = self.validate_row(row) {
            return self.divert_or_fail(row_index, row, reason);
        }
        if let Some(inj) = self.injector.as_mut() {
            // The fault counter mirrors the injector's attempt semantics:
            // a fired fault stays counted even if its batch rolls back.
            match inj.check() {
                Some(FaultKind::Error) => {
                    if self.metrics.enabled {
                        self.metrics.injected_faults.inc();
                    }
                    let reason = SketchError::invalid("fault", "injected ingest error");
                    return self.divert_or_fail(row_index, row, reason);
                }
                Some(FaultKind::Panic) => {
                    if self.metrics.enabled {
                        self.metrics.injected_faults.inc();
                    }
                    // lint: panic-ok(deterministic injected fault; always contained by the batch supervisor)
                    panic!("{INJECTED_PANIC_MARKER}: injected panic at row {row_index}");
                }
                None => {}
            }
        }
        // Project the key into the reusable scratch buffer and look the
        // group up by slice: the steady state (group already known) does
        // one hash lookup and zero allocations. Only the first row of a
        // new group surrenders the scratch `Vec` to the map.
        self.key_scratch.clear();
        self.key_scratch
            .extend(self.spec.group_by.iter().map(|&i| row[i].clone()));
        // Transactional bookkeeping: the first time a batch touches a
        // group, save its pre-batch state (or note it is brand new).
        if let Some(cp) = &mut self.checkpoint {
            if !cp.touched.contains_key(self.key_scratch.as_slice()) {
                cp.touched.insert(
                    self.key_scratch.clone(),
                    self.groups.get(self.key_scratch.as_slice()).cloned(),
                );
            }
        }
        if let Some(state) = self.groups.get_mut(self.key_scratch.as_slice()) {
            Self::apply(&self.spec, state, row);
        } else {
            let key = std::mem::take(&mut self.key_scratch);
            let template = &self.template;
            let state = self.groups.entry(key).or_insert_with(|| template.clone());
            Self::apply(&self.spec, state, row);
        }
        self.rows_processed += 1;
        if self.metrics.enabled {
            self.metrics.rows_ingested.inc();
        }
        Ok(true)
    }

    /// Processes one row.
    ///
    /// Under [`FaultPolicy::Quarantine`] a malformed row is diverted to
    /// [`dead_letters`](Self::dead_letters) and `Ok(())` is returned.
    ///
    /// # Errors
    /// Under [`FaultPolicy::FailBatch`] (the default), returns an error if
    /// the row is too short for the query or a non-numeric field is
    /// aggregated numerically — before any state is mutated.
    pub fn process(&mut self, row: &Row) -> SketchResult<()> {
        self.ingest_row(0, row).map(|_| ())
    }

    /// Starts an undo log: subsequent [`ingest_row`](Self::ingest_row)
    /// calls record the pre-batch state of every group they touch.
    pub(crate) fn begin_batch(&mut self) {
        self.checkpoint = Some(BatchCheckpoint {
            touched: HashMap::new(),
            rows_processed: self.rows_processed,
            dead_count: self.dead_letters.count(),
            dead_samples: self.dead_letters.samples().len(),
            metric_rows_ingested: self.metrics.rows_ingested.get(),
            metric_rows_quarantined: self.metrics.rows_quarantined.get(),
        });
    }

    /// Discards the undo log, keeping everything the batch ingested.
    pub(crate) fn commit_batch(&mut self) {
        self.checkpoint = None;
    }

    /// Restores the exact pre-batch state from the undo log: touched groups
    /// revert, groups the batch created disappear, and the row/dead-letter
    /// counters rewind.
    pub(crate) fn rollback_batch(&mut self) {
        if let Some(cp) = self.checkpoint.take() {
            // lint: sorted-iteration-ok(keyed restore: each entry overwrites its own group, independent of visit order)
            for (key, saved) in cp.touched {
                match saved {
                    Some(state) => {
                        self.groups.insert(key, state);
                    }
                    None => {
                        self.groups.remove(&key);
                    }
                }
            }
            self.rows_processed = cp.rows_processed;
            self.dead_letters
                .truncate_to(cp.dead_count, cp.dead_samples);
            self.metrics.rows_ingested.set(cp.metric_rows_ingested);
            self.metrics
                .rows_quarantined
                .set(cp.metric_rows_quarantined);
        }
    }

    /// Processes a batch of rows in order — transactionally. Either every
    /// valid row of the batch is absorbed and a [`BatchSummary`] reports
    /// what happened, or the engine's observable state is **exactly** what
    /// it was before the call: a failing row, an injected fault, or even a
    /// panic inside the ingest path (contained here via `catch_unwind`)
    /// rolls back all of the batch's partial work. A torn batch is never
    /// visible.
    ///
    /// # Errors
    /// Returns a [`BatchError`] naming the failing row and cause. The
    /// engine is unchanged.
    pub fn process_batch(&mut self, rows: &[Row]) -> Result<BatchSummary, BatchError> {
        let start = self.metrics.start_batch();
        self.begin_batch();
        let last_row = Cell::new(None::<usize>);
        // lint: panic-boundary(batch supervisor: contains ingest panics, rolls the batch back, reports a typed BatchError)
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut summary = BatchSummary::default();
            for (idx, row) in rows.iter().enumerate() {
                last_row.set(Some(idx));
                match self.ingest_row(idx, row) {
                    Ok(true) => summary.rows_ingested += 1,
                    Ok(false) => summary.rows_quarantined += 1,
                    Err(e) => {
                        return Err(BatchError {
                            row: Some(idx),
                            shard: None,
                            cause: BatchCause::Row(e),
                        });
                    }
                }
            }
            Ok(summary)
        }));
        let result = match outcome {
            Ok(Ok(summary)) => {
                self.commit_batch();
                if self.metrics.enabled {
                    self.metrics.batches_committed.inc();
                }
                Ok(summary)
            }
            Ok(Err(err)) => {
                self.rollback_batch();
                if self.metrics.enabled {
                    self.metrics.batches_rolled_back.inc();
                }
                Err(err)
            }
            Err(payload) => {
                self.rollback_batch();
                if self.metrics.enabled {
                    self.metrics.batches_rolled_back.inc();
                    self.metrics.panics_contained.inc();
                }
                Err(BatchError {
                    row: last_row.get(),
                    shard: None,
                    cause: BatchCause::WorkerPanic(panic_message(payload.as_ref())),
                })
            }
        };
        self.metrics.finish_batch(start);
        result
    }

    /// Folds one row into a group's aggregate states. Infallible by
    /// construction: [`validate_row`](Self::validate_row) has already
    /// checked arity and numeric types, and the state vector is built from
    /// the same spec.
    fn apply(spec: &QuerySpec, state: &mut [AggState], row: &Row) {
        for (agg, st) in spec.aggregates.iter().zip(state.iter_mut()) {
            match (agg, st) {
                (Aggregate::Count, AggState::Count(c)) => *c += 1,
                (Aggregate::Sum { field }, AggState::Sum(s)) => {
                    if let Some(v) = row[*field].as_f64() {
                        *s += v;
                    }
                }
                (Aggregate::CountDistinct { field }, AggState::CountDistinct(h)) => {
                    h.update(&row[*field]);
                }
                (Aggregate::Quantiles { field }, AggState::Quantiles(q)) => {
                    if let Some(v) = row[*field].as_f64() {
                        q.update(&v);
                    }
                }
                (Aggregate::TopK { field, .. }, AggState::TopK { sketch, .. }) => {
                    sketch.update(&row[*field]);
                }
                (Aggregate::Frequency { field }, AggState::Frequency(sf)) => {
                    sf.update(&row[*field]);
                }
                // lint: panic-ok(state vector is built from the same spec; a mismatch is a construction bug, not input)
                _ => unreachable!("state vector built from the same spec"),
            }
        }
    }

    /// Reports the aggregates of one group (`None` if the group was never
    /// seen).
    ///
    /// # Errors
    /// Returns an error only for internal sketch query failures.
    pub fn report(&self, key: &[Value]) -> SketchResult<Option<Vec<AggregateResult>>> {
        let Some(state) = self.groups.get(key) else {
            return Ok(None);
        };
        let results = state
            .iter()
            .map(|st| {
                Ok(match st {
                    AggState::Count(c) => AggregateResult::Count(*c),
                    AggState::Sum(s) => AggregateResult::Sum(*s),
                    AggState::CountDistinct(h) => AggregateResult::CountDistinct(h.estimate()),
                    AggState::Quantiles(q) => AggregateResult::Quantiles {
                        p50: q.quantile(0.5)?,
                        p95: q.quantile(0.95)?,
                        p99: q.quantile(0.99)?,
                    },
                    AggState::TopK { sketch, k } => AggregateResult::TopK(sketch.top_k(*k)),
                    AggState::Frequency(sf) => AggregateResult::Frequency { total: sf.total() },
                })
            })
            .collect::<SketchResult<Vec<_>>>()?;
        Ok(Some(results))
    }

    /// Frequency point query: the estimated number of rows in group `key`
    /// whose FREQUENCY field held `item` (`None` if the group was never
    /// seen). Served from the **fat** side — the local authority; remote
    /// readers get the same query from a slim [`crate::EngineView`].
    ///
    /// # Errors
    /// Returns an error if the spec has no FREQUENCY aggregate.
    pub fn estimate(&self, key: &[Value], item: &Value) -> SketchResult<Option<u64>> {
        if !self
            .spec
            .aggregates
            .iter()
            .any(|a| matches!(a, Aggregate::Frequency { .. }))
        {
            return Err(SketchError::invalid(
                "spec",
                "query has no FREQUENCY aggregate",
            ));
        }
        let Some(state) = self.groups.get(key) else {
            return Ok(None);
        };
        // First FREQUENCY aggregate answers (specs wanting several fields
        // query the view, which exposes every position).
        for st in state {
            if let AggState::Frequency(sf) = st {
                return Ok(Some(sf.estimate(item)));
            }
        }
        // lint: panic-ok(spec has a Frequency aggregate, so every state vector holds one; a mismatch is a construction bug)
        unreachable!("state vector built from the same spec");
    }

    /// All group keys currently tracked, in ascending key order — the
    /// listing is deterministic across runs even though the backing map is
    /// hashed.
    pub fn groups(&self) -> impl Iterator<Item = &Vec<Value>> {
        // lint: sorted-iteration-ok(collected then fully sorted by the key total order below)
        let mut keys: Vec<&Vec<Value>> = self.groups.keys().collect();
        keys.sort();
        keys.into_iter()
    }

    /// Number of groups.
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Rows processed.
    #[must_use]
    pub fn rows_processed(&self) -> u64 {
        self.rows_processed
    }

    /// The dead-letter buffer of quarantined rows, as an owned view.
    ///
    /// Unified surface (PR 4): both engines return an **owned**
    /// [`DeadLetters`] — the sharded engine must aggregate per-shard
    /// buffers on the fly, so the owned shape is the one both can honour,
    /// and [`crate::StreamEngine`] pins it down. (Before PR 4 this engine
    /// returned `&DeadLetters` while the sharded engine returned an owned
    /// aggregate.)
    #[must_use]
    pub fn dead_letters(&self) -> DeadLetters {
        self.dead_letters.clone()
    }

    /// The current poison-row policy.
    #[must_use]
    pub fn fault_policy(&self) -> FaultPolicy {
        self.fault_policy
    }

    /// Sets the poison-row policy. Switching to
    /// [`FaultPolicy::Quarantine`] re-bounds the dead-letter samples to its
    /// `max_samples`.
    pub fn set_fault_policy(&mut self, policy: FaultPolicy) {
        if let FaultPolicy::Quarantine { max_samples } = policy {
            self.dead_letters.set_max_samples(max_samples);
        }
        self.fault_policy = policy;
    }

    /// Arms a deterministic fault schedule (a drill: see [`FaultInjector`]).
    pub fn arm_faults(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Disarms the fault schedule, returning it (with its attempt counter)
    /// if one was armed.
    ///
    /// Unified surface (PR 4): disarming always *returns* what was armed —
    /// here an `Option` (one injector slot), on [`crate::ShardedEngine`] a
    /// `Vec<(shard, injector)>` (one slot per shard). Neither discards the
    /// injector silently, so drills can inspect consumed attempt counters.
    pub fn disarm_faults(&mut self) -> Option<FaultInjector> {
        self.injector.take()
    }

    /// Finishes a tumbling window: returns every group's report (in
    /// ascending key order, so downstream consumers see a stable layout)
    /// and resets the state for the next window.
    ///
    /// # Errors
    /// Propagates report errors.
    pub fn flush_window(&mut self) -> SketchResult<Vec<(Vec<Value>, Vec<AggregateResult>)>> {
        // lint: sorted-iteration-ok(collected then fully sorted by the key total order below)
        let mut keys: Vec<Vec<Value>> = self.groups.keys().cloned().collect();
        keys.sort();
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            if let Some(report) = self.report(&key)? {
                out.push((key, report));
            }
        }
        self.groups.clear();
        self.rows_processed = 0;
        // A fresh window starts fresh quarantine stats too.
        self.dead_letters.clear();
        Ok(out)
    }

    /// Merges another engine's state (distributed GROUP BY: shard by row,
    /// merge per-group sketches).
    ///
    /// # Errors
    /// Returns an error if specs/configs differ.
    pub fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.spec != other.spec {
            return Err(SketchError::incompatible("query specs differ"));
        }
        if self.config != other.config {
            // Checked up front: a lazy failure mid-merge would leave this
            // engine with a mix of the two configs' groups.
            return Err(SketchError::incompatible("engine configs differ"));
        }
        // lint: sorted-iteration-ok(keyed pointwise merge: each group folds into its own entry, independent of visit order)
        for (key, other_state) in &other.groups {
            match self.groups.get_mut(key) {
                None => {
                    self.groups.insert(key.clone(), other_state.clone());
                }
                Some(state) => {
                    for (a, b) in state.iter_mut().zip(other_state) {
                        match (a, b) {
                            (AggState::Count(x), AggState::Count(y)) => *x += y,
                            (AggState::Sum(x), AggState::Sum(y)) => *x += y,
                            (AggState::CountDistinct(x), AggState::CountDistinct(y)) => {
                                x.merge(y)?;
                            }
                            (AggState::Quantiles(x), AggState::Quantiles(y)) => x.merge(y)?,
                            (
                                AggState::TopK { sketch: x, .. },
                                AggState::TopK { sketch: y, .. },
                            ) => x.merge(y)?,
                            (AggState::Frequency(x), AggState::Frequency(y)) => x.merge(y)?,
                            _ => {
                                return Err(SketchError::incompatible(
                                    "aggregate states out of order",
                                ))
                            }
                        }
                    }
                }
            }
        }
        self.rows_processed += other.rows_processed;
        self.dead_letters.absorb(&other.dead_letters, None);
        self.metrics.absorb(&other.metrics);
        Ok(())
    }

    /// Cuts a telemetry snapshot: the hot-path counters and batch-latency
    /// histogram plus point-in-time gauges. Metrics are cumulative over
    /// the engine's lifetime — [`flush_window`](Self::flush_window) resets
    /// aggregation state, not telemetry — and are excluded from
    /// checkpoints like the rest of the transient state.
    #[must_use]
    pub fn metrics(&self) -> sketches_obs::MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.add_gauge(names::GROUPS, self.num_groups() as u64);
        snap.add_gauge(names::STATE_BYTES, self.state_bytes() as u64);
        snap
    }

    /// Enables or disables metric recording (on by default). Disabling
    /// reduces the per-row telemetry cost to one branch.
    pub fn set_metrics_enabled(&mut self, enabled: bool) {
        self.metrics.enabled = enabled;
    }

    /// Installs the time source behind the batch-latency histogram.
    /// Tests inject a [`sketches_obs::ManualClock`] here so every
    /// timing-derived metric is deterministic.
    pub fn set_clock(&mut self, clock: std::sync::Arc<dyn sketches_obs::Clock>) {
        self.metrics.clock = clock;
    }

    /// Serializes the engine's durable state — config, spec, row counter,
    /// and every group's sketches — as a checkpoint payload (no envelope;
    /// [`crate::Snapshot`] adds magic/version/checksum framing). Groups are
    /// written in ascending key order, so the encoding is **canonical**:
    /// re-serializing a restored engine yields byte-identical output.
    ///
    /// Transient fault state (policy, dead letters, armed injectors, any
    /// in-flight undo log) is deliberately excluded: a checkpoint captures
    /// the aggregation state, not the drill harness around it.
    pub(crate) fn write_state_payload(&self, w: &mut ByteWriter) {
        write_config(&self.config, w);
        write_spec(&self.spec, w);
        w.put_u64(self.rows_processed);
        // lint: sorted-iteration-ok(keys collected then fully sorted below; emission order is the sorted order)
        let mut keys: Vec<&Vec<Value>> = self.groups.keys().collect();
        keys.sort();
        w.put_usize(keys.len());
        for key in keys {
            for v in key {
                write_value(v, w);
            }
            let state = &self.groups[key];
            for st in state {
                write_agg_state(st, w);
            }
        }
    }

    /// Restores an engine from [`write_state_payload`](Self::write_state_payload)
    /// bytes. Structure is validated end to end: config and spec go through
    /// their normal constructors, group keys must be strictly ascending
    /// (canonical order), and every sketch's parameters must agree with the
    /// config they were allegedly built from.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on any structural violation.
    pub(crate) fn read_state_payload(r: &mut ByteReader<'_>) -> SketchResult<Self> {
        let config = read_config(r)?;
        let spec = read_spec(r)?;
        let mut engine = Self::with_config(spec, config)
            .map_err(|e| SketchError::corrupted(format!("checkpoint config rejected: {e}")))?;
        let rows_processed = r.u64()?;
        let num_groups = r.array_len(1, "engine groups")?;
        let key_len = engine.spec.group_by.len();
        let aggregates = engine.spec.aggregates.clone();
        let mut prev_key: Option<Vec<Value>> = None;
        for _ in 0..num_groups {
            let mut key = Vec::with_capacity(key_len);
            for _ in 0..key_len {
                key.push(read_value(r)?);
            }
            if prev_key.as_ref().is_some_and(|p| *p >= key) {
                return Err(SketchError::corrupted(
                    "engine groups not in strictly ascending key order",
                ));
            }
            let mut state = Vec::with_capacity(aggregates.len());
            for agg in &aggregates {
                state.push(read_agg_state(agg, &engine.config, r)?);
            }
            prev_key = Some(key.clone());
            engine.groups.insert(key, state);
        }
        engine.rows_processed = rows_processed;
        Ok(engine)
    }

    /// Total sketch memory across groups.
    #[must_use]
    pub fn state_bytes(&self) -> usize {
        self.groups
            .values()
            .flat_map(|state| {
                state.iter().map(|st| match st {
                    AggState::Count(_) | AggState::Sum(_) => 8,
                    AggState::CountDistinct(h) => h.space_bytes(),
                    AggState::Quantiles(q) => q.space_bytes(),
                    AggState::TopK { sketch, .. } => sketch.space_bytes(),
                    AggState::Frequency(sf) => sf.space_bytes(),
                })
            })
            .sum()
    }
}

/// Serializes an [`EngineConfig`] (fixed-width fields, canonical).
fn write_config(config: &EngineConfig, w: &mut ByteWriter) {
    w.put_u32(config.hll_precision);
    w.put_usize(config.kll_k);
    w.put_usize(config.space_saving_counters);
    w.put_usize(config.sf_fat_width);
    w.put_usize(config.sf_slim_width);
    w.put_u64(config.seed);
}

/// Restores an [`EngineConfig`]. Range validation happens downstream, when
/// the config is fed through [`SketchEngine::with_config`].
fn read_config(r: &mut ByteReader<'_>) -> SketchResult<EngineConfig> {
    Ok(EngineConfig {
        hll_precision: r.u32()?,
        kll_k: r.usize()?,
        space_saving_counters: r.usize()?,
        sf_fat_width: r.usize()?,
        sf_slim_width: r.usize()?,
        seed: r.u64()?,
    })
}

/// Serializes a [`QuerySpec`]: grouping fields, then tagged aggregates.
pub(crate) fn write_spec(spec: &QuerySpec, w: &mut ByteWriter) {
    w.put_usize(spec.group_by.len());
    for &f in &spec.group_by {
        w.put_usize(f);
    }
    w.put_usize(spec.aggregates.len());
    for agg in &spec.aggregates {
        match agg {
            Aggregate::Count => w.put_u8(0),
            Aggregate::Sum { field } => {
                w.put_u8(1);
                w.put_usize(*field);
            }
            Aggregate::CountDistinct { field } => {
                w.put_u8(2);
                w.put_usize(*field);
            }
            Aggregate::Quantiles { field } => {
                w.put_u8(3);
                w.put_usize(*field);
            }
            Aggregate::TopK { field, k } => {
                w.put_u8(4);
                w.put_usize(*field);
                w.put_usize(*k);
            }
            Aggregate::Frequency { field } => {
                w.put_u8(5);
                w.put_usize(*field);
            }
        }
    }
}

/// Restores a [`QuerySpec`], re-running its constructor validation.
pub(crate) fn read_spec(r: &mut ByteReader<'_>) -> SketchResult<QuerySpec> {
    let num_group_by = r.array_len(8, "spec group-by fields")?;
    let mut group_by = Vec::with_capacity(num_group_by);
    for _ in 0..num_group_by {
        group_by.push(r.usize()?);
    }
    let num_aggs = r.array_len(1, "spec aggregates")?;
    let mut aggregates = Vec::with_capacity(num_aggs);
    for _ in 0..num_aggs {
        aggregates.push(match r.u8()? {
            0 => Aggregate::Count,
            1 => Aggregate::Sum { field: r.usize()? },
            2 => Aggregate::CountDistinct { field: r.usize()? },
            3 => Aggregate::Quantiles { field: r.usize()? },
            4 => Aggregate::TopK {
                field: r.usize()?,
                k: r.usize()?,
            },
            5 => Aggregate::Frequency { field: r.usize()? },
            tag => {
                return Err(SketchError::corrupted(format!(
                    "unknown aggregate tag {tag} (expected 0..=5)"
                )));
            }
        });
    }
    QuerySpec::new(group_by, aggregates)
        .map_err(|e| SketchError::corrupted(format!("checkpoint spec rejected: {e}")))
}

/// Serializes one aggregate's state. No variant tag is needed: the spec
/// (serialized in the same payload) fixes which variant sits at each
/// position.
fn write_agg_state(st: &AggState, w: &mut ByteWriter) {
    match st {
        AggState::Count(c) => w.put_u64(*c),
        AggState::Sum(s) => w.put_f64(*s),
        AggState::CountDistinct(h) => h.write_state(w),
        AggState::Quantiles(q) => q.write_state(w),
        AggState::TopK { sketch, .. } => sketch.write_state_with(w, write_value),
        AggState::Frequency(sf) => sf.write_state(w),
    }
}

/// Restores one aggregate's state against the spec's aggregate at the same
/// position, cross-validating every sketch parameter against the config it
/// was allegedly built from — a decoded sketch with the wrong precision,
/// seed, `k`, or capacity is corruption, not a different-but-valid sketch.
fn read_agg_state(
    agg: &Aggregate,
    config: &EngineConfig,
    r: &mut ByteReader<'_>,
) -> SketchResult<AggState> {
    Ok(match agg {
        Aggregate::Count => AggState::Count(r.u64()?),
        Aggregate::Sum { .. } => AggState::Sum(r.f64()?),
        Aggregate::CountDistinct { .. } => {
            let h = HyperLogLogPlusPlus::read_state(r)?;
            if h.precision() != config.hll_precision || h.seed() != config.seed {
                return Err(SketchError::corrupted(
                    "COUNT DISTINCT sketch parameters disagree with the engine config",
                ));
            }
            AggState::CountDistinct(h)
        }
        Aggregate::Quantiles { .. } => {
            let q = KllSketch::read_state(r)?;
            if q.k() != config.kll_k {
                return Err(SketchError::corrupted(
                    "QUANTILES sketch k disagrees with the engine config",
                ));
            }
            AggState::Quantiles(q)
        }
        Aggregate::TopK { k, .. } => {
            let sketch = SpaceSaving::read_state_with(r, read_value)?;
            if sketch.k() != config.space_saving_counters {
                return Err(SketchError::corrupted(
                    "TOP-K sketch capacity disagrees with the engine config",
                ));
            }
            AggState::TopK { sketch, k: *k }
        }
        Aggregate::Frequency { .. } => {
            let sf = SfSketch::read_state(r)?;
            if sf.fat_width() != config.sf_fat_width
                || sf.slim_width() != config.sf_slim_width
                || sf.depth() != SF_DEPTH
                || sf.seed() != config.seed
            {
                return Err(SketchError::corrupted(
                    "FREQUENCY sketch parameters disagree with the engine config",
                ));
            }
            AggState::Frequency(sf)
        }
    })
}

#[cfg(test)]
// The `row!` macro expands to `vec![...]`, which tests also pass to
// slice-taking query methods — that is fine here.
#[allow(clippy::useless_vec)]
mod tests {
    use super::*;
    use crate::row;

    fn spec() -> QuerySpec {
        QuerySpec::new(
            vec![0], // GROUP BY field 0
            vec![
                Aggregate::Count,
                Aggregate::Sum { field: 2 },
                Aggregate::CountDistinct { field: 1 },
                Aggregate::Quantiles { field: 2 },
                Aggregate::TopK { field: 1, k: 3 },
            ],
        )
        .unwrap()
    }

    #[test]
    fn basic_group_by_pipeline() {
        let mut eng = SketchEngine::new(spec()).unwrap();
        // Group "a": users 0..100 each with value = user index.
        for u in 0..100u64 {
            eng.process(&row!["a", u, u as f64]).unwrap();
            eng.process(&row!["a", u, u as f64]).unwrap(); // duplicate user
        }
        // Group "b": single user, 10 rows.
        for _ in 0..10 {
            eng.process(&row!["b", 7u64, 1.0f64]).unwrap();
        }
        assert_eq!(eng.num_groups(), 2);
        assert_eq!(eng.rows_processed(), 210);

        let a = eng.report(&row!["a"]).unwrap().unwrap();
        match &a[0] {
            AggregateResult::Count(c) => assert_eq!(*c, 200),
            other => panic!("unexpected {other:?}"),
        }
        match &a[1] {
            AggregateResult::Sum(s) => assert_eq!(*s, 2.0 * (0..100).sum::<u64>() as f64),
            other => panic!("unexpected {other:?}"),
        }
        match &a[2] {
            AggregateResult::CountDistinct(d) => {
                assert!((d - 100.0).abs() / 100.0 < 0.05, "distinct {d}");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &a[3] {
            AggregateResult::Quantiles { p50, p99, .. } => {
                assert!((*p50 - 50.0).abs() < 8.0, "p50 {p50}");
                assert!(*p99 > 90.0, "p99 {p99}");
            }
            other => panic!("unexpected {other:?}"),
        }
        let b = eng.report(&row!["b"]).unwrap().unwrap();
        match &b[4] {
            AggregateResult::TopK(top) => {
                assert_eq!(top[0].0, Value::U64(7));
                assert_eq!(top[0].1, 10);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(eng.report(&row!["zzz"]).unwrap().is_none());
    }

    #[test]
    fn frequency_aggregate_reports_and_estimates() {
        let spec = QuerySpec::new(
            vec![0],
            vec![Aggregate::Count, Aggregate::Frequency { field: 1 }],
        )
        .unwrap();
        let mut eng = SketchEngine::new(spec).unwrap();
        for i in 0..3_000u64 {
            eng.process(&row!["g", i % 100]).unwrap();
        }
        let report = eng.report(&row!["g"]).unwrap().unwrap();
        assert_eq!(report[1], AggregateResult::Frequency { total: 3_000 });
        // One-sided point query on the fat side.
        let est = eng.estimate(&row!["g"], &Value::U64(7)).unwrap().unwrap();
        assert!(est >= 30, "estimate {est} below true count 30");
        assert!(eng
            .estimate(&row!["missing"], &Value::U64(7))
            .unwrap()
            .is_none());
        // Specs without FREQUENCY reject point queries with a typed error.
        let plain =
            SketchEngine::new(QuerySpec::new(vec![0], vec![Aggregate::Count]).unwrap()).unwrap();
        assert!(plain.estimate(&row!["g"], &Value::U64(7)).is_err());
    }

    #[test]
    fn rejects_short_rows_and_bad_types() {
        let mut eng = SketchEngine::new(spec()).unwrap();
        assert!(eng.process(&row!["a"]).is_err());
        assert!(eng.process(&row!["a", 1u64, "not-a-number"]).is_err());
    }

    #[test]
    fn many_groups_space_stays_bounded_per_group() {
        let mut eng = SketchEngine::new(
            QuerySpec::new(vec![0], vec![Aggregate::CountDistinct { field: 1 }]).unwrap(),
        )
        .unwrap();
        for g in 0..1_000u64 {
            for u in 0..50u64 {
                eng.process(&row![g, g * 1_000 + u]).unwrap();
            }
        }
        assert_eq!(eng.num_groups(), 1_000);
        let per_group = eng.state_bytes() / 1_000;
        // Sparse HLL++ with 50 items ≈ hundreds of bytes, not the 4 KiB
        // dense array (and certainly not 50 × 8-byte ids each).
        assert!(per_group < 2_048, "per-group bytes {per_group}");
    }

    #[test]
    fn merge_matches_single_engine() {
        let spec = QuerySpec::new(
            vec![0],
            vec![Aggregate::Count, Aggregate::CountDistinct { field: 1 }],
        )
        .unwrap();
        let mut whole = SketchEngine::new(spec.clone()).unwrap();
        let mut shard_a = SketchEngine::new(spec.clone()).unwrap();
        let mut shard_b = SketchEngine::new(spec).unwrap();
        for i in 0..10_000u64 {
            let r = row![i % 7, i % 1_000];
            whole.process(&r).unwrap();
            if i % 2 == 0 {
                shard_a.process(&r).unwrap();
            } else {
                shard_b.process(&r).unwrap();
            }
        }
        shard_a.merge(&shard_b).unwrap();
        assert_eq!(shard_a.rows_processed(), whole.rows_processed());
        for g in 0..7u64 {
            let merged = shard_a.report(&row![g]).unwrap().unwrap();
            let single = whole.report(&row![g]).unwrap().unwrap();
            // Counts exact-equal; distinct estimates identical because the
            // sketches share seeds.
            assert_eq!(merged[0], single[0]);
            assert_eq!(merged[1], single[1]);
        }
    }

    #[test]
    fn window_flush_resets() {
        let mut eng =
            SketchEngine::new(QuerySpec::new(vec![0], vec![Aggregate::Count]).unwrap()).unwrap();
        eng.process(&row!["x"]).unwrap();
        eng.process(&row!["y"]).unwrap();
        let window = eng.flush_window().unwrap();
        assert_eq!(window.len(), 2);
        assert_eq!(eng.num_groups(), 0);
        assert_eq!(eng.rows_processed(), 0);
    }

    #[test]
    fn merge_rejects_spec_mismatch() {
        let a = QuerySpec::new(vec![0], vec![Aggregate::Count]).unwrap();
        let b = QuerySpec::new(vec![1], vec![Aggregate::Count]).unwrap();
        let mut ea = SketchEngine::new(a).unwrap();
        let eb = SketchEngine::new(b).unwrap();
        assert!(ea.merge(&eb).is_err());
    }

    #[test]
    fn topk_k_exceeding_counters_rejected() {
        let spec = QuerySpec::new(vec![0], vec![Aggregate::TopK { field: 1, k: 1000 }]).unwrap();
        assert!(SketchEngine::new(spec).is_err());
    }

    fn fault_rows(n: u64) -> Vec<Row> {
        (0..n)
            .map(|i| row![i % 5, i % 31, (i % 100) as f64])
            .collect()
    }

    #[test]
    fn poison_row_fails_batch_and_rolls_back() {
        let mut eng = SketchEngine::new(spec()).unwrap();
        eng.process_batch(&fault_rows(100)).unwrap();
        let before = eng.to_snapshot_bytes();

        let mut batch = fault_rows(50);
        batch.insert(20, row![0u64, 1u64, "not-a-number"]);
        let err = eng.process_batch(&batch).unwrap_err();
        assert_eq!(err.row, Some(20));
        assert_eq!(err.shard, None);
        assert!(matches!(err.cause, BatchCause::Row(_)));
        // Torn-batch guarantee: the 20 rows ingested before the poison row
        // were rolled back — state is byte-identical to pre-batch.
        assert_eq!(eng.to_snapshot_bytes(), before);
        assert_eq!(eng.rows_processed(), 100);

        // The same batch minus the poison row lands cleanly.
        batch.remove(20);
        let summary = eng.process_batch(&batch).unwrap();
        assert_eq!(summary.rows_ingested, 50);
        assert_eq!(summary.rows_quarantined, 0);
        assert_eq!(eng.rows_processed(), 150);
    }

    #[test]
    fn quarantine_diverts_poison_rows_and_bounds_samples() {
        let mut eng = SketchEngine::new(spec()).unwrap();
        eng.set_fault_policy(FaultPolicy::Quarantine { max_samples: 2 });
        let mut batch = fault_rows(60);
        batch.insert(5, row![9u64]); // short
        batch.insert(25, row![0u64, 1u64, "bad"]); // non-numeric SUM field
        batch.insert(40, row![1u64, 2u64, "bad"]);
        let summary = eng.process_batch(&batch).unwrap();
        assert_eq!(summary.rows_ingested, 60);
        assert_eq!(summary.rows_quarantined, 3);
        assert_eq!(eng.dead_letters().count(), 3);
        assert_eq!(eng.dead_letters().samples().len(), 2);
        assert_eq!(eng.dead_letters().samples()[0].row_index, 5);

        // The quarantined rows left no trace in sketch state: a clean
        // engine fed only the good rows is byte-identical.
        let mut clean = SketchEngine::new(spec()).unwrap();
        clean.set_fault_policy(FaultPolicy::Quarantine { max_samples: 2 });
        clean.process_batch(&fault_rows(60)).unwrap();
        assert_eq!(eng.to_snapshot_bytes(), clean.to_snapshot_bytes());
    }

    #[test]
    fn injected_panic_is_contained_rolled_back_and_retryable() {
        crate::fault::silence_injected_panics();
        let mut eng = SketchEngine::new(spec()).unwrap();
        eng.process_batch(&fault_rows(30)).unwrap();
        let before = eng.to_snapshot_bytes();

        // The injector counts attempts from when it is armed, so attempt 7
        // is row 7 of the next batch.
        eng.arm_faults(FaultInjector::new().at(7, FaultKind::Panic));
        let batch = fault_rows(40);
        let err = eng.process_batch(&batch).unwrap_err();
        assert_eq!(err.row, Some(7));
        match &err.cause {
            BatchCause::WorkerPanic(msg) => {
                assert!(msg.contains(crate::fault::INJECTED_PANIC_MARKER), "{msg}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        assert_eq!(eng.to_snapshot_bytes(), before);

        // The attempt counter was NOT rewound, so the retry sails past the
        // transient fault and converges with a never-faulted engine.
        eng.process_batch(&batch).unwrap();
        let mut baseline = SketchEngine::new(spec()).unwrap();
        baseline.process_batch(&fault_rows(30)).unwrap();
        baseline.process_batch(&batch).unwrap();
        eng.disarm_faults();
        assert_eq!(eng.to_snapshot_bytes(), baseline.to_snapshot_bytes());
    }

    #[test]
    fn injected_error_fails_batch_then_retry_recovers() {
        let mut eng = SketchEngine::new(spec()).unwrap();
        eng.arm_faults(FaultInjector::new().at(3, FaultKind::Error));
        let batch = fault_rows(10);
        let err = eng.process_batch(&batch).unwrap_err();
        assert_eq!(err.row, Some(3));
        assert_eq!(eng.rows_processed(), 0);
        eng.process_batch(&batch).unwrap();
        eng.disarm_faults();

        let mut baseline = SketchEngine::new(spec()).unwrap();
        baseline.process_batch(&batch).unwrap();
        assert_eq!(eng.to_snapshot_bytes(), baseline.to_snapshot_bytes());
    }

    #[test]
    fn injected_error_under_quarantine_is_diverted() {
        let mut eng = SketchEngine::new(spec()).unwrap();
        eng.set_fault_policy(FaultPolicy::Quarantine {
            max_samples: crate::fault::DEFAULT_MAX_SAMPLES,
        });
        eng.arm_faults(FaultInjector::new().at(4, FaultKind::Error));
        let summary = eng.process_batch(&fault_rows(10)).unwrap();
        assert_eq!(summary.rows_ingested, 9);
        assert_eq!(summary.rows_quarantined, 1);
        assert_eq!(eng.dead_letters().samples()[0].row_index, 4);
    }
}
