//! The sketch-backed aggregation engine.

use std::collections::HashMap;

use sketches_cardinality::HyperLogLogPlusPlus;
use sketches_core::{
    CardinalityEstimator, MergeSketch, QuantileSketch, SketchError, SketchResult, SpaceUsage,
    Update,
};
use sketches_frequency::SpaceSaving;
use sketches_quantiles::KllSketch;

use crate::query::{Aggregate, AggregateResult, QuerySpec};
use crate::value::{Row, Value};

/// Per-group sketch state for one aggregate.
#[derive(Debug, Clone)]
enum AggState {
    Count(u64),
    Sum(f64),
    CountDistinct(HyperLogLogPlusPlus),
    Quantiles(KllSketch),
    TopK {
        sketch: SpaceSaving<Value>,
        k: usize,
    },
}

/// Tunable sketch parameters for the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// HLL++ precision for COUNT DISTINCT (4..=18).
    pub hll_precision: u32,
    /// KLL accuracy parameter for QUANTILES.
    pub kll_k: usize,
    /// SpaceSaving counters for TOP-K (must exceed the query's `k`).
    pub space_saving_counters: usize,
    /// Base PRNG seed.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            hll_precision: 11,
            kll_k: 128,
            space_saving_counters: 64,
            seed: 0x57_DB,
        }
    }
}

/// A GROUP BY engine maintaining one set of sketches per group — the
/// "huge numbers of sketches in parallel" design of the ISP-era systems.
#[derive(Debug, Clone)]
pub struct SketchEngine {
    spec: QuerySpec,
    config: EngineConfig,
    /// Pristine per-group state, validated at construction and cloned for
    /// each new group (cheaper and simpler than re-validating per group).
    template: Vec<AggState>,
    groups: HashMap<Vec<Value>, Vec<AggState>>,
    /// Reusable key-projection buffer so the hot path can look up the
    /// group by slice (`Vec<Value>: Borrow<[Value]>`) without allocating a
    /// fresh key `Vec` per row; surrendered to the map only on the first
    /// row of each new group.
    key_scratch: Vec<Value>,
    rows_processed: u64,
}

impl SketchEngine {
    /// Creates an engine for `spec` with default sketch parameters.
    ///
    /// # Errors
    /// Returns an error if the spec/config produce invalid sketches.
    pub fn new(spec: QuerySpec) -> SketchResult<Self> {
        Self::with_config(spec, EngineConfig::default())
    }

    /// Creates an engine with explicit sketch parameters.
    ///
    /// # Errors
    /// Returns an error if the config is invalid (validated eagerly by
    /// constructing a probe group).
    pub fn with_config(spec: QuerySpec, config: EngineConfig) -> SketchResult<Self> {
        let mut engine = Self {
            spec,
            config,
            template: Vec::new(),
            groups: HashMap::new(),
            key_scratch: Vec::new(),
            rows_processed: 0,
        };
        engine.template = engine.fresh_state()?;
        Ok(engine)
    }

    fn fresh_state(&self) -> SketchResult<Vec<AggState>> {
        self.spec
            .aggregates
            .iter()
            .map(|agg| {
                Ok(match agg {
                    Aggregate::Count => AggState::Count(0),
                    Aggregate::Sum { .. } => AggState::Sum(0.0),
                    Aggregate::CountDistinct { .. } => AggState::CountDistinct(
                        HyperLogLogPlusPlus::new(self.config.hll_precision, self.config.seed)?,
                    ),
                    Aggregate::Quantiles { .. } => {
                        AggState::Quantiles(KllSketch::new(self.config.kll_k, self.config.seed)?)
                    }
                    Aggregate::TopK { k, .. } => {
                        if *k > self.config.space_saving_counters {
                            return Err(SketchError::invalid(
                                "k",
                                "TopK k exceeds space_saving_counters",
                            ));
                        }
                        AggState::TopK {
                            sketch: SpaceSaving::new(self.config.space_saving_counters)?,
                            k: *k,
                        }
                    }
                })
            })
            .collect()
    }

    /// Processes one row.
    ///
    /// # Errors
    /// Returns an error if the row is too short for the query or a
    /// non-numeric field is aggregated numerically.
    pub fn process(&mut self, row: &Row) -> SketchResult<()> {
        if row.len() <= self.spec.max_field() {
            return Err(SketchError::invalid("row", "row shorter than query fields"));
        }
        // Project the key into the reusable scratch buffer and look the
        // group up by slice: the steady state (group already known) does
        // one hash lookup and zero allocations. Only the first row of a
        // new group surrenders the scratch `Vec` to the map.
        self.key_scratch.clear();
        self.key_scratch
            .extend(self.spec.group_by.iter().map(|&i| row[i].clone()));
        if let Some(state) = self.groups.get_mut(self.key_scratch.as_slice()) {
            Self::apply(&self.spec, state, row)?;
        } else {
            let key = std::mem::take(&mut self.key_scratch);
            let template = &self.template;
            let state = self.groups.entry(key).or_insert_with(|| template.clone());
            Self::apply(&self.spec, state, row)?;
        }
        self.rows_processed += 1;
        Ok(())
    }

    /// Processes a batch of rows in order — the unit of work the sharded
    /// ingest layer ships to shard workers.
    ///
    /// # Errors
    /// Stops at the first failing row (earlier rows of the batch remain
    /// absorbed, exactly as with repeated [`process`](Self::process)).
    pub fn process_batch(&mut self, rows: &[Row]) -> SketchResult<()> {
        for row in rows {
            self.process(row)?;
        }
        Ok(())
    }

    /// Folds one row into a group's aggregate states.
    fn apply(spec: &QuerySpec, state: &mut [AggState], row: &Row) -> SketchResult<()> {
        for (agg, st) in spec.aggregates.iter().zip(state.iter_mut()) {
            match (agg, st) {
                (Aggregate::Count, AggState::Count(c)) => *c += 1,
                (Aggregate::Sum { field }, AggState::Sum(s)) => {
                    let v = row[*field].as_f64().ok_or_else(|| {
                        SketchError::invalid("field", "SUM over non-numeric field")
                    })?;
                    *s += v;
                }
                (Aggregate::CountDistinct { field }, AggState::CountDistinct(h)) => {
                    h.update(&row[*field]);
                }
                (Aggregate::Quantiles { field }, AggState::Quantiles(q)) => {
                    let v = row[*field].as_f64().ok_or_else(|| {
                        SketchError::invalid("field", "QUANTILES over non-numeric field")
                    })?;
                    q.update(&v);
                }
                (Aggregate::TopK { field, .. }, AggState::TopK { sketch, .. }) => {
                    sketch.update(&row[*field]);
                }
                _ => unreachable!("state vector built from the same spec"),
            }
        }
        Ok(())
    }

    /// Reports the aggregates of one group (`None` if the group was never
    /// seen).
    ///
    /// # Errors
    /// Returns an error only for internal sketch query failures.
    pub fn report(&self, key: &[Value]) -> SketchResult<Option<Vec<AggregateResult>>> {
        let Some(state) = self.groups.get(key) else {
            return Ok(None);
        };
        let results = state
            .iter()
            .map(|st| {
                Ok(match st {
                    AggState::Count(c) => AggregateResult::Count(*c),
                    AggState::Sum(s) => AggregateResult::Sum(*s),
                    AggState::CountDistinct(h) => AggregateResult::CountDistinct(h.estimate()),
                    AggState::Quantiles(q) => AggregateResult::Quantiles {
                        p50: q.quantile(0.5)?,
                        p95: q.quantile(0.95)?,
                        p99: q.quantile(0.99)?,
                    },
                    AggState::TopK { sketch, k } => AggregateResult::TopK(sketch.top_k(*k)),
                })
            })
            .collect::<SketchResult<Vec<_>>>()?;
        Ok(Some(results))
    }

    /// All group keys currently tracked, in ascending key order — the
    /// listing is deterministic across runs even though the backing map is
    /// hashed.
    pub fn groups(&self) -> impl Iterator<Item = &Vec<Value>> {
        // lint: sorted-iteration-ok(collected then fully sorted by the key total order below)
        let mut keys: Vec<&Vec<Value>> = self.groups.keys().collect();
        keys.sort();
        keys.into_iter()
    }

    /// Number of groups.
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Rows processed.
    #[must_use]
    pub fn rows_processed(&self) -> u64 {
        self.rows_processed
    }

    /// Finishes a tumbling window: returns every group's report (in
    /// ascending key order, so downstream consumers see a stable layout)
    /// and resets the state for the next window.
    ///
    /// # Errors
    /// Propagates report errors.
    pub fn flush_window(&mut self) -> SketchResult<Vec<(Vec<Value>, Vec<AggregateResult>)>> {
        // lint: sorted-iteration-ok(collected then fully sorted by the key total order below)
        let mut keys: Vec<Vec<Value>> = self.groups.keys().cloned().collect();
        keys.sort();
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            if let Some(report) = self.report(&key)? {
                out.push((key, report));
            }
        }
        self.groups.clear();
        self.rows_processed = 0;
        Ok(out)
    }

    /// Merges another engine's state (distributed GROUP BY: shard by row,
    /// merge per-group sketches).
    ///
    /// # Errors
    /// Returns an error if specs/configs differ.
    pub fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.spec != other.spec {
            return Err(SketchError::incompatible("query specs differ"));
        }
        if self.config != other.config {
            // Checked up front: a lazy failure mid-merge would leave this
            // engine with a mix of the two configs' groups.
            return Err(SketchError::incompatible("engine configs differ"));
        }
        // lint: sorted-iteration-ok(keyed pointwise merge: each group folds into its own entry, independent of visit order)
        for (key, other_state) in &other.groups {
            match self.groups.get_mut(key) {
                None => {
                    self.groups.insert(key.clone(), other_state.clone());
                }
                Some(state) => {
                    for (a, b) in state.iter_mut().zip(other_state) {
                        match (a, b) {
                            (AggState::Count(x), AggState::Count(y)) => *x += y,
                            (AggState::Sum(x), AggState::Sum(y)) => *x += y,
                            (AggState::CountDistinct(x), AggState::CountDistinct(y)) => {
                                x.merge(y)?;
                            }
                            (AggState::Quantiles(x), AggState::Quantiles(y)) => x.merge(y)?,
                            (
                                AggState::TopK { sketch: x, .. },
                                AggState::TopK { sketch: y, .. },
                            ) => x.merge(y)?,
                            _ => {
                                return Err(SketchError::incompatible(
                                    "aggregate states out of order",
                                ))
                            }
                        }
                    }
                }
            }
        }
        self.rows_processed += other.rows_processed;
        Ok(())
    }

    /// Total sketch memory across groups.
    #[must_use]
    pub fn state_bytes(&self) -> usize {
        self.groups
            .values()
            .flat_map(|state| {
                state.iter().map(|st| match st {
                    AggState::Count(_) | AggState::Sum(_) => 8,
                    AggState::CountDistinct(h) => h.space_bytes(),
                    AggState::Quantiles(q) => q.space_bytes(),
                    AggState::TopK { sketch, .. } => sketch.space_bytes(),
                })
            })
            .sum()
    }
}

#[cfg(test)]
// The `row!` macro expands to `vec![...]`, which tests also pass to
// slice-taking query methods — that is fine here.
#[allow(clippy::useless_vec)]
mod tests {
    use super::*;
    use crate::row;

    fn spec() -> QuerySpec {
        QuerySpec::new(
            vec![0], // GROUP BY field 0
            vec![
                Aggregate::Count,
                Aggregate::Sum { field: 2 },
                Aggregate::CountDistinct { field: 1 },
                Aggregate::Quantiles { field: 2 },
                Aggregate::TopK { field: 1, k: 3 },
            ],
        )
        .unwrap()
    }

    #[test]
    fn basic_group_by_pipeline() {
        let mut eng = SketchEngine::new(spec()).unwrap();
        // Group "a": users 0..100 each with value = user index.
        for u in 0..100u64 {
            eng.process(&row!["a", u, u as f64]).unwrap();
            eng.process(&row!["a", u, u as f64]).unwrap(); // duplicate user
        }
        // Group "b": single user, 10 rows.
        for _ in 0..10 {
            eng.process(&row!["b", 7u64, 1.0f64]).unwrap();
        }
        assert_eq!(eng.num_groups(), 2);
        assert_eq!(eng.rows_processed(), 210);

        let a = eng.report(&row!["a"]).unwrap().unwrap();
        match &a[0] {
            AggregateResult::Count(c) => assert_eq!(*c, 200),
            other => panic!("unexpected {other:?}"),
        }
        match &a[1] {
            AggregateResult::Sum(s) => assert_eq!(*s, 2.0 * (0..100).sum::<u64>() as f64),
            other => panic!("unexpected {other:?}"),
        }
        match &a[2] {
            AggregateResult::CountDistinct(d) => {
                assert!((d - 100.0).abs() / 100.0 < 0.05, "distinct {d}");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &a[3] {
            AggregateResult::Quantiles { p50, p99, .. } => {
                assert!((*p50 - 50.0).abs() < 8.0, "p50 {p50}");
                assert!(*p99 > 90.0, "p99 {p99}");
            }
            other => panic!("unexpected {other:?}"),
        }
        let b = eng.report(&row!["b"]).unwrap().unwrap();
        match &b[4] {
            AggregateResult::TopK(top) => {
                assert_eq!(top[0].0, Value::U64(7));
                assert_eq!(top[0].1, 10);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(eng.report(&row!["zzz"]).unwrap().is_none());
    }

    #[test]
    fn rejects_short_rows_and_bad_types() {
        let mut eng = SketchEngine::new(spec()).unwrap();
        assert!(eng.process(&row!["a"]).is_err());
        assert!(eng.process(&row!["a", 1u64, "not-a-number"]).is_err());
    }

    #[test]
    fn many_groups_space_stays_bounded_per_group() {
        let mut eng = SketchEngine::new(
            QuerySpec::new(vec![0], vec![Aggregate::CountDistinct { field: 1 }]).unwrap(),
        )
        .unwrap();
        for g in 0..1_000u64 {
            for u in 0..50u64 {
                eng.process(&row![g, g * 1_000 + u]).unwrap();
            }
        }
        assert_eq!(eng.num_groups(), 1_000);
        let per_group = eng.state_bytes() / 1_000;
        // Sparse HLL++ with 50 items ≈ hundreds of bytes, not the 4 KiB
        // dense array (and certainly not 50 × 8-byte ids each).
        assert!(per_group < 2_048, "per-group bytes {per_group}");
    }

    #[test]
    fn merge_matches_single_engine() {
        let spec = QuerySpec::new(
            vec![0],
            vec![Aggregate::Count, Aggregate::CountDistinct { field: 1 }],
        )
        .unwrap();
        let mut whole = SketchEngine::new(spec.clone()).unwrap();
        let mut shard_a = SketchEngine::new(spec.clone()).unwrap();
        let mut shard_b = SketchEngine::new(spec).unwrap();
        for i in 0..10_000u64 {
            let r = row![i % 7, i % 1_000];
            whole.process(&r).unwrap();
            if i % 2 == 0 {
                shard_a.process(&r).unwrap();
            } else {
                shard_b.process(&r).unwrap();
            }
        }
        shard_a.merge(&shard_b).unwrap();
        assert_eq!(shard_a.rows_processed(), whole.rows_processed());
        for g in 0..7u64 {
            let merged = shard_a.report(&row![g]).unwrap().unwrap();
            let single = whole.report(&row![g]).unwrap().unwrap();
            // Counts exact-equal; distinct estimates identical because the
            // sketches share seeds.
            assert_eq!(merged[0], single[0]);
            assert_eq!(merged[1], single[1]);
        }
    }

    #[test]
    fn window_flush_resets() {
        let mut eng =
            SketchEngine::new(QuerySpec::new(vec![0], vec![Aggregate::Count]).unwrap()).unwrap();
        eng.process(&row!["x"]).unwrap();
        eng.process(&row!["y"]).unwrap();
        let window = eng.flush_window().unwrap();
        assert_eq!(window.len(), 2);
        assert_eq!(eng.num_groups(), 0);
        assert_eq!(eng.rows_processed(), 0);
    }

    #[test]
    fn merge_rejects_spec_mismatch() {
        let a = QuerySpec::new(vec![0], vec![Aggregate::Count]).unwrap();
        let b = QuerySpec::new(vec![1], vec![Aggregate::Count]).unwrap();
        let mut ea = SketchEngine::new(a).unwrap();
        let eb = SketchEngine::new(b).unwrap();
        assert!(ea.merge(&eb).is_err());
    }

    #[test]
    fn topk_k_exceeding_counters_rejected() {
        let spec = QuerySpec::new(vec![0], vec![Aggregate::TopK { field: 1, k: 1000 }]).unwrap();
        assert!(SketchEngine::new(spec).is_err());
    }
}
