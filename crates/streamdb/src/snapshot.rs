//! Checksummed checkpoint snapshots of the stream engines.
//!
//! A snapshot is a self-validating byte envelope around an engine's full
//! state (spec, config, every group's sketch states, RNG positions):
//!
//! ```text
//! +-------+---------+------+---------------------+-------------------+
//! | magic | version | kind | len-prefixed payload| xxh64 checksum    |
//! | SKCP  |  u16    | u8   | u64 len + bytes     | u64 (all prior)   |
//! +-------+---------+------+---------------------+-------------------+
//! ```
//!
//! * the **checksum** (seeded xxh64 over every byte before it) catches bit
//!   flips and truncations;
//! * the **magic/version/kind** header catches format and version skew;
//! * the **payload codec** ([`sketches_core::ByteReader`]) validates every
//!   structural invariant on the way in: length prefixes against remaining
//!   bytes, sketch parameters against the engine config, sorted group
//!   keys, sparse-entry ordering, …
//!
//! Every corruption is reported as a typed
//! [`SketchError::Corrupted`] — restore never panics and never produces a
//! silently-wrong engine. Restoring is *exact*: the restored engine's
//! future behaviour (including RNG-driven sketch decisions) is
//! byte-identical to the original's, which experiment E22 asserts.
//!
//! Snapshots are in-memory byte images; durability (where to write them,
//! fsync discipline) is the caller's concern.

use sketches_core::{ByteReader, ByteWriter, SketchError, SketchResult};
use sketches_hash::xxhash::xxh64;

use crate::engine::SketchEngine;
use crate::sharded::ShardedEngine;

/// Leading magic of every snapshot ("SKetch CheckPoint").
const MAGIC: &[u8; 4] = b"SKCP";

/// Format version; bumped on any layout change so old readers fail with a
/// typed error instead of misparsing. Version 2: [`EngineConfig`] gained
/// the SF-sketch width fields (`sf_fat_width`, `sf_slim_width`).
///
/// [`EngineConfig`]: crate::engine::EngineConfig
const VERSION: u16 = 2;

/// Kind tag: a sequential [`SketchEngine`].
const KIND_ENGINE: u8 = 1;

/// Kind tag: a [`ShardedEngine`].
const KIND_SHARDED: u8 = 2;

/// Seed of the envelope checksum, distinct from every sketch seed.
const CHECKSUM_SEED: u64 = 0x5AFE_C0DE_CAFE_0001;

/// Smallest well-formed snapshot: header (4 + 2 + 1), payload length
/// prefix (8), checksum (8).
const MIN_LEN: usize = 4 + 2 + 1 + 8 + 8;

/// The engine kind a snapshot envelope holds — the typed face of the
/// envelope's kind byte, so callers never match on raw header bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A sequential [`SketchEngine`].
    Engine,
    /// A [`ShardedEngine`] (also what the concurrent engine publishes).
    Sharded,
}

impl std::fmt::Display for SnapshotKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Engine => "engine",
            Self::Sharded => "sharded",
        })
    }
}

/// A restored engine snapshot: whichever engine kind the bytes contained.
#[derive(Debug, Clone)]
pub enum Snapshot {
    /// A sequential engine.
    Engine(SketchEngine),
    /// A sharded engine (shard count and channel depth restored too).
    Sharded(ShardedEngine),
}

impl Snapshot {
    /// The kind of engine this snapshot holds.
    #[must_use]
    pub fn kind(&self) -> SnapshotKind {
        match self {
            Self::Engine(_) => SnapshotKind::Engine,
            Self::Sharded(_) => SnapshotKind::Sharded,
        }
    }

    /// Reads the kind tag out of a raw envelope without restoring it —
    /// header validation only (length, magic, version, known kind), no
    /// checksum pass and no payload decode.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on truncation, bad magic,
    /// version skew, or an unknown kind byte.
    pub fn kind_of(bytes: &[u8]) -> SketchResult<SnapshotKind> {
        let (kind, _) = parse_header(bytes)?;
        Ok(kind)
    }

    /// Reads the payload length out of a raw envelope without restoring
    /// it — the typed replacement for hand-indexing the length prefix at
    /// byte 7. Validates the header and that the declared payload actually
    /// fits the buffer.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on truncation, bad magic,
    /// version skew, an unknown kind, or a length the buffer cannot hold.
    pub fn payload_len(bytes: &[u8]) -> SketchResult<usize> {
        let (_, len) = parse_header(bytes)?;
        Ok(len)
    }
    /// Serializes the snapshot to its checksummed envelope.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let (kind, payload) = match self {
            Self::Engine(engine) => {
                let mut w = ByteWriter::new();
                engine.write_state_payload(&mut w);
                (KIND_ENGINE, w.into_bytes())
            }
            Self::Sharded(sharded) => {
                let mut w = ByteWriter::new();
                w.put_u64(sharded.channel_depth as u64);
                w.put_u32(sharded.shards.len() as u32);
                for shard in &sharded.shards {
                    let mut sw = ByteWriter::new();
                    shard.write_state_payload(&mut sw);
                    w.put_len_prefixed(sw.as_slice());
                }
                (KIND_SHARDED, w.into_bytes())
            }
        };
        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC);
        w.put_u16(VERSION);
        w.put_u8(kind);
        w.put_len_prefixed(&payload);
        let checksum = xxh64(w.as_slice(), CHECKSUM_SEED);
        w.put_u64(checksum);
        w.into_bytes()
    }

    /// Restores a snapshot from [`to_bytes`](Self::to_bytes) output.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on any damage: truncation, bit
    /// flips (checksum mismatch), bad magic, unsupported version, unknown
    /// kind, or a payload whose structure fails validation.
    pub fn from_bytes(bytes: &[u8]) -> SketchResult<Self> {
        if bytes.len() < MIN_LEN {
            return Err(SketchError::corrupted(format!(
                "snapshot too short: {} bytes (need at least {MIN_LEN})",
                bytes.len()
            )));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        // Verify the checksum first: it distinguishes transport damage
        // (flips/truncation) from genuine format skew in the header.
        let stored = u64::from_le_bytes(tail.try_into().map_err(|_| {
            // Unreachable given the length guard, but no panic paths here.
            SketchError::corrupted("snapshot checksum tail malformed")
        })?);
        if xxh64(body, CHECKSUM_SEED) != stored {
            return Err(SketchError::corrupted("snapshot checksum mismatch"));
        }
        let mut r = ByteReader::new(body);
        let magic = r.bytes(4)?;
        if magic != MAGIC {
            return Err(SketchError::corrupted(format!(
                "bad snapshot magic {magic:?} (expected {MAGIC:?})"
            )));
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(SketchError::corrupted(format!(
                "unsupported snapshot version {version} (this build reads {VERSION})"
            )));
        }
        let kind = r.u8()?;
        let payload = r.len_prefixed()?;
        r.expect_end("snapshot envelope")?;
        let mut pr = ByteReader::new(payload);
        let snapshot = match kind {
            KIND_ENGINE => Self::Engine(SketchEngine::read_state_payload(&mut pr)?),
            KIND_SHARDED => {
                let depth = pr.u64()?;
                if depth == 0 || depth > usize::MAX as u64 {
                    return Err(SketchError::corrupted(format!(
                        "snapshot channel depth {depth} out of range"
                    )));
                }
                let num_shards = pr.u32()? as usize;
                if num_shards == 0 {
                    return Err(SketchError::corrupted("snapshot has zero shards"));
                }
                // Each shard payload carries at least its 8-byte length
                // prefix; reject counts the buffer cannot possibly hold
                // before allocating for them.
                if num_shards > pr.remaining() / 8 {
                    return Err(SketchError::corrupted(format!(
                        "snapshot claims {num_shards} shards but only {} payload bytes remain",
                        pr.remaining()
                    )));
                }
                let mut shards = Vec::with_capacity(num_shards);
                for i in 0..num_shards {
                    let shard_bytes = pr.len_prefixed()?;
                    let mut sr = ByteReader::new(shard_bytes);
                    let shard = SketchEngine::read_state_payload(&mut sr)?;
                    sr.expect_end("snapshot shard payload")?;
                    if i > 0 {
                        let first: &SketchEngine = &shards[0];
                        if shard.spec != first.spec || shard.config != first.config {
                            return Err(SketchError::corrupted(format!(
                                "snapshot shard {i} disagrees with shard 0 on spec or config"
                            )));
                        }
                    }
                    shards.push(shard);
                }
                let spec = shards[0].spec.clone();
                let config = shards[0].config;
                Self::Sharded(ShardedEngine::from_restored_shards(
                    shards,
                    spec,
                    config,
                    depth as usize,
                ))
            }
            other => {
                return Err(SketchError::corrupted(format!(
                    "unknown snapshot kind {other} (expected {KIND_ENGINE} or {KIND_SHARDED})"
                )));
            }
        };
        pr.expect_end("snapshot payload")?;
        Ok(snapshot)
    }
}

/// Shared header walk behind [`Snapshot::kind_of`] /
/// [`Snapshot::payload_len`]: validates magic, version, kind, and that the
/// declared payload fits, returning `(kind, payload_len)`.
fn parse_header(bytes: &[u8]) -> SketchResult<(SnapshotKind, usize)> {
    if bytes.len() < MIN_LEN {
        return Err(SketchError::corrupted(format!(
            "snapshot too short: {} bytes (need at least {MIN_LEN})",
            bytes.len()
        )));
    }
    let mut r = ByteReader::new(bytes);
    let magic = r.bytes(4)?;
    if magic != MAGIC {
        return Err(SketchError::corrupted(format!(
            "bad snapshot magic {magic:?} (expected {MAGIC:?})"
        )));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(SketchError::corrupted(format!(
            "unsupported snapshot version {version} (this build reads {VERSION})"
        )));
    }
    let kind = match r.u8()? {
        KIND_ENGINE => SnapshotKind::Engine,
        KIND_SHARDED => SnapshotKind::Sharded,
        other => {
            return Err(SketchError::corrupted(format!(
                "unknown snapshot kind {other} (expected {KIND_ENGINE} or {KIND_SHARDED})"
            )));
        }
    };
    let len = r.u64()?;
    // Header (15) + payload + checksum (8) must fit the buffer.
    if len > (bytes.len() - MIN_LEN) as u64 {
        return Err(SketchError::corrupted(format!(
            "snapshot declares a {len}-byte payload but only {} bytes follow the header",
            bytes.len() - MIN_LEN
        )));
    }
    Ok((kind, len as usize))
}

impl SketchEngine {
    /// Serializes this engine as a checksummed snapshot.
    #[must_use]
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        Snapshot::Engine(self.clone()).to_bytes()
    }

    /// Restores an engine from [`to_snapshot_bytes`](Self::to_snapshot_bytes)
    /// output.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on any damage, or if the bytes
    /// hold a sharded snapshot instead.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> SketchResult<Self> {
        match Snapshot::from_bytes(bytes)? {
            Snapshot::Engine(engine) => Ok(engine),
            Snapshot::Sharded(_) => Err(SketchError::corrupted(
                "snapshot holds a sharded engine, not a sequential one",
            )),
        }
    }
}

impl ShardedEngine {
    /// Serializes this engine as a checksummed snapshot (shard count and
    /// channel depth included, so restore rebuilds the same topology).
    #[must_use]
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        Snapshot::Sharded(self.clone()).to_bytes()
    }

    /// Restores a sharded engine from
    /// [`to_snapshot_bytes`](Self::to_snapshot_bytes) output.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on any damage, or if the bytes
    /// hold a sequential snapshot instead.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> SketchResult<Self> {
        match Snapshot::from_bytes(bytes)? {
            Snapshot::Sharded(sharded) => Ok(sharded),
            Snapshot::Engine(_) => Err(SketchError::corrupted(
                "snapshot holds a sequential engine, not a sharded one",
            )),
        }
    }
}

#[cfg(test)]
// `row!` expands to `vec![...]`, which tests also pass to slice-taking
// query methods — fine here.
#[allow(clippy::useless_vec)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::query::{Aggregate, QuerySpec};
    use crate::row;
    use crate::value::Row;

    fn spec() -> QuerySpec {
        QuerySpec::new(
            vec![0],
            vec![
                Aggregate::Count,
                Aggregate::Sum { field: 2 },
                Aggregate::CountDistinct { field: 1 },
                Aggregate::Quantiles { field: 2 },
                Aggregate::TopK { field: 1, k: 3 },
            ],
        )
        .unwrap()
    }

    fn rows(n: u64, num_groups: u64) -> Vec<Row> {
        (0..n)
            .map(|i| row![i % num_groups, i % 97, (i % 1_000) as f64])
            .collect()
    }

    fn reports(engine: &SketchEngine, num_groups: u64) -> Vec<String> {
        (0..num_groups)
            .map(|g| format!("{:?}", engine.report(&row![g]).unwrap()))
            .collect()
    }

    #[test]
    fn engine_snapshot_round_trips_and_resumes_identically() {
        let data = rows(5_000, 13);
        let (warm, rest) = data.split_at(3_000);
        let mut original = SketchEngine::new(spec()).unwrap();
        original.process_batch(warm).unwrap();

        let bytes = original.to_snapshot_bytes();
        let mut restored = SketchEngine::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(restored.to_snapshot_bytes(), bytes);

        // Exact restore: future ingest (including RNG-driven KLL
        // promotions) stays byte-identical to the original.
        original.process_batch(rest).unwrap();
        restored.process_batch(rest).unwrap();
        assert_eq!(restored.to_snapshot_bytes(), original.to_snapshot_bytes());
        assert_eq!(reports(&restored, 13), reports(&original, 13));
    }

    #[test]
    fn sharded_snapshot_round_trips_and_resumes_identically() {
        let data = rows(6_000, 11);
        let (warm, rest) = data.split_at(4_000);
        let mut original = ShardedEngine::new(spec(), 4).unwrap();
        original.process_batch(warm).unwrap();

        let bytes = original.to_snapshot_bytes();
        let mut restored = ShardedEngine::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(restored.num_shards(), 4);
        assert_eq!(restored.to_snapshot_bytes(), bytes);

        original.process_batch(rest).unwrap();
        restored.process_batch(rest).unwrap();
        assert_eq!(restored.to_snapshot_bytes(), original.to_snapshot_bytes());
        for g in 0..11u64 {
            assert_eq!(
                restored.report(&row![g]).unwrap(),
                original.report(&row![g]).unwrap()
            );
        }
    }

    #[test]
    fn kind_mismatch_is_typed() {
        let mut engine = SketchEngine::new(spec()).unwrap();
        engine.process_batch(&rows(100, 3)).unwrap();
        let bytes = engine.to_snapshot_bytes();
        assert!(matches!(
            ShardedEngine::from_snapshot_bytes(&bytes),
            Err(SketchError::Corrupted { .. })
        ));
        let sharded = ShardedEngine::new(spec(), 2).unwrap();
        assert!(matches!(
            SketchEngine::from_snapshot_bytes(&sharded.to_snapshot_bytes()),
            Err(SketchError::Corrupted { .. })
        ));
    }

    #[test]
    fn corrupted_snapshots_are_typed_never_panic() {
        let mut engine = SketchEngine::with_config(
            spec(),
            EngineConfig {
                hll_precision: 4,
                kll_k: 8,
                space_saving_counters: 4,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        engine.process_batch(&rows(200, 3)).unwrap();
        let bytes = engine.to_snapshot_bytes();

        // Every truncation.
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    Snapshot::from_bytes(&bytes[..cut]),
                    Err(SketchError::Corrupted { .. })
                ),
                "truncation to {cut} bytes not detected"
            );
        }
        // A bit flip in every byte (checksum catches body flips; flips in
        // the checksum itself mismatch the body).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(
                matches!(
                    Snapshot::from_bytes(&bad),
                    Err(SketchError::Corrupted { .. })
                ),
                "bit flip at byte {i} not detected"
            );
        }
    }

    #[test]
    fn kind_and_payload_len_read_without_restoring() {
        let mut engine = SketchEngine::new(spec()).unwrap();
        engine.process_batch(&rows(500, 5)).unwrap();
        let bytes = engine.to_snapshot_bytes();
        assert_eq!(Snapshot::kind_of(&bytes).unwrap(), SnapshotKind::Engine);
        // Envelope = 15-byte header + payload + 8-byte checksum.
        assert_eq!(Snapshot::payload_len(&bytes).unwrap(), bytes.len() - 15 - 8);
        assert_eq!(
            Snapshot::from_bytes(&bytes).unwrap().kind(),
            SnapshotKind::Engine
        );

        let sharded = ShardedEngine::new(spec(), 3).unwrap();
        let sbytes = sharded.to_snapshot_bytes();
        assert_eq!(Snapshot::kind_of(&sbytes).unwrap(), SnapshotKind::Sharded);
        assert_eq!(SnapshotKind::Sharded.to_string(), "sharded");

        // Header helpers reject damage with typed errors, never panic.
        assert!(matches!(
            Snapshot::kind_of(&bytes[..10]),
            Err(SketchError::Corrupted { .. })
        ));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            Snapshot::payload_len(&bad),
            Err(SketchError::Corrupted { .. })
        ));
        let mut lying = bytes.clone();
        // Inflate the declared payload length beyond the buffer.
        lying[7..15].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Snapshot::payload_len(&lying),
            Err(SketchError::Corrupted { .. })
        ));
    }

    #[test]
    fn version_skew_is_typed() {
        let engine = SketchEngine::new(spec()).unwrap();
        let mut bytes = engine.to_snapshot_bytes();
        // Bump the version field (bytes 4..6) and re-seal the checksum so
        // only the version check can reject it.
        bytes[4] = 0xFF;
        let body_len = bytes.len() - 8;
        let sum = xxh64(&bytes[..body_len], CHECKSUM_SEED).to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
        match Snapshot::from_bytes(&bytes) {
            Err(SketchError::Corrupted { reason }) => {
                assert!(reason.contains("version"), "{reason}");
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn shard_count_mismatch_in_payload_is_typed() {
        let sharded = ShardedEngine::new(spec(), 2).unwrap();
        let mut bytes = sharded.to_snapshot_bytes();
        // The shard count is the u32 right after the payload's channel
        // depth: envelope header is 4+2+1+8 = 15 bytes, then depth u64.
        let count_at = 15 + 8;
        bytes[count_at] = 7;
        let body_len = bytes.len() - 8;
        let sum = xxh64(&bytes[..body_len], CHECKSUM_SEED).to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
        match Snapshot::from_bytes(&bytes) {
            Err(SketchError::Corrupted { .. }) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
    }
}
