//! A Gigascope-style mini stream-aggregation engine.
//!
//! §3 of the survey describes the ISP-era systems (Gigascope at AT&T,
//! CMON at Sprint) whose defining need was "not to build one sketch, but
//! to maintain huge numbers of sketches in parallel (i.e., to support
//! GROUP BY aggregate queries over many groups)". This crate is that
//! substrate:
//!
//! * [`value`] — a small dynamic value/row model (u64, i64, f64, string).
//! * [`query`] — the aggregate specification: GROUP BY some fields,
//!   compute {COUNT, SUM, COUNT DISTINCT, QUANTILES, TOP-K} per group.
//! * [`engine`] — [`engine::SketchEngine`]: per-group sketch state
//!   (HLL++ / KLL / SpaceSaving), with memory accounting, tumbling
//!   windows, and engine-level merge (distributed GROUP BY).
//! * [`sharded`] — [`sharded::ShardedEngine`]: thread-parallel ingest over
//!   N engine shards, routing rows by grouping-key hash; per-group results
//!   identical to the sequential engine.
//! * [`concurrent`] — [`concurrent::ConcurrentEngine`]: serve while
//!   ingesting — long-lived shard workers, a submit/poll batch API
//!   ([`concurrent::BatchTicket`]), and epoch-published immutable
//!   snapshots so reads never block behind ingest.
//! * [`exact`] — [`exact::ExactEngine`]: the same query model over exact
//!   per-group state, the baseline of experiment E16.
//! * [`fault`] — the fault model: transactional batches with typed
//!   [`fault::BatchError`]s, poison-row quarantine
//!   ([`fault::FaultPolicy`]), and a deterministic
//!   [`fault::FaultInjector`] for recovery drills.
//! * [`snapshot`] — checksummed checkpoint/restore
//!   ([`snapshot::Snapshot`]): every corruption detected as a typed error,
//!   restores byte-exact engine state.
//! * [`stream_engine`] — [`stream_engine::StreamEngine`]: the unified
//!   trait both engines implement, so durable storage, experiments, and
//!   equivalence tests are written once.
//! * [`durable`] — [`durable::DurableEngine`]: crash-safe persistence for
//!   any [`stream_engine::StreamEngine`] — atomic checkpoints, a
//!   checksummed write-ahead log, bounded checkpoint lag, and recovery
//!   that tolerates a torn tail but rejects interior corruption.
//! * [`metrics`] — hot-path telemetry ([`metrics::EngineMetrics`]):
//!   exact transactional counters plus KLL-backed latency histograms,
//!   snapshotted via [`stream_engine::StreamEngine::metrics`] and
//!   mergeable across shards without loss.
//! * [`view`] — [`view::EngineView`]: the read/write split at engine
//!   granularity. Every engine cuts a slim query-side view (truncated
//!   top-k entries, cloned small sketches, SF-sketch slim halves) that is
//!   a fraction of the fat state's size and is what epoch publication,
//!   cross-shard merges, and the serving wire actually ship.

#![forbid(unsafe_code)]

pub mod concurrent;
pub mod durable;
pub mod engine;
pub mod exact;
pub mod fault;
pub mod metrics;
pub mod query;
pub mod sharded;
pub mod snapshot;
pub mod stream_engine;
pub mod value;
pub mod view;

pub use concurrent::{BatchTicket, ConcurrentEngine, ReadHandle};
pub use durable::{
    CheckpointPolicy, DurableEngine, KillPoint, RecoveryReport, SIMULATED_CRASH_MARKER,
};
pub use engine::{EngineConfig, SketchEngine, SF_DEPTH};
pub use exact::ExactEngine;
pub use fault::{
    silence_injected_panics, BatchCause, BatchError, BatchSummary, DeadLetters, FaultInjector,
    FaultKind, FaultPolicy, QuarantinedRow,
};
pub use metrics::EngineMetrics;
pub use query::{Aggregate, AggregateResult, QuerySpec};
pub use sharded::ShardedEngine;
pub use sketches_obs::{
    Clock, IdGen, ManualClock, MetricsSnapshot, MonotonicClock, Sampling, Stage, Trace,
    TraceContext, TraceSink,
};
pub use snapshot::{Snapshot, SnapshotKind};
pub use stream_engine::StreamEngine;
pub use value::{Row, Value};
pub use view::{EngineView, ViewState};
