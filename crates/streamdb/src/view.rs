//! The engine-level read/write split: slim query-side views of fat state.
//!
//! [`EngineView`] lifts [`sketches_core::QueryView`] from a single sketch
//! to a whole GROUP BY engine. Where a [`crate::Snapshot`] is the *fat*
//! image — every counter needed to resume ingest byte-exactly — a view
//! holds only what *answering queries* needs, per group:
//!
//! * COUNT / SUM — the scalars themselves;
//! * COUNT DISTINCT / QUANTILES — clones of the (already-small) HLL++ and
//!   KLL sketches;
//! * TOP-K — the reported `k` entries, not the SpaceSaving sketch's full
//!   counter table;
//! * FREQUENCY — the SF-sketch's slim half
//!   ([`sketches_frequency::SlimSketch`]), a `slim/fat`-width fraction of
//!   the update-side grid.
//!
//! A view cut from an engine reports **identically** to the fat engine at
//! the moment of the cut ([`EngineView::report`] = the engine's report),
//! answers frequency point queries ([`EngineView::estimate`]), merges
//! with views of disjoint substreams, and serializes into its own
//! checksummed envelope (`SKVW`, separate from the snapshot's `SKCP` —
//! a view can never be mistaken for a restorable checkpoint):
//!
//! ```text
//! +-------+---------+---------------------+-------------------+
//! | magic | version | len-prefixed payload| xxh64 checksum    |
//! | SKVW  |  u16    | u64 len + bytes     | u64 (all prior)   |
//! +-------+---------+---------------------+-------------------+
//! ```
//!
//! This is what ships: the concurrent engine epoch-publishes per-shard
//! views alongside its fat snapshots, cross-shard reads merge views, and
//! the serving layer's `/v1/view` endpoint transfers view bytes instead
//! of fat checkpoints. Checkpoints and the WAL stay fat deliberately —
//! recovery must be byte-exact, and a view cannot resume ingest.
//!
//! **Merge caveat:** merging two views that hold the *same group* (only
//! possible across distributed engines — one engine's shards route each
//! group to exactly one shard) combines TOP-K by summing the truncated
//! entry lists and re-taking the top `k`, an approximation of the fat
//! SpaceSaving merge. All other aggregates merge exactly.

use std::collections::HashMap;

use sketches_cardinality::HyperLogLogPlusPlus;
use sketches_core::{
    ByteReader, ByteWriter, CardinalityEstimator, FrequencyEstimator, MergeSketch, QuantileSketch,
    QueryView, SketchError, SketchResult, SpaceUsage,
};
use sketches_frequency::SlimSketch;
use sketches_hash::xxhash::xxh64;
use sketches_quantiles::KllSketch;

use crate::engine::{read_spec, write_spec, AggState, SketchEngine};
use crate::query::{Aggregate, AggregateResult, QuerySpec};
use crate::sharded::ShardedEngine;
use crate::value::{read_value, write_value, Value};

/// Leading magic of every view envelope ("SKetch VieW").
const VIEW_MAGIC: &[u8; 4] = b"SKVW";

/// View-envelope format version.
const VIEW_VERSION: u16 = 1;

/// Seed of the view-envelope checksum (distinct from the snapshot's).
const VIEW_CHECKSUM_SEED: u64 = 0x5AFE_C0DE_CAFE_0002;

/// Smallest well-formed view envelope: magic (4) + version (2) + payload
/// length prefix (8) + checksum (8).
const VIEW_MIN_LEN: usize = 4 + 2 + 8 + 8;

/// Query-side state of one aggregate for one group.
#[derive(Debug, Clone)]
pub enum ViewState {
    /// Row count (exact).
    Count(u64),
    /// Field sum (exact).
    Sum(f64),
    /// Clone of the group's HLL++ sketch.
    CountDistinct(HyperLogLogPlusPlus),
    /// Clone of the group's KLL sketch.
    Quantiles(KllSketch),
    /// The reported top-`k` entries, descending — the SpaceSaving
    /// sketch's full counter table stays behind.
    TopK(Vec<(Value, u64)>),
    /// The SF-sketch's slim query side.
    Frequency(SlimSketch),
}

/// A slim, mergeable, serializable query-side view of one engine's state
/// at a moment in time. See the module docs for what it holds and ships.
#[derive(Debug, Clone)]
pub struct EngineView {
    spec: QuerySpec,
    groups: HashMap<Vec<Value>, Vec<ViewState>>,
    rows_processed: u64,
}

impl EngineView {
    /// The query spec the view answers.
    #[must_use]
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// Rows the source engine had absorbed when the view was cut.
    #[must_use]
    pub fn rows_processed(&self) -> u64 {
        self.rows_processed
    }

    /// Number of groups in the view.
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// All group keys, in ascending key order.
    #[must_use]
    pub fn groups(&self) -> Vec<Vec<Value>> {
        // lint: sorted-iteration-ok(collected then fully sorted by the key total order below)
        let mut keys: Vec<Vec<Value>> = self.groups.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Reports one group's aggregates — identical to the fat engine's
    /// [`crate::SketchEngine::report`] at the moment the view was cut
    /// (`None` if the group was never seen).
    ///
    /// # Errors
    /// Returns an error only for internal sketch query failures.
    pub fn report(&self, key: &[Value]) -> SketchResult<Option<Vec<AggregateResult>>> {
        let Some(state) = self.groups.get(key) else {
            return Ok(None);
        };
        let results = state
            .iter()
            .map(|st| {
                Ok(match st {
                    ViewState::Count(c) => AggregateResult::Count(*c),
                    ViewState::Sum(s) => AggregateResult::Sum(*s),
                    ViewState::CountDistinct(h) => AggregateResult::CountDistinct(h.estimate()),
                    ViewState::Quantiles(q) => AggregateResult::Quantiles {
                        p50: q.quantile(0.5)?,
                        p95: q.quantile(0.95)?,
                        p99: q.quantile(0.99)?,
                    },
                    ViewState::TopK(entries) => AggregateResult::TopK(entries.clone()),
                    ViewState::Frequency(slim) => AggregateResult::Frequency {
                        total: slim.total(),
                    },
                })
            })
            .collect::<SketchResult<Vec<_>>>()?;
        Ok(Some(results))
    }

    /// Frequency point query against the slim side: the remote reader's
    /// counterpart of [`crate::SketchEngine::estimate`] (`None` if the
    /// group was never seen).
    ///
    /// # Errors
    /// Returns an error if the spec has no FREQUENCY aggregate.
    pub fn estimate(&self, key: &[Value], item: &Value) -> SketchResult<Option<u64>> {
        if !self
            .spec
            .aggregates
            .iter()
            .any(|a| matches!(a, Aggregate::Frequency { .. }))
        {
            return Err(SketchError::invalid(
                "spec",
                "query has no FREQUENCY aggregate",
            ));
        }
        let Some(state) = self.groups.get(key) else {
            return Ok(None);
        };
        for st in state {
            if let ViewState::Frequency(slim) = st {
                return Ok(Some(slim.estimate(item)));
            }
        }
        // lint: panic-ok(spec has a Frequency aggregate, so every state vector holds one; a mismatch is a construction bug)
        unreachable!("view state built from the same spec");
    }

    /// Merges another view (distributed read path: shard views union; see
    /// the module docs for the TOP-K caveat on overlapping groups).
    ///
    /// # Errors
    /// Returns an error if the specs differ or per-group sketches are
    /// incompatible.
    pub fn merge(&mut self, other: &Self) -> SketchResult<()> {
        if self.spec != other.spec {
            return Err(SketchError::incompatible("view specs differ"));
        }
        // lint: sorted-iteration-ok(keyed pointwise merge: each group folds into its own entry, independent of visit order)
        for (key, other_state) in &other.groups {
            match self.groups.get_mut(key) {
                None => {
                    self.groups.insert(key.clone(), other_state.clone());
                }
                Some(state) => {
                    for ((a, b), agg) in
                        state.iter_mut().zip(other_state).zip(&self.spec.aggregates)
                    {
                        match (a, b) {
                            (ViewState::Count(x), ViewState::Count(y)) => *x += y,
                            (ViewState::Sum(x), ViewState::Sum(y)) => *x += y,
                            (ViewState::CountDistinct(x), ViewState::CountDistinct(y)) => {
                                x.merge(y)?;
                            }
                            (ViewState::Quantiles(x), ViewState::Quantiles(y)) => x.merge(y)?,
                            (ViewState::TopK(x), ViewState::TopK(y)) => {
                                let k = match agg {
                                    Aggregate::TopK { k, .. } => *k,
                                    _ => {
                                        return Err(SketchError::incompatible(
                                            "view states out of order",
                                        ));
                                    }
                                };
                                *x = merge_topk_entries(x, y, k);
                            }
                            (ViewState::Frequency(x), ViewState::Frequency(y)) => x.merge(y)?,
                            _ => {
                                return Err(SketchError::incompatible("view states out of order"));
                            }
                        }
                    }
                }
            }
        }
        self.rows_processed += other.rows_processed;
        Ok(())
    }

    /// Approximate heap bytes the view holds — the resident counterpart
    /// of [`to_view_bytes`](Self::to_view_bytes)`.len()` (the wire size).
    #[must_use]
    pub fn space_bytes(&self) -> usize {
        self.groups
            .values()
            .flat_map(|state| {
                state.iter().map(|st| match st {
                    ViewState::Count(_) | ViewState::Sum(_) => 8,
                    ViewState::CountDistinct(h) => h.space_bytes(),
                    ViewState::Quantiles(q) => q.space_bytes(),
                    ViewState::TopK(entries) => entries.len() * (std::mem::size_of::<Value>() + 8),
                    ViewState::Frequency(slim) => slim.space_bytes(),
                })
            })
            .sum()
    }

    /// Serializes the view into its checksummed `SKVW` envelope. Groups
    /// are written in ascending key order, so the encoding is canonical:
    /// equal views produce byte-identical envelopes.
    #[must_use]
    pub fn to_view_bytes(&self) -> Vec<u8> {
        let mut payload = ByteWriter::new();
        write_spec(&self.spec, &mut payload);
        payload.put_u64(self.rows_processed);
        // lint: sorted-iteration-ok(keys collected then fully sorted below; emission order is the sorted order)
        let mut keys: Vec<&Vec<Value>> = self.groups.keys().collect();
        keys.sort();
        payload.put_usize(keys.len());
        for key in keys {
            for v in key {
                write_value(v, &mut payload);
            }
            for st in &self.groups[key] {
                write_view_state(st, &mut payload);
            }
        }
        let mut w = ByteWriter::new();
        w.put_bytes(VIEW_MAGIC);
        w.put_u16(VIEW_VERSION);
        w.put_len_prefixed(payload.as_slice());
        let checksum = xxh64(w.as_slice(), VIEW_CHECKSUM_SEED);
        w.put_u64(checksum);
        w.into_bytes()
    }

    /// Restores a view from [`to_view_bytes`](Self::to_view_bytes)
    /// output.
    ///
    /// # Errors
    /// Returns [`SketchError::Corrupted`] on any damage: truncation, bit
    /// flips, bad magic, version skew, or structural violations (unsorted
    /// groups, invalid sketch dimensions).
    pub fn from_view_bytes(bytes: &[u8]) -> SketchResult<Self> {
        if bytes.len() < VIEW_MIN_LEN {
            return Err(SketchError::corrupted(format!(
                "view too short: {} bytes (need at least {VIEW_MIN_LEN})",
                bytes.len()
            )));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().map_err(|_| {
            // Unreachable given the length guard, but no panic paths here.
            SketchError::corrupted("view checksum tail malformed")
        })?);
        if xxh64(body, VIEW_CHECKSUM_SEED) != stored {
            return Err(SketchError::corrupted("view checksum mismatch"));
        }
        let mut r = ByteReader::new(body);
        let magic = r.bytes(4)?;
        if magic != VIEW_MAGIC {
            return Err(SketchError::corrupted(format!(
                "bad view magic {magic:?} (expected {VIEW_MAGIC:?})"
            )));
        }
        let version = r.u16()?;
        if version != VIEW_VERSION {
            return Err(SketchError::corrupted(format!(
                "unsupported view version {version} (this build reads {VIEW_VERSION})"
            )));
        }
        let payload = r.len_prefixed()?;
        r.expect_end("view envelope")?;
        let mut pr = ByteReader::new(payload);
        let spec = read_spec(&mut pr)?;
        let rows_processed = pr.u64()?;
        let num_groups = pr.array_len(1, "view groups")?;
        let key_len = spec.group_by.len();
        let mut groups = HashMap::with_capacity(num_groups);
        let mut prev_key: Option<Vec<Value>> = None;
        for _ in 0..num_groups {
            let mut key = Vec::with_capacity(key_len);
            for _ in 0..key_len {
                key.push(read_value(&mut pr)?);
            }
            if prev_key.as_ref().is_some_and(|p| *p >= key) {
                return Err(SketchError::corrupted(
                    "view groups not in strictly ascending key order",
                ));
            }
            let mut state = Vec::with_capacity(spec.aggregates.len());
            for agg in &spec.aggregates {
                state.push(read_view_state(agg, &mut pr)?);
            }
            prev_key = Some(key.clone());
            groups.insert(key, state);
        }
        pr.expect_end("view payload")?;
        Ok(Self {
            spec,
            groups,
            rows_processed,
        })
    }
}

/// Merges two truncated top-k entry lists: sum counts by item, re-sort
/// descending (ties by item order for determinism), keep `k`.
fn merge_topk_entries(a: &[(Value, u64)], b: &[(Value, u64)], k: usize) -> Vec<(Value, u64)> {
    let mut combined: Vec<(Value, u64)> = Vec::with_capacity(a.len() + b.len());
    for (item, count) in a.iter().chain(b) {
        match combined.iter_mut().find(|(i, _)| i == item) {
            Some((_, c)) => *c += count,
            None => combined.push((item.clone(), *count)),
        }
    }
    combined.sort_by(|(ia, ca), (ib, cb)| cb.cmp(ca).then_with(|| ia.cmp(ib)));
    combined.truncate(k);
    combined
}

/// Serializes one view state. No variant tag: the spec (in the same
/// payload) fixes which variant sits at each position.
fn write_view_state(st: &ViewState, w: &mut ByteWriter) {
    match st {
        ViewState::Count(c) => w.put_u64(*c),
        ViewState::Sum(s) => w.put_f64(*s),
        ViewState::CountDistinct(h) => h.write_state(w),
        ViewState::Quantiles(q) => q.write_state(w),
        ViewState::TopK(entries) => {
            w.put_usize(entries.len());
            for (item, count) in entries {
                write_value(item, w);
                w.put_u64(*count);
            }
        }
        ViewState::Frequency(slim) => slim.write_state(w),
    }
}

/// Restores one view state against the spec's aggregate at the same
/// position. Structural validation only — a view carries no engine
/// config, so parameter agreement is enforced at merge time instead.
fn read_view_state(agg: &Aggregate, r: &mut ByteReader<'_>) -> SketchResult<ViewState> {
    Ok(match agg {
        Aggregate::Count => ViewState::Count(r.u64()?),
        Aggregate::Sum { .. } => ViewState::Sum(r.f64()?),
        Aggregate::CountDistinct { .. } => {
            ViewState::CountDistinct(HyperLogLogPlusPlus::read_state(r)?)
        }
        Aggregate::Quantiles { .. } => ViewState::Quantiles(KllSketch::read_state(r)?),
        Aggregate::TopK { k, .. } => {
            let n = r.array_len(9, "top-k entries")?;
            if n > *k {
                return Err(SketchError::corrupted(format!(
                    "view top-k holds {n} entries but the query's k is {k}"
                )));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let item = read_value(r)?;
                let count = r.u64()?;
                entries.push((item, count));
            }
            ViewState::TopK(entries)
        }
        Aggregate::Frequency { .. } => ViewState::Frequency(SlimSketch::read_state(r)?),
    })
}

/// One view state cut from one fat aggregate state.
fn cut_state(st: &AggState) -> ViewState {
    match st {
        AggState::Count(c) => ViewState::Count(*c),
        AggState::Sum(s) => ViewState::Sum(*s),
        AggState::CountDistinct(h) => ViewState::CountDistinct(h.clone()),
        AggState::Quantiles(q) => ViewState::Quantiles(q.clone()),
        AggState::TopK { sketch, k } => ViewState::TopK(sketch.top_k(*k)),
        AggState::Frequency(sf) => ViewState::Frequency(sf.query_view()),
    }
}

impl QueryView for SketchEngine {
    type View = EngineView;

    /// Cuts the slim query-side view of every group.
    fn query_view(&self) -> EngineView {
        let groups = self
            .groups
            .iter()
            .map(|(key, state)| (key.clone(), state.iter().map(cut_state).collect()))
            .collect();
        EngineView {
            spec: self.spec.clone(),
            groups,
            rows_processed: self.rows_processed,
        }
    }
}

impl SketchEngine {
    /// Inherent alias of [`QueryView::query_view`] so callers need not
    /// import the trait.
    #[must_use]
    pub fn query_view(&self) -> EngineView {
        QueryView::query_view(self)
    }
}

impl QueryView for ShardedEngine {
    type View = EngineView;

    /// Cuts and unions every shard's view. Shards route each group to
    /// exactly one shard, so the union is exact — the merged view reports
    /// identically to the sharded engine's fat report.
    fn query_view(&self) -> EngineView {
        let mut view: Option<EngineView> = None;
        for shard in &self.shards {
            let shard_view = shard.query_view();
            match &mut view {
                None => view = Some(shard_view),
                Some(v) => {
                    // lint: panic-ok(shards share one spec by construction; a mismatch is a construction bug, not input)
                    v.merge(&shard_view)
                        .expect("shards share one spec by construction");
                }
            }
        }
        // lint: panic-ok(sharded engines have >= 1 shard by construction)
        view.expect("sharded engines have at least one shard")
    }
}

impl ShardedEngine {
    /// Inherent alias of [`QueryView::query_view`] so callers need not
    /// import the trait.
    #[must_use]
    pub fn query_view(&self) -> EngineView {
        QueryView::query_view(self)
    }
}

#[cfg(test)]
// `row!` expands to `vec![...]`, which tests also pass to slice-taking
// query methods — fine here.
#[allow(clippy::useless_vec)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::Row;

    fn spec() -> QuerySpec {
        QuerySpec::new(
            vec![0],
            vec![
                Aggregate::Count,
                Aggregate::Sum { field: 2 },
                Aggregate::CountDistinct { field: 1 },
                Aggregate::Quantiles { field: 2 },
                Aggregate::TopK { field: 1, k: 3 },
                Aggregate::Frequency { field: 1 },
            ],
        )
        .unwrap()
    }

    fn rows(n: u64, num_groups: u64) -> Vec<Row> {
        (0..n)
            .map(|i| row![i % num_groups, i % 97, (i % 1_000) as f64])
            .collect()
    }

    #[test]
    fn view_reports_identically_to_fat_engine_at_cut() {
        let mut eng = SketchEngine::new(spec()).unwrap();
        eng.process_batch(&rows(5_000, 13)).unwrap();
        let view = eng.query_view();
        assert_eq!(view.num_groups(), 13);
        assert_eq!(view.rows_processed(), 5_000);
        assert_eq!(view.groups().len(), 13);
        for g in 0..13u64 {
            assert_eq!(
                view.report(&row![g]).unwrap().unwrap(),
                eng.report(&row![g]).unwrap().unwrap(),
                "group {g}"
            );
        }
        assert!(view.report(&row![99u64]).unwrap().is_none());
        // Point queries answer from the slim side; one-sided on
        // insert-only streams.
        for item in 0..97u64 {
            let est = view
                .estimate(&row![0u64], &Value::U64(item))
                .unwrap()
                .unwrap();
            let fat = eng
                .estimate(&row![0u64], &Value::U64(item))
                .unwrap()
                .unwrap();
            // True per-group count of any item is ≥ 1 here; both sides
            // are one-sided upper bounds.
            assert!(est >= 1, "slim estimate missing item {item}");
            assert!(fat >= 1);
        }
    }

    #[test]
    fn view_is_slimmer_than_snapshot() {
        let mut eng = SketchEngine::new(spec()).unwrap();
        eng.process_batch(&rows(20_000, 8)).unwrap();
        let fat = eng.to_snapshot_bytes().len();
        let slim = eng.query_view().to_view_bytes().len();
        assert!(
            slim * 2 < fat,
            "view ({slim} bytes) not measurably slimmer than snapshot ({fat} bytes)"
        );
    }

    #[test]
    fn view_round_trips_and_corruption_is_typed() {
        let mut eng = SketchEngine::new(spec()).unwrap();
        eng.process_batch(&rows(3_000, 7)).unwrap();
        let view = eng.query_view();
        let bytes = view.to_view_bytes();

        let restored = EngineView::from_view_bytes(&bytes).unwrap();
        assert_eq!(restored.to_view_bytes(), bytes);
        for g in 0..7u64 {
            assert_eq!(
                restored.report(&row![g]).unwrap(),
                view.report(&row![g]).unwrap()
            );
        }

        for cut in [0usize, 5, 13, bytes.len() - 1] {
            assert!(matches!(
                EngineView::from_view_bytes(&bytes[..cut]),
                Err(SketchError::Corrupted { .. })
            ));
        }
        for i in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert!(
                matches!(
                    EngineView::from_view_bytes(&bad),
                    Err(SketchError::Corrupted { .. })
                ),
                "bit flip at byte {i} not detected"
            );
        }
        // A view is not a snapshot and vice versa: envelopes are disjoint.
        assert!(matches!(
            EngineView::from_view_bytes(&eng.to_snapshot_bytes()),
            Err(SketchError::Corrupted { .. })
        ));
        assert!(matches!(
            crate::Snapshot::from_bytes(&bytes),
            Err(SketchError::Corrupted { .. })
        ));
    }

    #[test]
    fn sharded_view_unions_shards_exactly() {
        let data = rows(8_000, 11);
        let mut seq = SketchEngine::new(spec()).unwrap();
        seq.process_batch(&data).unwrap();
        let mut sharded = ShardedEngine::new(spec(), 4).unwrap();
        sharded.process_batch(&data).unwrap();

        let view = sharded.query_view();
        assert_eq!(view.num_groups(), 11);
        assert_eq!(view.rows_processed(), 8_000);
        for g in 0..11u64 {
            assert_eq!(
                view.report(&row![g]).unwrap().unwrap(),
                sharded.report(&row![g]).unwrap().unwrap(),
                "group {g}"
            );
            // Shard-routed ingest matches sequential ingest per group, so
            // the views agree too.
            assert_eq!(
                view.report(&row![g]).unwrap().unwrap(),
                seq.query_view().report(&row![g]).unwrap().unwrap(),
                "group {g} vs sequential"
            );
        }
    }

    #[test]
    fn view_merge_combines_disjoint_substreams() {
        let mut a = SketchEngine::new(spec()).unwrap();
        let mut b = SketchEngine::new(spec()).unwrap();
        a.process_batch(&rows(2_000, 5)).unwrap();
        // Distinct groups 100.. so the union is disjoint.
        let shifted: Vec<Row> = (0..2_000u64)
            .map(|i| row![100 + i % 4, i % 50, (i % 300) as f64])
            .collect();
        b.process_batch(&shifted).unwrap();

        let mut merged = a.query_view();
        merged.merge(&b.query_view()).unwrap();
        assert_eq!(merged.num_groups(), 9);
        assert_eq!(merged.rows_processed(), 4_000);
        assert_eq!(
            merged.report(&row![103u64]).unwrap(),
            b.query_view().report(&row![103u64]).unwrap()
        );

        // Overlapping groups: counts add.
        let mut overlap = a.query_view();
        overlap.merge(&a.query_view()).unwrap();
        let doubled = overlap.report(&row![0u64]).unwrap().unwrap();
        let single = a.report(&row![0u64]).unwrap().unwrap();
        match (&doubled[0], &single[0]) {
            (AggregateResult::Count(d), AggregateResult::Count(s)) => assert_eq!(*d, 2 * s),
            other => panic!("unexpected {other:?}"),
        }

        // Spec mismatch is typed.
        let other_spec =
            SketchEngine::new(QuerySpec::new(vec![0], vec![Aggregate::Count]).unwrap()).unwrap();
        assert!(merged.merge(&other_spec.query_view()).is_err());
    }
}
